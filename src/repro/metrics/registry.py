"""A lightweight counter/timer registry for observability.

The selection hot paths (greedy engine, similarity cache, map session)
report *why* an operation was fast or slow through a
:class:`MetricsRegistry`: monotonically increasing counters
(similarity evaluations, index queries, cache hits/misses, heap pops)
and latency observations with percentile summaries (p50/p95).

The registry is deliberately dependency-free and cheap: a counter
increment is one dict update, an observation one list append.  Code
that *may* be handed a registry follows the convention

    if metrics is not None:
        metrics.incr("greedy.heap_pops")

so the un-instrumented path pays a single ``None`` check.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator


def percentile(samples: list[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` (``q`` in [0, 100]).

    Matches ``numpy.percentile``'s default method without requiring an
    array round-trip for the tiny sample lists the registry holds.
    """
    if not samples:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


class MetricsRegistry:
    """Named counters and latency series.

    Counters are floats (almost always used as integers); latency
    observations are kept raw so snapshots can report percentiles.
    Names are dotted paths by convention (``sim.row_hits``,
    ``session.op_seconds``) — the registry itself imposes no schema.

    The registry is thread-safe: one registry is shared between the
    session's response path, the :class:`~repro.parallel.WorkerPool`'s
    thread backend, and traced spans finishing on worker threads, so
    the read-modify-write counter update and the observation append
    are serialized under a lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._observations: dict[str, list[float]] = {}
        self._gauges: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def count(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to a point-in-time ``value``.

        Gauges carry instantaneous levels (queue depth, live sessions,
        in-flight requests) where counters would only ever grow.
        """
        with self._lock:
            self._gauges[name] = float(value)

    def adjust_gauge(self, name: str, delta: float) -> float:
        """Add ``delta`` to gauge ``name`` (creating it at 0); returns it."""
        with self._lock:
            value = self._gauges.get(name, 0.0) + delta
            self._gauges[name] = value
            return value

    def gauge(self, name: str) -> float:
        """Current value of gauge ``name`` (0 if never set)."""
        with self._lock:
            return self._gauges.get(name, 0.0)

    def gauges(self) -> dict[str, float]:
        """Copy of all gauges."""
        with self._lock:
            return dict(self._gauges)

    # ------------------------------------------------------------------
    # Timers / observations
    # ------------------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one observation (typically seconds) under ``name``."""
        with self._lock:
            self._observations.setdefault(name, []).append(float(value))

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager observing the wall-clock time of its body."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    def observations(self, name: str) -> list[float]:
        """Raw observations recorded under ``name`` (copy)."""
        with self._lock:
            return list(self._observations.get(name, []))

    def summary(self, name: str) -> dict[str, float]:
        """count/mean/p50/p95/max summary of an observation series."""
        samples = self.observations(name)
        if not samples:
            return {"count": 0}
        return {
            "count": len(samples),
            "mean": sum(samples) / len(samples),
            "p50": percentile(samples, 50.0),
            "p95": percentile(samples, 95.0),
            "max": max(samples),
        }

    def summaries(self) -> dict[str, dict[str, float]]:
        """:meth:`summary` for every observation series, by name."""
        with self._lock:
            names = list(self._observations)
        return {name: self.summary(name) for name in sorted(names)}

    # ------------------------------------------------------------------
    # Registry-level operations
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Copy of all counters (observations summarized separately)."""
        with self._lock:
            return dict(self._counters)

    def delta_since(self, before: dict[str, float]) -> dict[str, float]:
        """Counter increments since a prior :meth:`snapshot`.

        Counters absent from ``before`` count from zero; counters that
        did not move are omitted.
        """
        out: dict[str, float] = {}
        for name, value in self.snapshot().items():
            moved = value - before.get(name, 0.0)
            if moved:
                out[name] = moved
        return out

    def reset(self) -> None:
        """Drop all counters, gauges, and observations."""
        with self._lock:
            self._counters.clear()
            self._observations.clear()
            self._gauges.clear()

    def format(self) -> str:
        """Human-readable dump — the CLI's ``--metrics`` output."""
        counters = self.snapshot()
        gauges = self.gauges()
        with self._lock:
            timer_names = sorted(self._observations)
        lines: list[str] = []
        if counters:
            lines.append("counters:")
            width = max(len(name) for name in counters)
            for name in sorted(counters):
                value = counters[name]
                text = f"{value:g}" if value != int(value) else f"{int(value)}"
                lines.append(f"  {name:<{width}}  {text}")
        if gauges:
            lines.append("gauges:")
            width = max(len(name) for name in gauges)
            for name in sorted(gauges):
                value = gauges[name]
                text = f"{value:g}" if value != int(value) else f"{int(value)}"
                lines.append(f"  {name:<{width}}  {text}")
        if timer_names:
            lines.append("timers:")
            for name in timer_names:
                s = self.summary(name)
                lines.append(
                    f"  {name}  n={s['count']}  "
                    f"mean={s['mean'] * 1000:.2f}ms  "
                    f"p50={s['p50'] * 1000:.2f}ms  "
                    f"p95={s['p95'] * 1000:.2f}ms  "
                    f"max={s['max'] * 1000:.2f}ms"
                )
        if not lines:
            return "(no metrics recorded)"
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"timers={len(self._observations)})"
        )
