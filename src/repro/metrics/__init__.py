"""Instrumentation layer: counters, timers, percentile summaries.

See :mod:`repro.metrics.registry` for the design; ``docs/CACHING.md``
documents the counter schema emitted by the cache and session layers.
"""

from repro.metrics.registry import MetricsRegistry, percentile

__all__ = ["MetricsRegistry", "percentile"]
