"""Convex combination of similarity models.

The paper's introduction motivates mixing metrics — "we could consider
both the distance of two POIs and the semantic similarity of the two
POIs".  :class:`CombinedSimilarity` realizes that as a weighted sum of
component models; with non-negative weights summing to 1, the result is
again a valid similarity (in ``[0, 1]``, symmetric, unit diagonal).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.similarity.base import (
    ProcessSpec,
    RowKernel,
    RowsKernel,
    SimilarityModel,
)


class CombinedSimilarity(SimilarityModel):
    """``sim = sum_m weight_m * sim_m`` over component models."""

    def __init__(
        self,
        models: Sequence[SimilarityModel],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not models:
            raise ValueError("need at least one component model")
        sizes = {len(m) for m in models}
        if len(sizes) != 1:
            raise ValueError(f"component models disagree on size: {sizes}")
        if weights is None:
            weights = [1.0 / len(models)] * len(models)
        if len(weights) != len(models):
            raise ValueError("one weight per model required")
        weights = [float(w) for w in weights]
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = sum(weights)
        if not np.isclose(total, 1.0):
            raise ValueError(f"weights must sum to 1, got {total}")
        self.models = list(models)
        self.weights = weights

    def __len__(self) -> int:
        return len(self.models[0])

    @property
    def batch_friendly(self) -> bool:
        """Batch by default when any component gains from it.

        A combined model pays every component's per-call overhead on
        each scalar evaluation, so one batch-friendly component (e.g.
        a sparse text kernel) makes blocks worthwhile for the whole
        mix.
        """
        return any(m.batch_friendly for m in self.models)

    def sim(self, i: int, j: int) -> float:
        return float(
            sum(w * m.sim(i, j) for w, m in zip(self.weights, self.models))
        )

    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        out = np.zeros(len(ids), dtype=np.float64)
        for w, m in zip(self.weights, self.models):
            out += w * m.sims_to(i, ids)
        return out

    def row_kernel(self, ids: np.ndarray) -> RowKernel:
        kernels = [m.row_kernel(ids) for m in self.models]
        weights = self.weights

        def kernel(obj_id: int) -> np.ndarray:
            out = weights[0] * kernels[0](obj_id)
            for w, k in zip(weights[1:], kernels[1:]):
                out += w * k(obj_id)
            return out

        return kernel

    def rows_kernel(self, ids: np.ndarray) -> RowsKernel:
        # Same multiply/accumulate order as row_kernel, over component
        # blocks that are themselves bit-identical to their scalar
        # kernels — so combined rows are too.
        kernels = [m.rows_kernel(ids) for m in self.models]
        weights = self.weights

        def kernel(obj_ids: np.ndarray) -> np.ndarray:
            out = weights[0] * kernels[0](obj_ids)
            for w, k in zip(weights[1:], kernels[1:]):
                out += w * k(obj_ids)
            return out

        return kernel

    def process_spec(self) -> ProcessSpec | None:
        children = []
        arrays: dict[str, np.ndarray] = {}
        for idx, model in enumerate(self.models):
            spec = model.process_spec()
            if spec is None:
                return None  # every component must be reconstructible
            kind, params, child_arrays = spec
            keys = sorted(child_arrays)
            children.append({"kind": kind, "params": params, "keys": keys})
            for key in keys:
                arrays[f"{idx}:{key}"] = child_arrays[key]
        return (
            "combined",
            {"weights": list(self.weights), "children": children},
            arrays,
        )

    def weighted_sims_sum(
        self,
        target_ids: np.ndarray,
        source_ids: np.ndarray,
        source_weights: np.ndarray,
    ) -> np.ndarray:
        # The combination is linear, so the bulk kernel distributes
        # over components — each keeps its own fast path.
        out = np.zeros(len(np.asarray(target_ids)), dtype=np.float64)
        for w, m in zip(self.weights, self.models):
            out += w * m.weighted_sims_sum(target_ids, source_ids, source_weights)
        return out
