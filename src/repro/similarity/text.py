"""Text pipeline and text-based similarity models.

The paper measures tweet/POI similarity by "Cosine Similarity of the
keyword vectors" (Sec. 7.1).  This module provides the whole pipeline
from raw strings to that metric, built from scratch:

``Tokenizer``  -> lowercased word tokens, stopwords removed
``Vocabulary`` -> stable token <-> id mapping
``TfidfVectorizer`` -> L2-normalized sparse TF-IDF matrix (scipy CSR)
``CosineTextSimilarity`` -> the row kernel over that matrix
``JaccardSimilarity`` -> a cheaper set-overlap alternative

With L2-normalized rows, cosine similarity is a plain sparse dot
product, so the greedy algorithm's ``sims_to`` is a single
``matrix @ row`` — the same trick production vector search code uses.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.similarity.base import (
    ProcessSpec,
    RowKernel,
    RowsKernel,
    SimilarityModel,
)

_WORD_RE = re.compile(r"[a-z0-9']+")

# A compact English stopword list; enough to keep synthetic and demo
# corpora from being dominated by function words.
DEFAULT_STOPWORDS = frozenset(
    """a an and are as at be but by for from has have i if in into is it its
    me my no not of on or our so that the their them they this to was we were
    will with you your""".split()
)


class Tokenizer:
    """Lowercasing word tokenizer with stopword removal."""

    def __init__(self, stopwords: frozenset[str] = DEFAULT_STOPWORDS) -> None:
        self.stopwords = stopwords

    def tokenize(self, text: str) -> list[str]:
        """Tokens of ``text``: lowercase alphanumeric runs, no stopwords."""
        return [
            tok
            for tok in _WORD_RE.findall(text.lower())
            if tok not in self.stopwords
        ]


class Vocabulary:
    """Stable token <-> integer-id mapping.

    Ids are assigned in first-seen order, which keeps builds
    deterministic for a fixed corpus order (important for reproducible
    benchmarks).
    """

    def __init__(self) -> None:
        self._token_to_id: dict[str, int] = {}
        self._tokens: list[str] = []

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def add(self, token: str) -> int:
        """Id of ``token``, adding it if unseen."""
        tid = self._token_to_id.get(token)
        if tid is None:
            tid = len(self._tokens)
            self._token_to_id[token] = tid
            self._tokens.append(token)
        return tid

    def get(self, token: str) -> int | None:
        """Id of ``token`` or ``None`` if unseen."""
        return self._token_to_id.get(token)

    def token(self, tid: int) -> str:
        """Token string for id ``tid``."""
        return self._tokens[tid]

    def tokens(self) -> list[str]:
        """All tokens in id order (a copy)."""
        return list(self._tokens)


class TfidfVectorizer:
    """Corpus -> L2-normalized sparse TF-IDF matrix.

    TF is raw term count; IDF is the smoothed
    ``log((1 + n) / (1 + df)) + 1`` (never zero, so every present term
    contributes).  Rows are L2-normalized so cosine similarity reduces
    to a dot product.
    """

    def __init__(self, tokenizer: Tokenizer | None = None, min_df: int = 1) -> None:
        if min_df < 1:
            raise ValueError(f"min_df must be >= 1, got {min_df}")
        self.tokenizer = tokenizer or Tokenizer()
        self.min_df = min_df
        self.vocabulary = Vocabulary()
        self.idf_: np.ndarray | None = None

    def fit_transform(self, texts: Sequence[str]) -> sparse.csr_matrix:
        """Learn the vocabulary/IDF from ``texts`` and vectorize them."""
        token_lists = [self.tokenizer.tokenize(t) for t in texts]
        df = Counter()
        for toks in token_lists:
            df.update(set(toks))
        kept = [tok for tok, count in df.items() if count >= self.min_df]
        # Sort for determinism independent of Counter iteration order.
        for tok in sorted(kept):
            self.vocabulary.add(tok)

        n_docs = len(texts)
        n_terms = len(self.vocabulary)
        idf = np.zeros(n_terms, dtype=np.float64)
        for tok in self.vocabulary.tokens():
            tid = self.vocabulary.get(tok)
            idf[tid] = np.log((1.0 + n_docs) / (1.0 + df[tok])) + 1.0
        self.idf_ = idf
        return self._vectorize(token_lists)

    def transform(self, texts: Sequence[str]) -> sparse.csr_matrix:
        """Vectorize ``texts`` with the already-learned vocabulary."""
        if self.idf_ is None:
            raise RuntimeError("vectorizer is not fitted; call fit_transform")
        return self._vectorize([self.tokenizer.tokenize(t) for t in texts])

    def _vectorize(self, token_lists: Iterable[list[str]]) -> sparse.csr_matrix:
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        n_docs = 0
        for row, toks in enumerate(token_lists):
            n_docs += 1
            counts = Counter(
                tid for tok in toks if (tid := self.vocabulary.get(tok)) is not None
            )
            for tid, count in counts.items():
                rows.append(row)
                cols.append(tid)
                vals.append(count * self.idf_[tid])
        matrix = sparse.csr_matrix(
            (vals, (rows, cols)),
            shape=(n_docs, len(self.vocabulary)),
            dtype=np.float64,
        )
        return _l2_normalize_rows(matrix)


def _l2_normalize_rows(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Rows scaled to unit L2 norm; all-zero rows are left untouched."""
    norms = np.sqrt(np.asarray(matrix.multiply(matrix).sum(axis=1))).ravel()
    scale = np.divide(1.0, norms, out=np.zeros_like(norms), where=norms > 0)
    return sparse.diags(scale) @ matrix


class CosineTextSimilarity(SimilarityModel):
    """Cosine similarity over an L2-normalized sparse row matrix.

    A document with an empty vector (all its tokens unseen or stopword)
    gets self-similarity forced to 1 to preserve the protocol contract;
    its similarity to everything else is 0.
    """

    def __init__(self, matrix: sparse.csr_matrix) -> None:
        if not sparse.issparse(matrix):
            matrix = sparse.csr_matrix(np.asarray(matrix, dtype=np.float64))
        self._matrix = matrix.tocsr()
        self._n = matrix.shape[0]

    @classmethod
    def from_texts(
        cls, texts: Sequence[str], vectorizer: TfidfVectorizer | None = None
    ) -> "CosineTextSimilarity":
        """Build directly from raw strings via a TF-IDF vectorizer."""
        vectorizer = vectorizer or TfidfVectorizer()
        return cls(vectorizer.fit_transform(texts))

    def __len__(self) -> int:
        return self._n

    def sim(self, i: int, j: int) -> float:
        if i == j:
            return 1.0
        value = float(self._matrix[i].multiply(self._matrix[j]).sum())
        return min(1.0, max(0.0, value))

    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        row = self._matrix[i]
        sims = np.asarray(
            (self._matrix[ids] @ row.T).todense(), dtype=np.float64
        ).ravel()
        np.clip(sims, 0.0, 1.0, out=sims)
        sims[ids == i] = 1.0
        return sims

    def row_kernel(self, ids: np.ndarray) -> RowKernel:
        """Row kernel with the population sub-matrix pre-transposed.

        Extracting ``M[ids]`` dominates :meth:`sims_to`; caching its
        transpose in the closure makes each evaluation a single
        row-times-matrix product (~6x faster on typical regions).
        """
        ids = np.asarray(ids, dtype=np.int64)
        sub_t = self._matrix[ids].T.tocsr()

        def kernel(obj_id: int) -> np.ndarray:
            row = self._matrix[int(obj_id)]
            sims = np.asarray((row @ sub_t).todense(), dtype=np.float64).ravel()
            np.clip(sims, 0.0, 1.0, out=sims)
            sims[ids == int(obj_id)] = 1.0
            return sims

        return kernel

    def rows_kernel(self, ids: np.ndarray) -> RowsKernel:
        """Block kernel: one sparse matmul per candidate block.

        CSR matmul computes each output row from that input row alone,
        so the block product's rows are bit-identical to the scalar
        kernel's ``row @ sub_t`` results.
        """
        ids = np.asarray(ids, dtype=np.int64)
        sub_t = self._matrix[ids].T.tocsr()

        def kernel(obj_ids: np.ndarray) -> np.ndarray:
            obj_ids = np.asarray(obj_ids, dtype=np.int64)
            sims = np.asarray(
                (self._matrix[obj_ids] @ sub_t).todense(), dtype=np.float64
            )
            np.clip(sims, 0.0, 1.0, out=sims)
            sims[obj_ids[:, None] == ids[None, :]] = 1.0
            return sims

        return kernel

    def process_spec(self) -> ProcessSpec | None:
        matrix = self._matrix
        return (
            "cosine_text",
            {"shape": tuple(matrix.shape)},
            {
                "data": matrix.data,
                "indices": matrix.indices,
                "indptr": matrix.indptr,
            },
        )

    def weighted_sims_sum(
        self,
        target_ids: np.ndarray,
        source_ids: np.ndarray,
        source_weights: np.ndarray,
    ) -> np.ndarray:
        """Single sparse matvec: ``M[targets] @ (w @ M[sources])``.

        This is what makes prefetching cheap for text similarity —
        ``O(nnz)`` instead of ``O(|targets| · |sources|)``.  A
        correction term restores the forced ``sim(t, t) = 1`` for
        zero-vector documents that appear on both sides.
        """
        target_ids = np.asarray(target_ids, dtype=np.int64)
        source_ids = np.asarray(source_ids, dtype=np.int64)
        weights = np.asarray(source_weights, dtype=np.float64)
        profile = self._matrix[source_ids].T @ weights  # vocab-sized vector
        out = np.asarray(self._matrix[target_ids] @ profile).ravel()
        # sims_to forces self-similarity to 1 even for empty vectors;
        # the dot product contributes ||x_t||^2 (1 or 0) instead.  Add
        # the difference for targets present in the source population.
        weight_of = dict(zip(source_ids.tolist(), weights.tolist()))
        norms = np.asarray(
            self._matrix[target_ids].multiply(self._matrix[target_ids]).sum(axis=1)
        ).ravel()
        for row, t in enumerate(target_ids.tolist()):
            w = weight_of.get(t)
            if w is not None:
                out[row] += w * (1.0 - norms[row])
        return out

    @property
    def matrix(self) -> sparse.csr_matrix:
        """The underlying normalized TF-IDF matrix."""
        return self._matrix


class JaccardSimilarity(SimilarityModel):
    """Jaccard overlap of keyword-id sets.

    Stored as a binarized CSR matrix; ``sims_to`` computes intersections
    with one sparse product and unions from cached set sizes.
    """

    def __init__(self, keyword_sets: Sequence[Iterable[int]]) -> None:
        rows: list[int] = []
        cols: list[int] = []
        max_kw = -1
        sizes = np.zeros(len(keyword_sets), dtype=np.float64)
        for row, kws in enumerate(keyword_sets):
            kw_set = set(int(k) for k in kws)
            sizes[row] = len(kw_set)
            for k in kw_set:
                if k < 0:
                    raise ValueError("keyword ids must be non-negative")
                rows.append(row)
                cols.append(k)
                max_kw = max(max_kw, k)
        self._sizes = sizes
        self._matrix = sparse.csr_matrix(
            (np.ones(len(rows)), (rows, cols)),
            shape=(len(keyword_sets), max_kw + 1 if max_kw >= 0 else 1),
            dtype=np.float64,
        )

    def __len__(self) -> int:
        return self._matrix.shape[0]

    def sim(self, i: int, j: int) -> float:
        if i == j:
            return 1.0
        inter = float(self._matrix[i].multiply(self._matrix[j]).sum())
        union = self._sizes[i] + self._sizes[j] - inter
        if union == 0:
            return 0.0
        return inter / union

    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        inter = np.asarray(
            (self._matrix[ids] @ self._matrix[i].T).todense(), dtype=np.float64
        ).ravel()
        union = self._sizes[ids] + self._sizes[i] - inter
        sims = np.divide(inter, union, out=np.zeros_like(inter), where=union > 0)
        sims[ids == i] = 1.0
        return sims

    def rows_kernel(self, ids: np.ndarray) -> RowsKernel:
        # Intersections are sums of exact 1.0s, so the block product is
        # bit-identical to per-row products regardless of accumulation
        # order; union/divide mirror sims_to elementwise.
        ids = np.asarray(ids, dtype=np.int64)
        sub_t = self._matrix[ids].T.tocsr()
        sizes_sub = self._sizes[ids]

        def kernel(obj_ids: np.ndarray) -> np.ndarray:
            obj_ids = np.asarray(obj_ids, dtype=np.int64)
            inter = np.asarray(
                (self._matrix[obj_ids] @ sub_t).todense(), dtype=np.float64
            )
            union = sizes_sub[None, :] + self._sizes[obj_ids][:, None] - inter
            sims = np.divide(
                inter, union, out=np.zeros_like(inter), where=union > 0
            )
            sims[obj_ids[:, None] == ids[None, :]] = 1.0
            return sims

        return kernel

    @classmethod
    def _from_parts(
        cls, matrix: sparse.csr_matrix, sizes: np.ndarray
    ) -> "JaccardSimilarity":
        """Rebuild from stored parts (the process-worker path)."""
        model = cls.__new__(cls)
        model._matrix = matrix
        model._sizes = np.asarray(sizes, dtype=np.float64)
        return model

    def process_spec(self) -> ProcessSpec | None:
        matrix = self._matrix
        return (
            "jaccard",
            {"shape": tuple(matrix.shape)},
            {
                "data": matrix.data,
                "indices": matrix.indices,
                "indptr": matrix.indptr,
                "sizes": self._sizes,
            },
        )
