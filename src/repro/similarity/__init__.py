"""Similarity substrate — the paper's "general function" ``Sim(oi, oj)``.

Section 3.1 of the paper deliberately leaves ``Sim(., .)`` abstract so
the same selection machinery works for tweets, POIs, photos, and so on.
This package provides:

* :class:`SimilarityModel` — the protocol.  The one performance-critical
  method is :meth:`SimilarityModel.sims_to`, a vectorized row kernel
  returning the similarity of one object to many, which is what makes
  the greedy marginal-gain loop tractable in Python.
* :class:`CosineTextSimilarity` — cosine over TF-IDF keyword vectors
  (the metric used for the paper's Twitter and POI experiments).
* :class:`EuclideanSimilarity` — ``1 - dist / d_max`` (the metric of the
  paper's user study, Sec. 7.2, reducing the score to WMSD).
* :class:`GaussianSpatialSimilarity` — ``exp(-dist^2 / (2 sigma^2))``.
* :class:`JaccardSimilarity` — set overlap of keyword ids.
* :class:`CombinedSimilarity` — convex combination of other models
  (e.g. text + space, as the introduction suggests for tweets).
* :class:`MatrixSimilarity` — an explicit precomputed matrix; the
  workhorse of tests and of the NP-hardness-reduction instances.

All models guarantee values in ``[0, 1]`` and ``Sim(o, o) = 1`` — both
assumptions the paper's score definition relies on.
"""

from repro.similarity.base import MatrixSimilarity, SimilarityModel
from repro.similarity.combined import CombinedSimilarity
from repro.similarity.minhash import (
    MinHashSimilarity,
    compute_signatures,
    near_duplicate_groups,
)
from repro.similarity.spatial import (
    EuclideanSimilarity,
    GaussianSpatialSimilarity,
    GrowableEuclideanSimilarity,
)
from repro.similarity.text import (
    CosineTextSimilarity,
    JaccardSimilarity,
    TfidfVectorizer,
    Tokenizer,
    Vocabulary,
)

__all__ = [
    "CombinedSimilarity",
    "CosineTextSimilarity",
    "EuclideanSimilarity",
    "GaussianSpatialSimilarity",
    "GrowableEuclideanSimilarity",
    "JaccardSimilarity",
    "MatrixSimilarity",
    "MinHashSimilarity",
    "SimilarityModel",
    "TfidfVectorizer",
    "Tokenizer",
    "Vocabulary",
    "compute_signatures",
    "near_duplicate_groups",
]
