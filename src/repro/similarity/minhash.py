"""MinHash similarity and LSH near-duplicate detection.

Geo-text corpora are dominated by near-duplicate content (retweets,
same-venue posts) — the very redundancy representative selection
exploits.  Exact pairwise Jaccard is quadratic; MinHash signatures
estimate it in constant time per pair, and Locality-Sensitive Hashing
over signature bands surfaces candidate duplicate groups in linear
time.

Two public pieces:

* :class:`MinHashSimilarity` — a :class:`SimilarityModel` whose
  ``sim(i, j)`` is the fraction of matching signature entries, an
  unbiased estimator of the Jaccard similarity of the underlying
  keyword sets.  Drop-in for any selector (cheaper than exact Jaccard
  for long documents).
* :func:`near_duplicate_groups` — LSH banding over the signatures,
  returning groups of objects that are likely near-duplicates; handy
  for pre-grouping venue posts before selection or for corpus
  diagnostics.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

import numpy as np

from repro.similarity.base import ProcessSpec, RowsKernel, SimilarityModel
from repro.similarity.text import Tokenizer

# A Mersenne prime comfortably above any 32-bit token hash.
_PRIME = (1 << 61) - 1


def _token_sets(
    texts: Sequence[str], tokenizer: Tokenizer | None
) -> list[set[int]]:
    tokenizer = tokenizer or Tokenizer()
    vocabulary: dict[str, int] = {}
    sets: list[set[int]] = []
    for text in texts:
        ids = set()
        for token in tokenizer.tokenize(text):
            tid = vocabulary.setdefault(token, len(vocabulary))
            ids.add(tid)
        sets.append(ids)
    return sets


def compute_signatures(
    keyword_sets: Sequence[Iterable[int]],
    num_hashes: int = 64,
    seed: int = 0,
) -> np.ndarray:
    """MinHash signature matrix (``len(sets) x num_hashes``, uint64).

    Uses the standard universal hash family ``(a·x + b) mod p``; an
    empty set gets the all-max sentinel signature (matching nothing,
    including other empty sets — callers wanting empty==empty handle
    it explicitly, as :class:`MinHashSimilarity` does for the
    self-similarity contract).
    """
    if num_hashes < 1:
        raise ValueError("num_hashes must be positive")
    rng = np.random.default_rng(seed)
    a = rng.integers(1, _PRIME, size=num_hashes, dtype=np.uint64)
    b = rng.integers(0, _PRIME, size=num_hashes, dtype=np.uint64)

    signatures = np.full(
        (len(keyword_sets), num_hashes), np.iinfo(np.uint64).max,
        dtype=np.uint64,
    )
    for row, kws in enumerate(keyword_sets):
        ids = np.fromiter((int(k) for k in kws), dtype=np.uint64)
        if len(ids) == 0:
            continue
        # (h, |ids|) hash values; min over the set per hash function.
        hashed = (
            (a[:, None] * ids[None, :] + b[:, None]) % np.uint64(_PRIME)
        )
        signatures[row] = hashed.min(axis=1)
    return signatures


class MinHashSimilarity(SimilarityModel):
    """Jaccard similarity estimated from MinHash signatures."""

    def __init__(
        self,
        keyword_sets: Sequence[Iterable[int]],
        num_hashes: int = 64,
        seed: int = 0,
    ) -> None:
        self._signatures = compute_signatures(keyword_sets, num_hashes, seed)
        self._n = len(keyword_sets)

    @classmethod
    def from_texts(
        cls,
        texts: Sequence[str],
        num_hashes: int = 64,
        seed: int = 0,
        tokenizer: Tokenizer | None = None,
    ) -> "MinHashSimilarity":
        """Build from raw strings via the standard tokenizer."""
        return cls(_token_sets(texts, tokenizer), num_hashes, seed)

    def __len__(self) -> int:
        return self._n

    def sim(self, i: int, j: int) -> float:
        if i == j:
            return 1.0
        matches = self._signatures[i] == self._signatures[j]
        return float(matches.mean())

    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        matches = self._signatures[ids] == self._signatures[i][None, :]
        sims = matches.mean(axis=1)
        sims[ids == i] = 1.0
        return sims

    def rows_kernel(self, ids: np.ndarray) -> RowsKernel:
        """Block kernel over a pre-gathered signature sub-matrix.

        Iterates the block row by row (a full ``block x ids x hashes``
        boolean tensor would be hundreds of MB for real regions) but
        amortizes the population gather — the expensive part of
        ``sims_to`` — across the whole block.
        """
        ids = np.asarray(ids, dtype=np.int64)
        sigs_sub = self._signatures[ids]

        def kernel(obj_ids: np.ndarray) -> np.ndarray:
            obj_ids = np.asarray(obj_ids, dtype=np.int64)
            out = np.empty((len(obj_ids), len(ids)), dtype=np.float64)
            for b, obj in enumerate(obj_ids):
                matches = sigs_sub == self._signatures[obj][None, :]
                sims = matches.mean(axis=1)
                sims[ids == obj] = 1.0
                out[b] = sims
            return out

        return kernel

    @classmethod
    def from_signatures(cls, signatures: np.ndarray) -> "MinHashSimilarity":
        """Wrap an existing signature matrix (the process-worker path)."""
        model = cls.__new__(cls)
        model._signatures = np.asarray(signatures, dtype=np.uint64)
        model._n = len(model._signatures)
        return model

    def process_spec(self) -> ProcessSpec | None:
        return ("minhash", {}, {"signatures": self._signatures})

    @property
    def signatures(self) -> np.ndarray:
        """The signature matrix (read-only use expected)."""
        return self._signatures


def near_duplicate_groups(
    signatures: np.ndarray,
    bands: int = 16,
    min_group: int = 2,
) -> list[np.ndarray]:
    """Groups of likely near-duplicates via LSH banding.

    The signature columns are split into ``bands``; objects sharing any
    full band land in the same bucket.  With ``h`` hashes and ``b``
    bands the match probability for Jaccard ``s`` is
    ``1 - (1 - s^(h/b))^b`` — steep around ``s ≈ (1/b)^(b/h)``.
    Buckets are merged transitively (union-find), and groups smaller
    than ``min_group`` are dropped.

    Returns sorted id arrays, largest group first.
    """
    n, num_hashes = signatures.shape
    if bands < 1 or num_hashes % bands != 0:
        raise ValueError(
            f"bands must divide the signature width ({num_hashes})"
        )
    rows_per_band = num_hashes // bands

    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: int, y: int) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[max(rx, ry)] = min(rx, ry)

    for band in range(bands):
        chunk = signatures[:, band * rows_per_band:(band + 1) * rows_per_band]
        buckets: dict[bytes, int] = {}
        for row in range(n):
            key = chunk[row].tobytes()
            first = buckets.setdefault(key, row)
            if first != row:
                union(first, row)

    members: dict[int, list[int]] = defaultdict(list)
    for row in range(n):
        members[find(row)].append(row)
    groups = [
        np.asarray(sorted(group), dtype=np.int64)
        for group in members.values()
        if len(group) >= min_group
    ]
    groups.sort(key=len, reverse=True)
    return groups
