"""Similarity protocol and the precomputed-matrix implementation."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from typing import Any

import numpy as np

#: Scalar kernel closure: ``f(obj_id) -> sims_to(obj_id, ids)``.
RowKernel = Callable[[int], np.ndarray]
#: Batched kernel closure: ``f(obj_ids) -> (len(obj_ids), len(ids))``.
RowsKernel = Callable[[np.ndarray], np.ndarray]
#: Shared-memory reconstruction recipe ``(kind, params, arrays)`` for
#: :func:`repro.parallel.modelspec.build_model`.
ProcessSpec = tuple[str, dict[str, Any], dict[str, np.ndarray]]


class SimilarityModel(ABC):
    """Pairwise similarity over a fixed table of objects.

    Objects are identified by row number, exactly as in the spatial
    indexes.  Implementations must guarantee:

    * ``sim(i, j) in [0, 1]`` for all pairs,
    * ``sim(i, i) == 1`` (an object always fully represents itself,
      which the paper's Eq. 2 and the NP-hardness proof both use),
    * symmetry: ``sim(i, j) == sim(j, i)``.

    The abstract surface is intentionally tiny: a scalar ``sim`` and a
    vectorized ``sims_to`` row kernel.  Everything in the selection
    algorithms is built on those two calls.
    """

    #: Whether concurrent calls into the model's kernels are safe.
    #: Pure-function models are; stateful wrappers (the memoizing
    #: :class:`~repro.cache.SimilarityCache`) override this to False
    #: and the worker pool degrades to serial block execution.
    thread_safe = True

    #: Whether block evaluation beats per-row evaluation for this
    #: model.  Kernels with real per-invocation overhead (scipy sparse
    #: matmuls, Python-level set logic) gain several-fold from
    #: batching; dense coordinate kernels whose scalar closures are
    #: already one fully-vectorized cache-resident expression lose to
    #: the (batch, population) block temporaries and override this to
    #: False.  Only consulted when the caller leaves ``batch_size``
    #: unset — an explicit batch size is always honored (results are
    #: bit-identical either way; this is purely a speed default).
    batch_friendly = True

    @abstractmethod
    def __len__(self) -> int:
        """Number of objects the model is defined over."""

    @abstractmethod
    def sim(self, i: int, j: int) -> float:
        """Similarity of objects ``i`` and ``j``."""

    @abstractmethod
    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        """Similarities of object ``i`` to each object in ``ids``.

        Returns a ``float64`` array aligned with ``ids``.  This is the
        hot path of the greedy algorithm; implementations should be
        fully vectorized.
        """

    def row_kernel(self, ids: np.ndarray) -> RowKernel:
        """A specialized ``f(obj_id) -> sims_to(obj_id, ids)`` closure.

        The greedy loop evaluates similarities of many different
        objects against the *same* population; implementations can
        amortize per-population work (sub-matrix extraction, coordinate
        gathering) into the closure.  The default simply defers to
        :meth:`sims_to`.
        """
        ids = np.asarray(ids, dtype=np.int64)

        def kernel(obj_id: int) -> np.ndarray:
            return self.sims_to(int(obj_id), ids)

        return kernel

    def rows_kernel(self, ids: np.ndarray) -> RowsKernel:
        """A batched ``f(ids_block) -> (len(block), len(ids))`` closure.

        The block counterpart of :meth:`row_kernel`: one invocation
        evaluates a whole block of objects against the population, so
        heap initialization pays one kernel call per block instead of
        one per candidate.  Implementations must return rows that are
        **bit-identical** to the scalar kernel's — the greedy engine's
        determinism contract (CELF min-id tie-breaking) depends on it.
        The default stacks scalar kernel rows, which is trivially
        identical; vectorized overrides must preserve the elementwise
        operation order of their scalar twin.
        """
        ids = np.asarray(ids, dtype=np.int64)
        row = self.row_kernel(ids)

        def kernel(obj_ids: np.ndarray) -> np.ndarray:
            obj_ids = np.asarray(obj_ids, dtype=np.int64)
            out = np.empty((len(obj_ids), len(ids)), dtype=np.float64)
            for b, obj in enumerate(obj_ids):
                out[b] = row(int(obj))
            return out

        return kernel

    def process_spec(self) -> ProcessSpec | None:
        """Shared-memory reconstruction recipe, or ``None``.

        Models that can be rebuilt inside a worker process from plain
        numpy arrays return ``(kind, params, arrays)`` — ``kind`` a
        registry key for :func:`repro.parallel.modelspec.build_model`,
        ``params`` a small picklable dict, ``arrays`` named ndarrays
        the parent exports to ``multiprocessing.shared_memory``.
        ``None`` (the default) means the process backend is
        unavailable for this model and the pool falls back to threads.
        """
        return None

    def weighted_sims_sum(
        self,
        target_ids: np.ndarray,
        source_ids: np.ndarray,
        source_weights: np.ndarray,
    ) -> np.ndarray:
        """``out[t] = Σ_s source_weights[s] · sim(target_ids[t], source_ids[s])``.

        This bulk kernel is what the Sec. 5.2 prefetcher computes: the
        weighted sum of similarities from each target to a whole source
        population (the upper bounds of Lemmas 5.1–5.3).  The default
        loops ``sims_to`` over targets; models whose similarity is an
        inner product override it with a single matrix-vector product.
        """
        target_ids = np.asarray(target_ids, dtype=np.int64)
        source_ids = np.asarray(source_ids, dtype=np.int64)
        weights = np.asarray(source_weights, dtype=np.float64)
        if len(source_ids) != len(weights):
            raise ValueError("source_ids and source_weights must align")
        out = np.empty(len(target_ids), dtype=np.float64)
        for row, t in enumerate(target_ids):
            out[row] = float(np.dot(weights, self.sims_to(int(t), source_ids)))
        return out

    def pairwise_matrix(self, ids: np.ndarray) -> np.ndarray:
        """Dense ``len(ids) x len(ids)`` similarity matrix.

        Convenience for baselines (MaxMin/MaxSum/DisC) that need all
        pairs of a *small* candidate set.  Quadratic in ``len(ids)``.
        """
        ids = np.asarray(ids, dtype=np.int64)
        out = np.empty((len(ids), len(ids)), dtype=np.float64)
        for row, i in enumerate(ids):
            out[row] = self.sims_to(int(i), ids)
        return out


class MatrixSimilarity(SimilarityModel):
    """Similarity read from an explicit symmetric matrix.

    Used heavily in tests (random submodularity instances, the MDS
    reduction of Theorem 3.2) and available to users with small
    datasets and bespoke metrics.
    """

    def __init__(self, matrix: np.ndarray, validate: bool = True) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got shape {matrix.shape}")
        if validate:
            if matrix.size and (matrix.min() < 0.0 or matrix.max() > 1.0):
                raise ValueError("similarities must lie in [0, 1]")
            if not np.allclose(matrix, matrix.T):
                raise ValueError("similarity matrix must be symmetric")
            if matrix.size and not np.allclose(np.diag(matrix), 1.0):
                raise ValueError("self-similarity must be 1")
        self._matrix = matrix

    @classmethod
    def random(
        cls, n: int, rng: np.random.Generator | None = None
    ) -> "MatrixSimilarity":
        """A random valid similarity matrix (symmetric, unit diagonal)."""
        # Seeded default: an omitted rng must still give run-to-run
        # reproducible results (the paper's evaluation contract).
        rng = rng or np.random.default_rng(0)
        raw = rng.random((n, n))
        sym = (raw + raw.T) / 2.0
        np.fill_diagonal(sym, 1.0)
        return cls(sym)

    def __len__(self) -> int:
        return self._matrix.shape[0]

    def sim(self, i: int, j: int) -> float:
        return float(self._matrix[i, j])

    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        return self._matrix[i, np.asarray(ids, dtype=np.int64)]

    def rows_kernel(self, ids: np.ndarray) -> RowsKernel:
        ids = np.asarray(ids, dtype=np.int64)

        def kernel(obj_ids: np.ndarray) -> np.ndarray:
            obj_ids = np.asarray(obj_ids, dtype=np.int64)
            # Pure gather — the same stored values the scalar kernel
            # reads, so bit-identity is structural.
            return self._matrix[obj_ids[:, None], ids[None, :]]

        return kernel

    def process_spec(self) -> ProcessSpec | None:
        return ("matrix", {}, {"matrix": self._matrix})

    def weighted_sims_sum(
        self,
        target_ids: np.ndarray,
        source_ids: np.ndarray,
        source_weights: np.ndarray,
    ) -> np.ndarray:
        target_ids = np.asarray(target_ids, dtype=np.int64)
        source_ids = np.asarray(source_ids, dtype=np.int64)
        weights = np.asarray(source_weights, dtype=np.float64)
        return self._matrix[np.ix_(target_ids, source_ids)] @ weights

    @property
    def matrix(self) -> np.ndarray:
        """The underlying matrix (read-only view for callers)."""
        return self._matrix
