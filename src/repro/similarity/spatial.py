"""Spatial (location-based) similarity models.

Two normalizations of geometric distance into ``[0, 1]``:

* :class:`EuclideanSimilarity` — the linear ``1 - dist/d_max`` form the
  paper's user study uses ("we use Euclidean distance as the similarity
  metric", Sec. 7.2).  Under this metric the representative score
  coincides with the Weighted Mean of Shortest Distances (WMSD)
  criterion from spatial statistics.
* :class:`GaussianSpatialSimilarity` — ``exp(-dist^2 / (2 sigma^2))``,
  a smooth kernel whose bandwidth ``sigma`` expresses "how far away is
  still similar".  This is the default spatial component of the
  combined tweet metric.
"""

from __future__ import annotations

import numpy as np

from repro.geo.distance import euclidean_many
from repro.similarity.base import (
    ProcessSpec,
    RowKernel,
    RowsKernel,
    SimilarityModel,
)

# Outer target-chunk budget (elements) for the vectorized bulk-mass
# sweep: big enough to amortize per-chunk Python overhead, small enough
# that the (chunk, n_sources) distance temporaries stay a few MB.
_MASS_CHUNK_ELEMS = 262_144


def _mass_sweep(
    rows_kernel: RowsKernel,
    target_ids: np.ndarray,
    weights: np.ndarray,
    n_sources: int,
) -> np.ndarray:
    """Chunked ``Σ_s w_s · sim(t, s)`` over targets via a rows kernel.

    Both the broadcast kernel (elementwise) and the mass reduction
    (:func:`~repro.core.scoring.weighted_mass_rows`, row-independent)
    compute each row independently, so outer chunking never changes a
    bit — only the peak size of the distance temporaries.
    """
    # Imported lazily: similarity must stay importable without core
    # (core.dataset pulls the similarity package back in at build time).
    from repro.core.scoring import weighted_mass_rows

    out = np.empty(len(target_ids), dtype=np.float64)
    chunk = max(1, _MASS_CHUNK_ELEMS // max(n_sources, 1))
    for start in range(0, len(target_ids), chunk):
        block = target_ids[start:start + chunk]
        out[start:start + len(block)] = weighted_mass_rows(
            rows_kernel(block), weights
        )
    return out


class EuclideanSimilarity(SimilarityModel):
    """``sim(i, j) = max(0, 1 - dist(i, j) / d_max)``.

    ``d_max`` defaults to the diagonal of the points' bounding box, so
    the most distant pair in the frame has similarity ~0 and coincident
    points have similarity 1.
    """

    # The scalar row closure is already one vectorized hypot over
    # cache-resident coordinate gathers; (batch, n) block temporaries
    # only add memory traffic, so default batching stays off.
    batch_friendly = False

    def __init__(self, xs: np.ndarray, ys: np.ndarray, d_max: float | None = None) -> None:
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        if self.xs.shape != self.ys.shape or self.xs.ndim != 1:
            raise ValueError("xs and ys must be 1-D arrays of equal length")
        if d_max is None:
            if len(self.xs) == 0:
                d_max = 1.0
            else:
                dx = float(self.xs.max() - self.xs.min())
                dy = float(self.ys.max() - self.ys.min())
                d_max = float(np.hypot(dx, dy)) or 1.0
        if d_max <= 0:
            raise ValueError(f"d_max must be positive, got {d_max}")
        self.d_max = d_max

    def __len__(self) -> int:
        return len(self.xs)

    def sim(self, i: int, j: int) -> float:
        d = float(np.hypot(self.xs[i] - self.xs[j], self.ys[i] - self.ys[j]))
        return max(0.0, 1.0 - d / self.d_max)

    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        dists = euclidean_many(
            float(self.xs[i]), float(self.ys[i]), self.xs[ids], self.ys[ids]
        )
        return np.maximum(0.0, 1.0 - dists / self.d_max)

    def row_kernel(self, ids: np.ndarray) -> RowKernel:
        ids = np.asarray(ids, dtype=np.int64)
        xs_sub = self.xs[ids]
        ys_sub = self.ys[ids]

        def kernel(obj_id: int) -> np.ndarray:
            dists = euclidean_many(
                float(self.xs[obj_id]), float(self.ys[obj_id]), xs_sub, ys_sub
            )
            return np.maximum(0.0, 1.0 - dists / self.d_max)

        return kernel

    def rows_kernel(self, ids: np.ndarray) -> RowsKernel:
        ids = np.asarray(ids, dtype=np.int64)
        xs_sub = self.xs[ids]
        ys_sub = self.ys[ids]

        def kernel(obj_ids: np.ndarray) -> np.ndarray:
            obj_ids = np.asarray(obj_ids, dtype=np.int64)
            # Broadcast form of the scalar kernel: hypot / subtract /
            # divide are elementwise, so every row is bit-identical to
            # euclidean_many against the same coordinates.
            dists = np.hypot(
                xs_sub[None, :] - self.xs[obj_ids][:, None],
                ys_sub[None, :] - self.ys[obj_ids][:, None],
            )
            return np.maximum(0.0, 1.0 - dists / self.d_max)

        return kernel

    def weighted_sims_sum(
        self,
        target_ids: np.ndarray,
        source_ids: np.ndarray,
        source_weights: np.ndarray,
    ) -> np.ndarray:
        """Vectorized bulk mass — no per-target Python loop.

        Broadcast distance rows reduced with the shared dual-form mass
        kernel; the base class's per-target fallback costs one Python
        iteration per target, which dominates exactly the delta-
        maintenance case (tens of thousands of targets against a small
        entering source set).
        """
        target_ids = np.asarray(target_ids, dtype=np.int64)
        source_ids = np.asarray(source_ids, dtype=np.int64)
        weights = np.asarray(source_weights, dtype=np.float64)
        if len(source_ids) != len(weights):
            raise ValueError("source_ids and source_weights must align")
        return _mass_sweep(
            self.rows_kernel(source_ids), target_ids, weights, len(source_ids)
        )

    def process_spec(self) -> ProcessSpec | None:
        return ("euclidean", {"d_max": self.d_max}, {"xs": self.xs, "ys": self.ys})


class GrowableEuclideanSimilarity(EuclideanSimilarity):
    """:class:`EuclideanSimilarity` over an append-only universe.

    Built for streams: the universe starts empty and
    :meth:`append` extends it as objects arrive, so a
    :class:`~repro.core.streaming.StreamingSelector` whose feed length
    is unknown upfront can be given one fixed model.  ``d_max`` must be
    supplied explicitly (there are no points to infer a frame diagonal
    from, and a data-dependent ``d_max`` would make earlier
    similarities change retroactively as the stream grows).

    Not process-pool safe: a worker's shared-memory copy would go stale
    on the next append.  Streams never fan out, so :meth:`process_spec`
    simply opts out.
    """

    def __init__(self, d_max: float) -> None:
        super().__init__(
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.float64),
            d_max=d_max,
        )

    def append(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """Extend the universe with a batch of coordinates."""
        xs = np.atleast_1d(np.asarray(xs, dtype=np.float64))
        ys = np.atleast_1d(np.asarray(ys, dtype=np.float64))
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ValueError("xs and ys must be 1-D arrays of equal length")
        self.xs = np.concatenate([self.xs, xs])
        self.ys = np.concatenate([self.ys, ys])

    def truncate(self, n: int) -> None:
        """Shrink the universe back to its first ``n`` objects.

        Rollback hook for feeders that append a batch ahead of
        ingesting it: when ingestion rejects the batch midway, the
        un-ingested tail must leave the universe too, or every later
        arrival's id would point at the wrong coordinates.
        """
        if not 0 <= n <= len(self.xs):
            raise ValueError(
                f"cannot truncate universe of {len(self.xs)} to {n}"
            )
        self.xs = self.xs[:n]
        self.ys = self.ys[:n]

    def process_spec(self) -> ProcessSpec | None:
        return None


class GaussianSpatialSimilarity(SimilarityModel):
    """``sim(i, j) = exp(-dist(i, j)^2 / (2 sigma^2))``."""

    # Same trade-off as EuclideanSimilarity: the scalar closure is one
    # vectorized expression, so block batching only buys memory traffic.
    batch_friendly = False

    def __init__(self, xs: np.ndarray, ys: np.ndarray, sigma: float) -> None:
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        if self.xs.shape != self.ys.shape or self.xs.ndim != 1:
            raise ValueError("xs and ys must be 1-D arrays of equal length")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        self.sigma = sigma
        self._inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma)

    def __len__(self) -> int:
        return len(self.xs)

    def sim(self, i: int, j: int) -> float:
        dx = float(self.xs[i] - self.xs[j])
        dy = float(self.ys[i] - self.ys[j])
        return float(np.exp(-(dx * dx + dy * dy) * self._inv_two_sigma_sq))

    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        dx = self.xs[ids] - self.xs[i]
        dy = self.ys[ids] - self.ys[i]
        return np.exp(-(dx * dx + dy * dy) * self._inv_two_sigma_sq)

    def row_kernel(self, ids: np.ndarray) -> RowKernel:
        ids = np.asarray(ids, dtype=np.int64)
        xs_sub = self.xs[ids]
        ys_sub = self.ys[ids]

        def kernel(obj_id: int) -> np.ndarray:
            dx = xs_sub - self.xs[obj_id]
            dy = ys_sub - self.ys[obj_id]
            return np.exp(-(dx * dx + dy * dy) * self._inv_two_sigma_sq)

        return kernel

    def rows_kernel(self, ids: np.ndarray) -> RowsKernel:
        ids = np.asarray(ids, dtype=np.int64)
        xs_sub = self.xs[ids]
        ys_sub = self.ys[ids]

        def kernel(obj_ids: np.ndarray) -> np.ndarray:
            obj_ids = np.asarray(obj_ids, dtype=np.int64)
            dx = xs_sub[None, :] - self.xs[obj_ids][:, None]
            dy = ys_sub[None, :] - self.ys[obj_ids][:, None]
            return np.exp(-(dx * dx + dy * dy) * self._inv_two_sigma_sq)

        return kernel

    def weighted_sims_sum(
        self,
        target_ids: np.ndarray,
        source_ids: np.ndarray,
        source_weights: np.ndarray,
    ) -> np.ndarray:
        """Vectorized bulk mass (see :meth:`EuclideanSimilarity.weighted_sims_sum`)."""
        target_ids = np.asarray(target_ids, dtype=np.int64)
        source_ids = np.asarray(source_ids, dtype=np.int64)
        weights = np.asarray(source_weights, dtype=np.float64)
        if len(source_ids) != len(weights):
            raise ValueError("source_ids and source_weights must align")
        return _mass_sweep(
            self.rows_kernel(source_ids), target_ids, weights, len(source_ids)
        )

    def process_spec(self) -> ProcessSpec | None:
        return ("gaussian", {"sigma": self.sigma}, {"xs": self.xs, "ys": self.ys})
