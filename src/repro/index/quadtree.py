"""Point-region quadtree index.

A classic alternative to the R-tree for point data: space is split
into four equal quadrants recursively until a node holds at most
``leaf_capacity`` points.  Unlike the k-d tree (which splits on data
medians) the quadtree's decomposition is *spatial*, so dense areas go
deep while empty quarters stay shallow — a good match for the heavily
clustered corpora this library generates.

Supports incremental :meth:`QuadTreeIndex.insert` (points append to
the coordinate table; ids stay stable), like the R-tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.index.base import SpatialIndex

_DEFAULT_LEAF_CAPACITY = 32
# Identical coincident points could split forever; stop at this depth
# and let leaves overflow instead.
_MAX_DEPTH = 32


@dataclass(slots=True)
class _QNode:
    """One quadtree cell.

    Leaves keep explicit point ids; internal nodes keep the indexes of
    their four children (NW, NE, SW, SE order).
    """

    minx: float
    miny: float
    maxx: float
    maxy: float
    depth: int
    points: list[int] = field(default_factory=list)
    children: tuple[int, int, int, int] | None = None

    @property
    def box(self) -> BoundingBox:
        return BoundingBox(self.minx, self.miny, self.maxx, self.maxy)


class QuadTreeIndex(SpatialIndex):
    """Point-region quadtree with incremental insert."""

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        leaf_capacity: int = _DEFAULT_LEAF_CAPACITY,
    ):
        super().__init__(xs, ys)
        if leaf_capacity < 1:
            raise ValueError(
                f"leaf_capacity must be >= 1, got {leaf_capacity}"
            )
        self.leaf_capacity = leaf_capacity
        self._nodes: list[_QNode] = []
        if len(self.xs):
            frame = BoundingBox.from_points(self.xs, self.ys)
        else:
            frame = BoundingBox.unit()
        # A zero-extent frame (single point / identical points) still
        # needs positive size to subdivide.
        pad = 1e-12 + 1e-9 * max(frame.width, frame.height)
        self._root = self._make_node(
            frame.minx - pad, frame.miny - pad,
            frame.maxx + pad, frame.maxy + pad,
            depth=0,
        )
        for obj_id in range(len(self.xs)):
            self._insert_into(self._root, obj_id)

    def _make_node(
        self, minx: float, miny: float, maxx: float, maxy: float, depth: int
    ) -> int:
        self._nodes.append(_QNode(minx, miny, maxx, maxy, depth))
        return len(self._nodes) - 1

    def _child_for(self, node: _QNode, x: float, y: float) -> int:
        midx = (node.minx + node.maxx) / 2.0
        midy = (node.miny + node.maxy) / 2.0
        quadrant = (0 if y >= midy else 2) + (0 if x < midx else 1)
        return node.children[quadrant]

    def _split(self, ni: int) -> None:
        node = self._nodes[ni]
        midx = (node.minx + node.maxx) / 2.0
        midy = (node.miny + node.maxy) / 2.0
        depth = node.depth + 1
        children = (
            self._make_node(node.minx, midy, midx, node.maxy, depth),  # NW
            self._make_node(midx, midy, node.maxx, node.maxy, depth),  # NE
            self._make_node(node.minx, node.miny, midx, midy, depth),  # SW
            self._make_node(midx, node.miny, node.maxx, midy, depth),  # SE
        )
        node = self._nodes[ni]  # list may have reallocated
        node.children = children
        points, node.points = node.points, []
        for obj_id in points:
            child = self._child_for(
                node, float(self.xs[obj_id]), float(self.ys[obj_id])
            )
            self._insert_into(child, obj_id)

    def _insert_into(self, ni: int, obj_id: int) -> None:
        while True:
            node = self._nodes[ni]
            if node.children is None:
                node.points.append(obj_id)
                if (
                    len(node.points) > self.leaf_capacity
                    and node.depth < _MAX_DEPTH
                ):
                    self._split(ni)
                return
            ni = self._child_for(
                node, float(self.xs[obj_id]), float(self.ys[obj_id])
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query_region(self, box: BoundingBox) -> np.ndarray:
        chunks: list[np.ndarray] = []
        collected: list[int] = []
        stack = [self._root]
        while stack:
            node = self._nodes[stack.pop()]
            nbox = node.box
            if not box.intersects(nbox):
                continue
            whole = box.contains_box(nbox)
            if node.children is None:
                if not node.points:
                    continue
                ids = np.asarray(node.points, dtype=np.int64)
                if whole:
                    chunks.append(ids)
                else:
                    mask = box.contains_many(self.xs[ids], self.ys[ids])
                    if mask.any():
                        chunks.append(ids[mask])
            elif whole:
                # Entire subtree qualifies; drain it without box tests.
                sub = list(node.children)
                while sub:
                    child = self._nodes[sub.pop()]
                    if child.children is None:
                        collected.extend(child.points)
                    else:
                        sub.extend(child.children)
            else:
                stack.extend(node.children)
        if collected:
            chunks.append(np.asarray(collected, dtype=np.int64))
        if not chunks:
            return np.empty(0, dtype=np.int64)
        result = np.concatenate(chunks)
        result.sort()
        return result

    # ------------------------------------------------------------------
    # Incremental insert
    # ------------------------------------------------------------------

    def insert(self, x: float, y: float) -> int:
        """Insert a point, returning its new id (stable row numbers).

        Points outside the root frame grow the root by re-rooting:
        a new, larger root adopts the old tree as one quadrant.
        """
        new_id = len(self.xs)
        self.xs = np.append(self.xs, float(x))
        self.ys = np.append(self.ys, float(y))
        while not self._nodes[self._root].box.contains_point(x, y):
            self._grow_root(x, y)
        self._insert_into(self._root, new_id)
        return new_id

    def _grow_root(self, x: float, y: float) -> None:
        root = self._nodes[self._root]
        width = root.maxx - root.minx
        height = root.maxy - root.miny
        # Grow toward the out-of-frame point.
        minx = root.minx - (width if x < root.minx else 0.0)
        miny = root.miny - (height if y < root.miny else 0.0)
        new_root = self._make_node(
            minx, miny, minx + 2 * width, miny + 2 * height, depth=0
        )
        # Re-home existing points under the bigger root.  Quadtrees
        # re-root cheaply only when the old box aligns with a quadrant;
        # re-inserting ids is simpler and still O(n log n) worst case,
        # and growth is rare (bulk data defines the frame up front).
        old_root = self._root
        self._root = new_root
        stack = [old_root]
        while stack:
            node = self._nodes[stack.pop()]
            if node.children is None:
                for obj_id in node.points:
                    self._insert_into(self._root, obj_id)
            else:
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def depth(self) -> int:
        """Maximum leaf depth."""
        best = 0
        stack = [self._root]
        while stack:
            node = self._nodes[stack.pop()]
            if node.children is None:
                best = max(best, node.depth)
            else:
                stack.extend(node.children)
        return best

    def check_invariants(self) -> None:
        """Structural checks; raises ``AssertionError`` on violation."""
        seen: list[int] = []
        stack = [self._root]
        while stack:
            ni = stack.pop()
            node = self._nodes[ni]
            if node.children is None:
                for obj_id in node.points:
                    assert node.box.contains_point(
                        float(self.xs[obj_id]), float(self.ys[obj_id])
                    ), (ni, obj_id)
                seen.extend(node.points)
            else:
                assert not node.points  # internal nodes hold no points
                for child in node.children:
                    assert self._nodes[child].depth == node.depth + 1
                stack.extend(node.children)
        assert sorted(seen) == list(range(len(self.xs)))
