"""Spatial index substrate.

The paper uses an R-tree "as the spatial index for region queries"
(Sec. 7.1).  Since this reproduction is dependency-free beyond
numpy/scipy, the indexes are built from scratch:

* :class:`LinearIndex` — brute-force scan; the ground truth the other
  indexes are verified against.
* :class:`GridIndex` — uniform grid binning; excellent for the
  near-uniform-density region queries of the benchmarks.
* :class:`KDTreeIndex` — median-split k-d tree with region and radius
  queries and k-nearest-neighbour search.
* :class:`QuadTreeIndex` — point-region quadtree with incremental
  insert; spatial decomposition suits heavily clustered data.
* :class:`RTreeIndex` — Sort-Tile-Recursive bulk-loaded R-tree with
  incremental insert (quadratic split), the default index.

All indexes implement the :class:`SpatialIndex` protocol over a fixed
point table ``(xs, ys)`` whose implicit ids are row numbers.
"""

from repro.index.base import LinearIndex, SpatialIndex
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTreeIndex
from repro.index.quadtree import QuadTreeIndex
from repro.index.rtree import RTreeIndex

INDEX_CLASSES = {
    "linear": LinearIndex,
    "grid": GridIndex,
    "kdtree": KDTreeIndex,
    "quadtree": QuadTreeIndex,
    "rtree": RTreeIndex,
}


def build_index(kind: str, xs, ys, **kwargs) -> SpatialIndex:
    """Build a spatial index by name (``linear|grid|kdtree|rtree``)."""
    try:
        cls = INDEX_CLASSES[kind]
    except KeyError:
        raise ValueError(
            f"unknown index kind {kind!r}; choose from {sorted(INDEX_CLASSES)}"
        ) from None
    return cls(xs, ys, **kwargs)


__all__ = [
    "GridIndex",
    "INDEX_CLASSES",
    "KDTreeIndex",
    "LinearIndex",
    "QuadTreeIndex",
    "RTreeIndex",
    "SpatialIndex",
    "build_index",
]
