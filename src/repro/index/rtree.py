"""R-tree over points: STR bulk load plus incremental insert.

This is the default index of the library, mirroring the paper's setup
("we use R-tree as the spatial index for region queries", Sec. 7.1).

Construction uses Sort-Tile-Recursive (STR) packing, which produces a
near-optimal static tree in ``O(n log n)``: points are sorted into
vertical slabs by x, each slab sorted by y, and consecutive runs of
``fanout`` points become leaves; the process repeats on the leaf MBRs
until a single root remains.

Incremental :meth:`RTreeIndex.insert` follows the classic Guttman
algorithm: choose the subtree needing the least MBR enlargement, split
overflowing nodes with the quadratic split heuristic, propagate splits
upward (growing a new root if needed).  Inserted points are appended to
the coordinate arrays, so ids remain stable row numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.index.base import SpatialIndex

_DEFAULT_FANOUT = 32


@dataclass(slots=True)
class _RNode:
    """An R-tree node.

    Leaves hold point ids in ``entries``; internal nodes hold child node
    indexes in ``entries``.  Every node caches its MBR.
    """

    is_leaf: bool
    minx: float = np.inf
    miny: float = np.inf
    maxx: float = -np.inf
    maxy: float = -np.inf
    entries: list[int] = field(default_factory=list)
    parent: int = -1

    @property
    def box(self) -> BoundingBox:
        return BoundingBox(self.minx, self.miny, self.maxx, self.maxy)

    def area(self) -> float:
        if self.minx > self.maxx:
            return 0.0
        return (self.maxx - self.minx) * (self.maxy - self.miny)

    def extend(self, minx: float, miny: float, maxx: float, maxy: float) -> None:
        self.minx = min(self.minx, minx)
        self.miny = min(self.miny, miny)
        self.maxx = max(self.maxx, maxx)
        self.maxy = max(self.maxy, maxy)

    def enlargement(self, x: float, y: float) -> float:
        """Area growth if ``(x, y)`` joined this node's MBR."""
        nminx = min(self.minx, x)
        nminy = min(self.miny, y)
        nmaxx = max(self.maxx, x)
        nmaxy = max(self.maxy, y)
        return (nmaxx - nminx) * (nmaxy - nminy) - self.area()


class RTreeIndex(SpatialIndex):
    """STR bulk-loaded R-tree with Guttman-style incremental insert."""

    def __init__(
        self, xs: np.ndarray, ys: np.ndarray, fanout: int = _DEFAULT_FANOUT
    ):
        super().__init__(xs, ys)
        if fanout < 4:
            raise ValueError(f"fanout must be >= 4, got {fanout}")
        self.fanout = fanout
        self._min_fill = max(2, fanout // 3)
        self._nodes: list[_RNode] = []
        self._root = -1
        if len(self.xs) > 0:
            self._bulk_load()

    # ------------------------------------------------------------------
    # STR bulk load
    # ------------------------------------------------------------------

    def _bulk_load(self) -> None:
        ids = np.argsort(self.xs, kind="stable").astype(np.int64)
        n = len(ids)
        f = self.fanout
        # Number of leaves, slabs, and leaf capacity per STR.
        leaves_needed = int(np.ceil(n / f))
        slabs = int(np.ceil(np.sqrt(leaves_needed)))
        slab_size = int(np.ceil(n / slabs))

        leaf_indexes: list[int] = []
        for s in range(0, n, slab_size):
            slab = ids[s:s + slab_size]
            slab = slab[np.argsort(self.ys[slab], kind="stable")]
            for t in range(0, len(slab), f):
                run = slab[t:t + f]
                node = _RNode(is_leaf=True, entries=[int(i) for i in run])
                node.extend(
                    float(self.xs[run].min()), float(self.ys[run].min()),
                    float(self.xs[run].max()), float(self.ys[run].max()),
                )
                self._nodes.append(node)
                leaf_indexes.append(len(self._nodes) - 1)

        # Pack upward until one root remains.
        level = leaf_indexes
        while len(level) > 1:
            next_level: list[int] = []
            # Sort level nodes by MBR center x then tile by y, same scheme.
            centers_x = np.array(
                [(self._nodes[i].minx + self._nodes[i].maxx) / 2 for i in level]
            )
            order = np.argsort(centers_x, kind="stable")
            level_sorted = [level[int(i)] for i in order]
            groups_needed = int(np.ceil(len(level_sorted) / f))
            slabs = int(np.ceil(np.sqrt(groups_needed)))
            slab_size = int(np.ceil(len(level_sorted) / slabs))
            for s in range(0, len(level_sorted), slab_size):
                slab_nodes = level_sorted[s:s + slab_size]
                centers_y = np.array(
                    [
                        (self._nodes[i].miny + self._nodes[i].maxy) / 2
                        for i in slab_nodes
                    ]
                )
                slab_nodes = [
                    slab_nodes[int(i)]
                    for i in np.argsort(centers_y, kind="stable")
                ]
                for t in range(0, len(slab_nodes), f):
                    children = slab_nodes[t:t + f]
                    node = _RNode(is_leaf=False, entries=list(children))
                    for c in children:
                        cn = self._nodes[c]
                        node.extend(cn.minx, cn.miny, cn.maxx, cn.maxy)
                    self._nodes.append(node)
                    parent_index = len(self._nodes) - 1
                    for c in children:
                        self._nodes[c].parent = parent_index
                    next_level.append(parent_index)
            level = next_level
        self._root = level[0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query_region(self, box: BoundingBox) -> np.ndarray:
        if self._root == -1:
            return np.empty(0, dtype=np.int64)
        out: list[int] = []
        chunks: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = self._nodes[stack.pop()]
            if node.minx > node.maxx or not box.intersects(node.box):
                continue
            if node.is_leaf:
                ids = np.asarray(node.entries, dtype=np.int64)
                if box.contains_box(node.box):
                    chunks.append(ids)
                else:
                    mask = box.contains_many(self.xs[ids], self.ys[ids])
                    if mask.any():
                        chunks.append(ids[mask])
            elif box.contains_box(node.box):
                # Whole subtree qualifies: collect all leaf ids below.
                sub = [node]
                while sub:
                    sn = sub.pop()
                    if sn.is_leaf:
                        out.extend(sn.entries)
                    else:
                        sub.extend(self._nodes[c] for c in sn.entries)
            else:
                stack.extend(node.entries)
        if out:
            chunks.append(np.asarray(out, dtype=np.int64))
        if not chunks:
            return np.empty(0, dtype=np.int64)
        result = np.concatenate(chunks)
        result.sort()
        return result

    def nearest(self, x: float, y: float, k: int = 1) -> np.ndarray:
        """Best-first k-nearest-neighbour search over the tree (exact).

        Expands nodes in order of their MBR's distance to the query
        point, stopping once the k-th best candidate is closer than the
        nearest unexpanded node — the classic branch-and-bound kNN.
        """
        if k <= 0 or self._root == -1:
            return np.empty(0, dtype=np.int64)
        import heapq

        k = min(k, len(self))
        pq: list[tuple[float, int]] = [(0.0, self._root)]
        best: list[tuple[float, int]] = []  # (-dist, -id) max-heap

        def consider(ids: np.ndarray) -> None:
            dists = np.hypot(self.xs[ids] - x, self.ys[ids] - y)
            for d, i in zip(dists, ids):
                item = (-float(d), -int(i))
                if len(best) < k:
                    heapq.heappush(best, item)
                elif item > best[0]:
                    heapq.heapreplace(best, item)

        while pq:
            bound, ni = heapq.heappop(pq)
            if len(best) == k and bound > -best[0][0]:
                break
            node = self._nodes[ni]
            if node.is_leaf:
                consider(np.asarray(node.entries, dtype=np.int64))
                continue
            for child in node.entries:
                cn = self._nodes[child]
                heapq.heappush(
                    pq, (cn.box.min_distance_to_point(x, y), child)
                )

        out = sorted(((-d, -i) for d, i in best))
        return np.array([i for _, i in out], dtype=np.int64)

    # ------------------------------------------------------------------
    # Incremental insert
    # ------------------------------------------------------------------

    def insert(self, x: float, y: float) -> int:
        """Insert a point, returning its new id.

        The coordinate table grows by one row; existing ids are stable.
        """
        new_id = len(self.xs)
        self.xs = np.append(self.xs, float(x))
        self.ys = np.append(self.ys, float(y))

        if self._root == -1:
            node = _RNode(is_leaf=True, entries=[new_id])
            node.extend(x, y, x, y)
            self._nodes.append(node)
            self._root = len(self._nodes) - 1
            return new_id

        leaf_index = self._choose_leaf(x, y)
        leaf = self._nodes[leaf_index]
        leaf.entries.append(new_id)
        leaf.extend(x, y, x, y)
        if len(leaf.entries) > self.fanout:
            self._split(leaf_index)
        else:
            self._adjust_upward(leaf.parent)
        return new_id

    def _choose_leaf(self, x: float, y: float) -> int:
        ni = self._root
        while not self._nodes[ni].is_leaf:
            node = self._nodes[ni]
            best = None
            best_key = (np.inf, np.inf)
            for c in node.entries:
                cn = self._nodes[c]
                key = (cn.enlargement(x, y), cn.area())
                if key < best_key:
                    best_key = key
                    best = c
            ni = best
        return ni

    def _entry_box(self, node: _RNode, e: int) -> tuple[float, float, float, float]:
        if node.is_leaf:
            return (
                float(self.xs[e]), float(self.ys[e]),
                float(self.xs[e]), float(self.ys[e]),
            )
        cn = self._nodes[e]
        return (cn.minx, cn.miny, cn.maxx, cn.maxy)

    def _split(self, ni: int) -> None:
        """Quadratic split of an overflowing node, propagating upward."""
        node = self._nodes[ni]
        entries = node.entries
        boxes = [self._entry_box(node, e) for e in entries]

        # Pick the pair of seeds wasting the most area together.
        worst = -np.inf
        seed_a = seed_b = 0
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                bi, bj = boxes[i], boxes[j]
                minx = min(bi[0], bj[0])
                miny = min(bi[1], bj[1])
                maxx = max(bi[2], bj[2])
                maxy = max(bi[3], bj[3])
                waste = (
                    (maxx - minx) * (maxy - miny)
                    - (bi[2] - bi[0]) * (bi[3] - bi[1])
                    - (bj[2] - bj[0]) * (bj[3] - bj[1])
                )
                if waste > worst:
                    worst = waste
                    seed_a, seed_b = i, j

        group_a = _RNode(is_leaf=node.is_leaf)
        group_b = _RNode(is_leaf=node.is_leaf)
        for group, seed in ((group_a, seed_a), (group_b, seed_b)):
            group.entries.append(entries[seed])
            group.extend(*boxes[seed])

        remaining = [
            i for i in range(len(entries)) if i not in (seed_a, seed_b)
        ]
        for i in remaining:
            # Respect the minimum-fill invariant.
            left = len(remaining) - remaining.index(i)
            if len(group_a.entries) + left <= self._min_fill:
                target = group_a
            elif len(group_b.entries) + left <= self._min_fill:
                target = group_b
            else:
                bx = boxes[i]
                grow_a = _box_enlargement(group_a, bx)
                grow_b = _box_enlargement(group_b, bx)
                if grow_a < grow_b:
                    target = group_a
                elif grow_b < grow_a:
                    target = group_b
                else:
                    target = group_a if group_a.area() <= group_b.area() else group_b
            target.entries.append(entries[i])
            target.extend(*boxes[i])

        # Reuse the original slot for group_a; append group_b.
        parent = node.parent
        self._nodes[ni] = group_a
        group_a.parent = parent
        self._nodes.append(group_b)
        bi = len(self._nodes) - 1
        group_b.parent = parent
        if not group_a.is_leaf:
            for c in group_a.entries:
                self._nodes[c].parent = ni
            for c in group_b.entries:
                self._nodes[c].parent = bi

        if parent == -1:
            new_root = _RNode(is_leaf=False, entries=[ni, bi])
            new_root.extend(group_a.minx, group_a.miny, group_a.maxx, group_a.maxy)
            new_root.extend(group_b.minx, group_b.miny, group_b.maxx, group_b.maxy)
            self._nodes.append(new_root)
            root_index = len(self._nodes) - 1
            group_a.parent = root_index
            group_b.parent = root_index
            self._root = root_index
            return

        # The parent gains a child; may itself overflow.
        pnode = self._nodes[parent]
        pnode.entries.append(bi)
        pnode.extend(group_b.minx, group_b.miny, group_b.maxx, group_b.maxy)
        pnode.extend(group_a.minx, group_a.miny, group_a.maxx, group_a.maxy)
        if len(pnode.entries) > self.fanout:
            self._split(parent)
        else:
            self._adjust_upward(pnode.parent)

    def _adjust_upward(self, ni: int) -> None:
        """Re-extend ancestor MBRs after a child grew."""
        while ni != -1:
            node = self._nodes[ni]
            for c in node.entries:
                cn = self._nodes[c]
                node.extend(cn.minx, cn.miny, cn.maxx, cn.maxy)
            ni = node.parent

    # ------------------------------------------------------------------
    # Introspection (used by tests)
    # ------------------------------------------------------------------

    def height(self) -> int:
        """Tree height (0 for an empty tree, 1 for a lone leaf root)."""
        if self._root == -1:
            return 0
        h = 1
        ni = self._root
        while not self._nodes[ni].is_leaf:
            ni = self._nodes[ni].entries[0]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Validate structural invariants; raises ``AssertionError``.

        Every point id appears in exactly one leaf, every node's MBR
        contains its entries, and no internal node exceeds the fanout.
        """
        if self._root == -1:
            assert len(self.xs) == 0
            return
        seen: list[int] = []
        stack = [self._root]
        while stack:
            ni = stack.pop()
            node = self._nodes[ni]
            assert len(node.entries) <= self.fanout + 1
            if node.is_leaf:
                for e in node.entries:
                    assert node.minx <= self.xs[e] <= node.maxx
                    assert node.miny <= self.ys[e] <= node.maxy
                seen.extend(node.entries)
            else:
                for c in node.entries:
                    cn = self._nodes[c]
                    assert node.minx <= cn.minx and node.maxx >= cn.maxx
                    assert node.miny <= cn.miny and node.maxy >= cn.maxy
                    stack.append(c)
        assert sorted(seen) == list(range(len(self.xs)))


def _box_enlargement(
    group: _RNode, box: tuple[float, float, float, float]
) -> float:
    minx = min(group.minx, box[0])
    miny = min(group.miny, box[1])
    maxx = max(group.maxx, box[2])
    maxy = max(group.maxy, box[3])
    return (maxx - minx) * (maxy - miny) - group.area()
