"""Median-split k-d tree.

Built iteratively (explicit stack, no recursion limits) over an index
permutation, with leaves of a configurable size.  Region queries descend
only into subtrees whose bounding interval overlaps the query box;
subtrees entirely inside the box are reported wholesale from the
contiguous id slice, which keeps large-region queries fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.index.base import SpatialIndex

_DEFAULT_LEAF_SIZE = 32


@dataclass(slots=True)
class _Node:
    """One k-d tree node over ``ids[start:end]`` (a contiguous slice)."""

    start: int
    end: int
    # Bounding box of the points in the slice.
    minx: float
    miny: float
    maxx: float
    maxy: float
    # Children; both -1 for leaves.
    left: int = -1
    right: int = -1


class KDTreeIndex(SpatialIndex):
    """k-d tree with median splits on the wider axis."""

    def __init__(
        self, xs: np.ndarray, ys: np.ndarray, leaf_size: int = _DEFAULT_LEAF_SIZE
    ):
        super().__init__(xs, ys)
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size
        self._ids = np.arange(len(self.xs), dtype=np.int64)
        self._nodes: list[_Node] = []
        if len(self._ids) > 0:
            self._build()

    def _make_node(self, start: int, end: int) -> int:
        sl = self._ids[start:end]
        node = _Node(
            start=start,
            end=end,
            minx=float(self.xs[sl].min()),
            miny=float(self.ys[sl].min()),
            maxx=float(self.xs[sl].max()),
            maxy=float(self.ys[sl].max()),
        )
        self._nodes.append(node)
        return len(self._nodes) - 1

    def _build(self) -> None:
        root = self._make_node(0, len(self._ids))
        stack = [root]
        while stack:
            ni = stack.pop()
            node = self._nodes[ni]
            count = node.end - node.start
            if count <= self.leaf_size:
                continue
            # Split on the wider axis at the median.
            wider_x = (node.maxx - node.minx) >= (node.maxy - node.miny)
            sl = self._ids[node.start:node.end]
            keys = self.xs[sl] if wider_x else self.ys[sl]
            mid = count // 2
            part = np.argpartition(keys, mid)
            self._ids[node.start:node.end] = sl[part]
            # Degenerate case: all points identical on both axes would
            # recurse forever; the box check handles it.
            if node.maxx == node.minx and node.maxy == node.miny:
                continue
            node.left = self._make_node(node.start, node.start + mid)
            node.right = self._make_node(node.start + mid, node.end)
            stack.append(node.left)
            stack.append(node.right)

    def query_region(self, box: BoundingBox) -> np.ndarray:
        if not self._nodes:
            return np.empty(0, dtype=np.int64)
        chunks: list[np.ndarray] = []
        stack = [0]
        while stack:
            node = self._nodes[stack.pop()]
            nbox = BoundingBox(node.minx, node.miny, node.maxx, node.maxy)
            if not box.intersects(nbox):
                continue
            if box.contains_box(nbox):
                chunks.append(self._ids[node.start:node.end])
                continue
            if node.left == -1:
                ids = self._ids[node.start:node.end]
                mask = box.contains_many(self.xs[ids], self.ys[ids])
                if mask.any():
                    chunks.append(ids[mask])
                continue
            stack.append(node.left)
            stack.append(node.right)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        result = np.concatenate(chunks)
        result.sort()
        return result

    def nearest(self, x: float, y: float, k: int = 1) -> np.ndarray:
        """Best-first k-NN over the tree (exact)."""
        if k <= 0 or not self._nodes:
            return np.empty(0, dtype=np.int64)
        import heapq

        k = min(k, len(self))
        # (node min-distance, node index) priority queue, plus a bounded
        # max-heap of the best candidates found so far.
        pq: list[tuple[float, int]] = [(0.0, 0)]
        best: list[tuple[float, int]] = []  # (-dist, -id) max-heap

        def consider(ids: np.ndarray) -> None:
            dists = np.hypot(self.xs[ids] - x, self.ys[ids] - y)
            for d, i in zip(dists, ids):
                item = (-float(d), -int(i))
                if len(best) < k:
                    heapq.heappush(best, item)
                elif item > best[0]:
                    heapq.heapreplace(best, item)

        while pq:
            bound, ni = heapq.heappop(pq)
            if len(best) == k and bound > -best[0][0]:
                break
            node = self._nodes[ni]
            if node.left == -1:
                consider(self._ids[node.start:node.end])
                continue
            for child in (node.left, node.right):
                cn = self._nodes[child]
                cbox = BoundingBox(cn.minx, cn.miny, cn.maxx, cn.maxy)
                heapq.heappush(pq, (cbox.min_distance_to_point(x, y), child))

        out = sorted(((-d, -i) for d, i in best))
        return np.array([i for _, i in out], dtype=np.int64)
