"""Uniform grid index.

Points are binned into a ``cells x cells`` grid over their bounding
frame.  A region query visits only the grid cells the query box
overlaps: cells entirely inside the box contribute their points
wholesale; boundary cells are refined point-by-point.

For the region-query workload of the paper (query box covering ~1% of
the frame over millions of points) this is extremely effective, and it
gives the index-ablation benchmark a meaningfully different design point
from the R-tree.
"""

from __future__ import annotations

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.index.base import SpatialIndex


class GridIndex(SpatialIndex):
    """Uniform grid over the point table.

    Parameters
    ----------
    xs, ys:
        Point coordinates.
    cells:
        Grid resolution per axis.  Defaults to ``ceil(sqrt(n / 16))``,
        i.e. ~16 points per cell on uniform data, clamped to
        ``[1, 4096]``.
    """

    def __init__(self, xs: np.ndarray, ys: np.ndarray, cells: int | None = None):
        super().__init__(xs, ys)
        n = len(self.xs)
        if cells is None:
            cells = int(np.clip(np.ceil(np.sqrt(max(n, 1) / 16.0)), 1, 4096))
        if cells < 1:
            raise ValueError(f"cells must be >= 1, got {cells}")
        self.cells = cells

        if n == 0:
            self._frame = BoundingBox.unit()
        else:
            self._frame = BoundingBox.from_points(self.xs, self.ys)
        # Zero-extent frames (all points identical on an axis) map every
        # point to bin 0 on that axis.
        self._x0 = self._frame.minx
        self._y0 = self._frame.miny
        self._inv_cw = cells / self._frame.width if self._frame.width > 0 else 0.0
        self._inv_ch = cells / self._frame.height if self._frame.height > 0 else 0.0

        # CSR-style layout: point ids sorted by cell, plus per-cell offsets.
        cell_ids = self._cell_of(self.xs, self.ys)
        order = np.argsort(cell_ids, kind="stable")
        self._sorted_ids = order.astype(np.int64)
        counts = np.bincount(cell_ids, minlength=cells * cells)
        self._offsets = np.concatenate(([0], np.cumsum(counts)))

    def _col_of(self, xs: np.ndarray) -> np.ndarray:
        cols = ((xs - self._x0) * self._inv_cw).astype(np.int64)
        return np.clip(cols, 0, self.cells - 1)

    def _row_of(self, ys: np.ndarray) -> np.ndarray:
        rows = ((ys - self._y0) * self._inv_ch).astype(np.int64)
        return np.clip(rows, 0, self.cells - 1)

    def _cell_of(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        return self._row_of(ys) * self.cells + self._col_of(xs)

    def _cell_points(self, cell: int) -> np.ndarray:
        return self._sorted_ids[self._offsets[cell]:self._offsets[cell + 1]]

    def query_region(self, box: BoundingBox) -> np.ndarray:
        if len(self.xs) == 0 or not box.intersects(self._frame):
            return np.empty(0, dtype=np.int64)

        c0 = int(self._col_of(np.array([box.minx]))[0])
        c1 = int(self._col_of(np.array([box.maxx]))[0])
        r0 = int(self._row_of(np.array([box.miny]))[0])
        r1 = int(self._row_of(np.array([box.maxy]))[0])

        chunks: list[np.ndarray] = []
        for row in range(r0, r1 + 1):
            base = row * self.cells
            # Rows/cols strictly interior to the query need no
            # refinement; boundary cells do.  Interior is decided with
            # the same binning arithmetic that assigned the points:
            # binning is monotone in the coordinate, so a point whose
            # bin lies strictly between the bins of the box edges must
            # itself lie strictly between the edges.  (Recomputing cell
            # geometry as 1/inv would round-trip through floats and can
            # classify a boundary-aligned cell interior while a point
            # of it sits just outside the box.)
            inner_row = r0 < row < r1
            for col in range(c0, c1 + 1):
                cell = base + col
                ids = self._cell_points(cell)
                if len(ids) == 0:
                    continue
                if inner_row and c0 < col < c1:
                    chunks.append(ids)
                else:
                    mask = box.contains_many(self.xs[ids], self.ys[ids])
                    if mask.any():
                        chunks.append(ids[mask])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        result = np.concatenate(chunks)
        result.sort()
        return result
