"""Spatial index protocol and the brute-force reference implementation."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.geo.distance import euclidean_many


class SpatialIndex(ABC):
    """Read-only index over a fixed table of 2-D points.

    Points are identified by their row number in the coordinate arrays
    handed to the constructor.  Query results are ``int64`` id arrays in
    ascending order, which makes results directly comparable across
    implementations (tests exploit this).
    """

    def __init__(self, xs: np.ndarray, ys: np.ndarray):
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ValueError("xs and ys must be 1-D arrays of equal length")
        self.xs = xs
        self.ys = ys

    def __len__(self) -> int:
        return len(self.xs)

    @abstractmethod
    def query_region(self, box: BoundingBox) -> np.ndarray:
        """Ids of all points inside ``box`` (boundary inclusive), sorted."""

    def query_radius(self, x: float, y: float, radius: float) -> np.ndarray:
        """Ids of all points within ``radius`` of ``(x, y)``, sorted.

        Default implementation: region query on the bounding square of
        the circle, refined by exact distance.  Subclasses may override
        with something smarter, but the square pre-filter is already
        near-optimal for the small radii (the visibility threshold)
        this library queries with.
        """
        square = BoundingBox(x - radius, y - radius, x + radius, y + radius)
        candidates = self.query_region(square)
        if len(candidates) == 0:
            return candidates
        dists = euclidean_many(x, y, self.xs[candidates], self.ys[candidates])
        return candidates[dists <= radius]

    def count_region(self, box: BoundingBox) -> int:
        """Number of points inside ``box``."""
        return int(len(self.query_region(box)))

    def nearest(self, x: float, y: float, k: int = 1) -> np.ndarray:
        """Ids of the ``k`` nearest points to ``(x, y)``.

        Default implementation grows a search radius geometrically until
        it holds ``k`` points; exact and simple, if not optimal.
        Results are ordered by distance (ties broken by id).
        """
        if k <= 0:
            return np.empty(0, dtype=np.int64)
        k = min(k, len(self))
        if len(self) == 0:
            return np.empty(0, dtype=np.int64)
        # Starting radius: expected spacing for a uniform unit square.
        radius = max(1e-9, np.sqrt(k / max(len(self), 1)))
        while True:
            ids = self.query_radius(x, y, radius)
            if len(ids) >= k:
                dists = euclidean_many(x, y, self.xs[ids], self.ys[ids])
                order = np.lexsort((ids, dists))
                return ids[order[:k]]
            radius *= 2.0
            if radius > 8.0 and len(ids) < k:
                # Degenerate frame; fall back to a full scan.
                dists = euclidean_many(x, y, self.xs, self.ys)
                order = np.lexsort((np.arange(len(self)), dists))
                return order[:k].astype(np.int64)


class LinearIndex(SpatialIndex):
    """Brute-force scan over the point table.

    This is both the fallback for tiny datasets (where index build cost
    dominates) and the ground truth other indexes are tested against.
    """

    def query_region(self, box: BoundingBox) -> np.ndarray:
        mask = box.contains_many(self.xs, self.ys)
        return np.flatnonzero(mask).astype(np.int64)
