"""Admission control: bounded queue, concurrency limit, deadline budget.

The admission controller is the service's overload valve.  Every
request passes through :meth:`AdmissionController.admit` before any
session state is touched, and the decision has exactly three outcomes:

* **admitted** — a concurrency slot was free (or became free within
  the request's queueing allowance); the caller proceeds holding the
  slot and releases it on exit.
* **shed** — :class:`~repro.robustness.OverloadShed` with a
  machine-routable reason: the wait queue is at capacity
  (``queue_full``), the request queued past its allowance
  (``queue_timeout``), or its deadline budget was already spent
  (``deadline``).  Shedding is *fast by construction*: ``queue_full``
  and ``deadline`` rejections never await at all.
* **rejected by breaker** — :class:`~repro.robustness.CircuitOpen`
  while the service breaker is open after consecutive handler
  failures; like a shed, this never touches the queue.

Because a shed/rejected request is refused *before* the session
dispatch, it can never mutate session state — the overload-invariant
property tests in ``tests/test_service_overload.py`` pin this down.

The controller also owns the ``service.admit`` fault-injection point
(the first thing :meth:`admit` traverses) and the breaker bookkeeping:
the admission ticket records a success or failure on exit depending on
whether the handler raised a *system* failure (see
:func:`is_system_failure`), so user errors like an invalid pan can
never trip the breaker.

Single-event-loop discipline: the counters (``queue_depth`` /
``active``) are only touched from coroutines on the service's event
loop, so they need no lock; thread-safe state lives in the breaker and
the metrics registry.
"""

from __future__ import annotations

import asyncio
import time

from repro.metrics import MetricsRegistry
from repro.robustness.breaker import CircuitBreaker
from repro.robustness.budget import Deadline
from repro.robustness.errors import (
    CircuitOpen,
    DeadlineExceeded,
    FaultInjected,
    OverloadShed,
    RobustnessError,
)
from repro.robustness.faults import SERVICE_ADMIT, FaultInjector


def is_system_failure(exc: BaseException) -> bool:
    """Whether ``exc`` should count against the service breaker.

    Injected faults, deadline blowouts, and unexpected exceptions are
    system failures; every other :class:`RobustnessError` (invalid
    navigation, unknown session, shed...) is a routing outcome the
    breaker must ignore — a storm of malformed requests is not a
    reason to stop serving well-formed ones.
    """
    if isinstance(exc, (FaultInjected, DeadlineExceeded)):
        return True
    if isinstance(exc, RobustnessError):
        return False
    return isinstance(exc, Exception)


class AdmissionController:
    """Bounded-queue concurrency limiter with deadline-aware shedding.

    Parameters
    ----------
    max_concurrency:
        Requests allowed in the handling section simultaneously.
    max_queue_depth:
        Requests allowed to *wait* for a slot; arrivals beyond this are
        shed immediately (``queue_full``).  ``0`` disables queueing
        entirely (admit-or-shed).
    queue_timeout_s:
        Longest any request may wait for a slot.  The effective wait
        allowance is ``min(queue_timeout_s, deadline.remaining())``.
    breaker:
        Optional :class:`CircuitBreaker` guarding the handler path.
        Open ⇒ fast :class:`CircuitOpen` rejection; outcomes are
        recorded by the admission ticket on exit.
    fault_injector:
        Optional injector traversing ``service.admit`` first thing.
    metrics:
        Optional registry: ``service.admitted`` counter,
        ``service.queue_seconds`` timer, ``service.queue_depth`` /
        ``service.active`` gauges.  (Shed counting happens at the
        service layer, which sees every shed source.)
    """

    def __init__(
        self,
        max_concurrency: int = 8,
        max_queue_depth: int = 64,
        queue_timeout_s: float = 0.5,
        breaker: CircuitBreaker | None = None,
        fault_injector: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if queue_timeout_s < 0:
            raise ValueError(
                f"queue_timeout_s must be >= 0, got {queue_timeout_s}"
            )
        self.max_concurrency = max_concurrency
        self.max_queue_depth = max_queue_depth
        self.queue_timeout_s = queue_timeout_s
        self.breaker = breaker
        self.fault_injector = fault_injector
        self.metrics = metrics
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self._waiting = 0
        self._active = 0

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a concurrency slot."""
        return self._waiting

    @property
    def active(self) -> int:
        """Requests currently holding a concurrency slot."""
        return self._active

    def admit(self, deadline: Deadline | None = None) -> "AdmissionTicket":
        """An async context manager deciding admission for one request.

        Usage::

            async with controller.admit(deadline) as ticket:
                ...               # holds a concurrency slot
            ticket.queue_wait_s   # how long admission queued

        Raises :class:`OverloadShed` / :class:`CircuitOpen` from
        ``__aenter__`` on rejection (without entering the body).
        """
        return AdmissionTicket(self, deadline)

    def _sync_gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("service.queue_depth", self._waiting)
            self.metrics.set_gauge("service.active", self._active)


class AdmissionTicket:
    """One request's admission decision and slot ownership."""

    __slots__ = ("_controller", "_deadline", "_held", "_breaker_ticket",
                 "queue_wait_s")

    def __init__(
        self, controller: AdmissionController, deadline: Deadline | None
    ) -> None:
        self._controller = controller
        self._deadline = deadline
        self._held = False
        self._breaker_ticket = False
        self.queue_wait_s = 0.0

    async def __aenter__(self) -> "AdmissionTicket":
        ctl = self._controller
        if ctl.fault_injector is not None:
            # acheck, not check: an armed admit latency must delay only
            # this request, not stall the loop for every session.
            await ctl.fault_injector.acheck(SERVICE_ADMIT)
        breaker = ctl.breaker
        if breaker is not None and not breaker.allows():
            # Fast read-only peek: an open breaker rejects before any
            # queueing.  The authoritative (probe-reserving) acquire
            # happens after the slot is won.
            raise CircuitOpen(f"{breaker.name} breaker is open")
        if self._deadline is not None and self._deadline.expired():
            self._shed("deadline")
        sem = ctl._semaphore
        if not sem.locked():
            # Free slot: acquire() returns without yielding to the
            # loop, so this cannot race another coroutine.
            await sem.acquire()
        else:
            if ctl._waiting >= ctl.max_queue_depth:
                self._shed("queue_full")
            allowance = ctl.queue_timeout_s
            if self._deadline is not None:
                allowance = min(allowance, self._deadline.remaining())
            if allowance <= 0.0:
                self._shed("queue_timeout")
            ctl._waiting += 1
            ctl._sync_gauges()
            started = time.perf_counter()
            try:
                # asyncio.TimeoutError: distinct from the builtin
                # until 3.11, an alias after.
                await asyncio.wait_for(sem.acquire(), allowance)
            except (TimeoutError, asyncio.TimeoutError):
                self._shed("queue_timeout")
            finally:
                self.queue_wait_s = time.perf_counter() - started
                ctl._waiting -= 1
                ctl._sync_gauges()
        self._held = True
        ctl._active += 1
        ctl._sync_gauges()
        if breaker is not None:
            if not breaker.try_acquire():
                # The breaker opened (or another caller holds the
                # half-open probe) while this request queued.
                self._release()
                raise CircuitOpen(f"{breaker.name} breaker is open")
            self._breaker_ticket = True
        if ctl.metrics is not None:
            ctl.metrics.incr("service.admitted")
            ctl.metrics.observe("service.queue_seconds", self.queue_wait_s)
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        self._release()
        if self._breaker_ticket:
            self._breaker_ticket = False
            breaker = self._controller.breaker
            assert breaker is not None
            if exc is not None and is_system_failure(exc):
                breaker.record_failure()
            else:
                breaker.record_success()
        return False

    def _shed(self, reason: str) -> None:
        raise OverloadShed(reason)

    def _release(self) -> None:
        if self._held:
            self._held = False
            ctl = self._controller
            ctl._active -= 1
            ctl._semaphore.release()
            ctl._sync_gauges()
