"""Retry policy with jittered backoff and a global retry budget.

Retries are the service's answer to *transient* faults (an injected
``service.handle`` error, a worker hiccup) — and its second-biggest
overload hazard after unbounded queueing: a fleet of clients all
retrying into a degraded backend multiplies load exactly when capacity
is lowest (a retry storm).  Two mechanisms bound that:

* :class:`RetryPolicy` — capped exponential backoff with full-range
  jitter, so synchronized clients decorrelate instead of thundering
  back in lockstep.
* :class:`RetryBudget` — a token bucket refilled by *successful first
  attempts* and spent by *retries*.  When more than roughly
  ``tokens_per_request`` of traffic is retrying, the bucket drains and
  further retries are refused (:class:`RetryBudgetExhausted`), letting
  the original error propagate instead of amplifying it.

:func:`run_with_retry` stitches the two together and is deadline-aware:
it never sleeps past the request's remaining budget, and it re-raises
the last error rather than waiting out a deadline that cannot be met.
"""

from __future__ import annotations

import asyncio
import threading
from collections.abc import Awaitable, Callable
from dataclasses import dataclass
from typing import Any, TypeVar

import numpy as np

from repro.metrics import MetricsRegistry
from repro.robustness.budget import Deadline
from repro.robustness.errors import FaultInjected, RetryBudgetExhausted

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter.

    The delay before retry *n* (1-based) is drawn uniformly from
    ``[base * multiplier**(n-1) * (1 - jitter), base * multiplier**(n-1)]``
    and capped at ``max_delay_s`` — AWS-style "equal-ish jitter" that
    keeps a floor under the delay (pure full jitter can draw ~0 and
    hammer the backend) while still decorrelating clients.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_for(self, attempt: int, rng: np.random.Generator) -> float:
        """Backoff before retry ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        ceiling = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        floor = ceiling * (1.0 - self.jitter)
        return float(rng.uniform(floor, ceiling))


class RetryBudget:
    """Token bucket limiting the *fraction* of traffic that may retry.

    Every first attempt deposits ``tokens_per_request`` tokens (capped
    at ``max_tokens``); every retry withdraws one.  With the default
    0.1/request deposit, sustained retry volume is capped near 10% of
    request volume — transient blips retry freely, a down backend does
    not get hammered.  Thread-safe: the HTTP layer and direct callers
    may share one budget across event loops and threads.
    """

    def __init__(
        self, tokens_per_request: float = 0.1, max_tokens: float = 10.0
    ) -> None:
        if tokens_per_request < 0:
            raise ValueError(
                f"tokens_per_request must be >= 0, got {tokens_per_request}"
            )
        if max_tokens <= 0:
            raise ValueError(f"max_tokens must be > 0, got {max_tokens}")
        self.tokens_per_request = tokens_per_request
        self.max_tokens = max_tokens
        self._lock = threading.Lock()
        self._tokens = max_tokens

    @property
    def tokens(self) -> float:
        """Tokens currently available for retries."""
        with self._lock:
            return self._tokens

    def on_request(self) -> None:
        """Deposit for one first attempt."""
        with self._lock:
            self._tokens = min(
                self.max_tokens, self._tokens + self.tokens_per_request
            )

    def try_spend(self) -> bool:
        """Withdraw one token for a retry; ``False`` when drained."""
        with self._lock:
            if self._tokens < 1.0:
                return False
            self._tokens -= 1.0
            return True


async def run_with_retry(
    fn: Callable[[], Awaitable[T]],
    policy: RetryPolicy,
    rng: np.random.Generator,
    retryable: tuple[type[BaseException], ...] = (FaultInjected,),
    deadline: Deadline | None = None,
    budget: RetryBudget | None = None,
    sleep: Callable[[float], Awaitable[Any]] = asyncio.sleep,
    metrics: MetricsRegistry | None = None,
) -> tuple[T, int]:
    """Run ``fn`` with jittered-backoff retries; ``(result, attempts)``.

    Only ``retryable`` exceptions are retried; anything else — and the
    final retryable failure — propagates.  A retry is attempted only
    when the ``budget`` (if any) grants a token *and* the ``deadline``
    (if any) can still cover the backoff delay; otherwise the causing
    error is re-raised immediately.  ``sleep`` is injectable so tests
    exercise backoff schedules without wall-clock waits.
    """
    if budget is not None:
        budget.on_request()
    attempt = 0
    while True:
        attempt += 1
        try:
            return await fn(), attempt
        except retryable as exc:
            if attempt >= policy.max_attempts:
                raise
            if budget is not None and not budget.try_spend():
                if metrics is not None:
                    metrics.incr("service.retry_budget_exhausted")
                raise RetryBudgetExhausted(
                    f"retry budget drained after {attempt} attempt(s)"
                ) from exc
            delay = policy.delay_for(attempt, rng)
            if deadline is not None and deadline.remaining() <= delay:
                # The backoff would outlive the request; surface the
                # real error now rather than a later deadline blowout.
                raise
            if metrics is not None:
                metrics.incr("service.retries")
            if delay > 0.0:
                await sleep(delay)
