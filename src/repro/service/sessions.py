"""Per-user session state with TTL eviction and shared datasets.

A :class:`SessionManager` owns every live :class:`MapSession` behind
the service.  Its design constraints:

* **shared read-only state** — all sessions over a named dataset hold
  references to *the same* :class:`~repro.core.dataset.GeoDataset`
  (coordinates, weights, similarity model, spatial index), so memory
  scales with datasets, not users.  Sessions are created without a
  similarity cache by default precisely because the cache wrapper
  would re-bind mutable per-session state around the shared model.
* **bounded population** — at most ``max_sessions`` live sessions;
  beyond that, creation raises
  :class:`~repro.robustness.SessionLimitExceeded` (a shed: the caller
  can retry after TTL eviction reclaims capacity).
* **TTL eviction** — sessions idle past ``ttl_s`` are closed and
  dropped by :meth:`evict_expired`, which the service calls
  opportunistically and from a background sweeper.  An entry whose
  per-session :class:`asyncio.Lock` is held (a request is mid-flight)
  is never evicted.
* **close from anywhere** — eviction, shutdown, and request error
  paths may all reach a session's ``close()`` concurrently;
  :meth:`MapSession.close` is idempotent and thread-safe for exactly
  this reason, and the manager's own dict is guarded by a
  ``threading.Lock`` so ``close_all()`` may be called from any thread.

The per-entry ``asyncio.Lock`` serializes operations *within* one
session (``MapSession`` is a stateful machine; interleaving two pans
would corrupt the ISOS mandatory-set derivation) while different
sessions proceed concurrently.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from collections.abc import Callable, Mapping
from typing import Any

from repro.core.dataset import GeoDataset
from repro.core.session import MapSession
from repro.metrics import MetricsRegistry
from repro.parallel import WorkerPool, resolve_workers
from repro.robustness.errors import (
    ServiceClosed,
    SessionLimitExceeded,
    UnknownSession,
)

#: MapSession constructor keys a request may override at ``start``.
ALLOWED_SESSION_OVERRIDES = frozenset(
    {
        "k", "theta_fraction", "prefetch", "deadline_s",
        "time_window", "time_hysteresis",
    }
)


class SessionEntry:
    """One live session plus the service's bookkeeping for it.

    Plain attribute container (no mutating methods): every mutation
    happens under the manager's coordination — ``lock`` for session
    operations, the manager's dict lock for membership.
    """

    __slots__ = (
        "session_id", "session", "dataset_name", "created_at",
        "last_used", "lock", "closed", "steps", "stream",
    )

    def __init__(
        self,
        session_id: str,
        session: MapSession,
        dataset_name: str,
        created_at: float,
    ) -> None:
        self.session_id = session_id
        self.session = session
        self.dataset_name = dataset_name
        self.created_at = created_at
        self.last_used = created_at
        self.lock = asyncio.Lock()
        self.closed = False
        self.steps = 0
        # Long-lived per-session ingest stream (see
        # SelectionService._stream_for); created lazily on the first
        # stream_* operation, dies with the session.
        self.stream = None


class SessionManager:
    """Registry of live sessions over a set of shared datasets.

    Parameters
    ----------
    datasets:
        Named :class:`GeoDataset`\\ s the service exposes.  Held
        immutably and shared by reference across every session.
    default_dataset:
        Name used when a ``start`` request names none (defaults to the
        first key).
    max_sessions:
        Hard cap on live sessions.
    ttl_s:
        Idle lifetime; ``None`` disables TTL eviction.
    clock:
        Monotonic time source (injectable so tests drive eviction
        without sleeping).
    session_options:
        Baseline :class:`MapSession` keyword arguments applied to
        every session (``k``, ``prefetch``, ``deadline_s``, ...).
        ``workers`` and ``parallel_backend`` are consumed by the
        manager itself: they size ONE shared warm
        :class:`~repro.parallel.WorkerPool` per dataset (built lazily
        on first use, closed by :meth:`close_all`) instead of a
        per-session pool.
    metrics:
        Optional registry: ``service.sessions.*`` counters and the
        ``service.sessions`` gauge.
    """

    def __init__(
        self,
        datasets: Mapping[str, GeoDataset],
        default_dataset: str | None = None,
        max_sessions: int = 256,
        ttl_s: float | None = 1800.0,
        clock: Callable[[], float] = time.monotonic,
        session_options: Mapping[str, Any] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not datasets:
            raise ValueError("at least one dataset is required")
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self._datasets = dict(datasets)
        self.default_dataset = (
            default_dataset
            if default_dataset is not None
            else next(iter(self._datasets))
        )
        if self.default_dataset not in self._datasets:
            raise ValueError(
                f"default dataset {self.default_dataset!r} not in datasets"
            )
        self.max_sessions = max_sessions
        self.ttl_s = ttl_s
        self.metrics = metrics
        self._clock = clock
        self._session_options = dict(session_options or {})
        # ``workers``/``parallel_backend`` are manager-level options:
        # instead of one pool per session (executor spin-up and, for
        # processes, a model export per user), the manager keeps ONE
        # warm pool per dataset and hands it to every session over that
        # dataset.  Sessions never close a shared pool; close_all does.
        self._pool_workers = self._session_options.pop("workers", None)
        self._pool_backend = self._session_options.pop(
            "parallel_backend", "auto"
        )
        self._lock = threading.Lock()
        self._sessions: dict[str, SessionEntry] = {}
        self._pools: dict[str, WorkerPool] = {}
        self._ids = itertools.count(1)
        self._shut_down = False

    # ------------------------------------------------------------------
    # Datasets
    # ------------------------------------------------------------------

    @property
    def dataset_names(self) -> list[str]:
        """Names of the served datasets (sorted)."""
        return sorted(self._datasets)

    def dataset(self, name: str) -> GeoDataset:
        """The shared dataset registered under ``name``."""
        try:
            return self._datasets[name]
        except KeyError:
            raise ValueError(
                f"unknown dataset {name!r}; available: "
                + ", ".join(self.dataset_names)
            ) from None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        dataset: str | None = None,
        overrides: Mapping[str, Any] | None = None,
    ) -> SessionEntry:
        """Create a session over ``dataset`` (default: the default one).

        ``overrides`` may carry the whitelisted per-session
        :class:`MapSession` options (:data:`ALLOWED_SESSION_OVERRIDES`);
        anything else raises ``ValueError`` — the shared service
        configuration is not per-user surface.
        """
        self.evict_expired()
        name = dataset if dataset is not None else self.default_dataset
        data = self.dataset(name)
        options = dict(self._session_options)
        if overrides:
            unknown = set(overrides) - ALLOWED_SESSION_OVERRIDES
            if unknown:
                raise ValueError(
                    "unsupported session options: "
                    + ", ".join(sorted(unknown))
                )
            options.update(overrides)
        pool = self._shared_pool(name, data)
        with self._lock:
            if self._shut_down:
                raise ServiceClosed("session manager is shut down")
            if len(self._sessions) >= self.max_sessions:
                raise SessionLimitExceeded(self.max_sessions)
            session_id = f"s-{next(self._ids):08d}"
            entry = SessionEntry(
                session_id,
                MapSession(data, pool=pool, **options),
                name,
                self._clock(),
            )
            self._sessions[session_id] = entry
        if self.metrics is not None:
            self.metrics.incr("service.sessions.created")
        self._sync_gauge()
        return entry

    def get(self, session_id: str) -> SessionEntry:
        """The live entry for ``session_id``; touches its idle clock.

        Raises :class:`UnknownSession` for ids that were never created
        or have been evicted/closed — indistinguishable on purpose (an
        evicted id must not leak whether it ever existed).
        """
        with self._lock:
            entry = self._sessions.get(session_id)
        if entry is None or entry.closed:
            raise UnknownSession(session_id)
        entry.last_used = self._clock()
        return entry

    def touch(self, entry: SessionEntry) -> None:
        """Refresh ``entry``'s idle clock (after a completed step)."""
        entry.last_used = self._clock()

    def remove(self, session_id: str) -> None:
        """Close and drop ``session_id`` (explicit client close)."""
        with self._lock:
            entry = self._sessions.pop(session_id, None)
        if entry is None:
            raise UnknownSession(session_id)
        entry.closed = True
        entry.session.close()
        if self.metrics is not None:
            self.metrics.incr("service.sessions.closed")
        self._sync_gauge()

    def evict_expired(self, now: float | None = None) -> list[str]:
        """Close and drop every session idle past ``ttl_s``.

        Entries whose per-session lock is held (request in flight) are
        skipped this sweep — their idle clock restarts when the request
        completes.  Returns the evicted ids.
        """
        if self.ttl_s is None:
            return []
        cutoff = (self._clock() if now is None else now) - self.ttl_s
        expired: list[SessionEntry] = []
        with self._lock:
            for session_id, entry in list(self._sessions.items()):
                if entry.lock.locked():
                    continue
                if entry.last_used <= cutoff:
                    del self._sessions[session_id]
                    expired.append(entry)
        for entry in expired:
            entry.closed = True
            if self._close_session(entry) and self.metrics is not None:
                self.metrics.incr("service.sessions.evicted")
        if expired:
            self._sync_gauge()
        return [entry.session_id for entry in expired]

    def _close_session(self, entry: SessionEntry) -> bool:
        """Close one session, containing (and counting) close errors.

        A single session whose teardown raises must not leak every
        session behind it in a sweep, nor the shared pools behind a
        ``close_all``; the error is recorded instead of propagated.
        Returns whether the close succeeded — callers count successes
        under their own literal metric name (eviction vs shutdown),
        which also keeps the name registry's declared set literal.
        """
        try:
            entry.session.close()
        except Exception:
            if self.metrics is not None:
                self.metrics.incr("service.sessions.close_errors")
            return False
        return True

    def close_all(self) -> None:
        """Shut the manager down, closing every session (idempotent).

        Safe from any thread; concurrent eviction or per-request error
        paths racing into ``session.close()`` are harmless because the
        session close itself is idempotent and thread-safe.
        """
        with self._lock:
            self._shut_down = True
            entries = list(self._sessions.values())
            self._sessions.clear()
            pools = list(self._pools.values())
            self._pools.clear()
        try:
            for entry in entries:
                entry.closed = True
                if self._close_session(entry) and self.metrics is not None:
                    self.metrics.incr("service.sessions.closed")
        finally:
            # Shared pools go down after their sessions: a session
            # close never touches a shared pool (it only detaches), so
            # this is the single place their executors are released —
            # and it must run even if a session close blew through
            # _close_session's containment (KeyboardInterrupt et al.).
            for pool in pools:
                try:
                    pool.close()
                except Exception:
                    if self.metrics is not None:
                        self.metrics.incr("service.pools.close_errors")
            self._sync_gauge()

    def _shared_pool(self, name: str, data: GeoDataset) -> WorkerPool | None:
        """The warm per-dataset pool (lazily built), or ``None``.

        One pool per dataset regardless of session count: the
        executors and the process backend's shared-memory model export
        are paid once, and every session's sweeps reuse the live
        workers (``parallel.pool_reuse``).
        """
        if resolve_workers(self._pool_workers) <= 0:
            return None
        with self._lock:
            if self._shut_down:
                raise ServiceClosed("session manager is shut down")
            pool = self._pools.get(name)
            if pool is None:
                pool = WorkerPool(
                    self._pool_workers,
                    self._pool_backend,
                    similarity=data.similarity,
                    metrics=self.metrics,
                )
                self._pools[name] = pool
        # Warming happens outside the dict lock (worker spawn can take
        # a while); warm() is idempotent, so a racing create at worst
        # warms twice.
        pool.warm()
        return pool

    @property
    def count(self) -> int:
        """Number of live sessions."""
        with self._lock:
            return len(self._sessions)

    def _sync_gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("service.sessions", self.count)
