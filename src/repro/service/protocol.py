"""Wire protocol: JSON shapes, routing, and error → status mapping.

Kept separate from the socket code so the mapping is unit-testable and
so the status contract is in one place:

========================  ======  =========================================
exception                 status  meaning to the client
========================  ======  =========================================
``OverloadShed``          429     back off (``shed_reason`` says why);
                                  includes ``SessionLimitExceeded``
``UnknownSession``        404     session evicted/closed/never existed —
                                  restart with ``start``
``CircuitOpen``           503     service breaker open; retry after cooldown
``ServiceClosed``         503     shutting down
``RetryBudgetExhausted``  503     transient faults exceeded the retry
                                  budget — systemic, not per-request
``FaultInjected``         503     transient fault survived its retries
``DeadlineExceeded``      504     request outlived its deadline budget
``InvalidNavigation``     400     geometric precondition violated
``SessionNotStarted``     400     navigation before ``start``
``InfeasibleSelection``   400     parameters admit no feasible selection
``ValueError``            400     malformed request
``KeyError``              400     missing field
anything else             500     bug — check the logs
========================  ======  =========================================

Resource model (JSON over HTTP/1.1)::

    POST   /v1/sessions                  start (body: dataset/region/k/...)
    POST   /v1/sessions/{id}/{op}        zoom_in | zoom_out | pan |
                                         set_time_window | time_step |
                                         stream_extend | stream_remove |
                                         stream_expire | swap_dataset
    DELETE /v1/sessions/{id}             close
    GET    /healthz                      liveness + queue/breaker snapshot
    GET    /metrics                      counters, gauges, timer summaries
"""

from __future__ import annotations

from typing import Any

from repro.robustness.errors import (
    CircuitOpen,
    DeadlineExceeded,
    FaultInjected,
    InfeasibleSelection,
    InvalidNavigation,
    OverloadShed,
    RetryBudgetExhausted,
    ServiceClosed,
    SessionNotStarted,
    UnknownSession,
)
from repro.service.service import OPERATIONS, ServiceRequest, ServiceResponse

#: Ordered (subclass-before-superclass) exception → HTTP status mapping.
#: ``UnknownSession`` precedes ``KeyError`` (it IS a KeyError);
#: ``OverloadShed`` precedes the 503 family it could be confused with.
STATUS_MAP: tuple[tuple[type[BaseException], int], ...] = (
    (OverloadShed, 429),
    (UnknownSession, 404),
    (CircuitOpen, 503),
    (ServiceClosed, 503),
    (RetryBudgetExhausted, 503),
    (FaultInjected, 503),
    (DeadlineExceeded, 504),
    (InvalidNavigation, 400),
    (SessionNotStarted, 400),
    (InfeasibleSelection, 400),
    (ValueError, 400),
    (KeyError, 400),
)

#: ``error_type`` string → status, derived from :data:`STATUS_MAP` so the
#: HTTP layer can map a :class:`ServiceResponse` (which carries the
#: exception only by name) without re-raising.
_STATUS_BY_NAME: dict[str, int] = {
    exc_type.__name__: status for exc_type, status in STATUS_MAP
}
_STATUS_BY_NAME["SessionLimitExceeded"] = 429


def status_for(exc: BaseException) -> int:
    """HTTP status for ``exc`` (500 for anything unmapped)."""
    for exc_type, status in STATUS_MAP:
        if isinstance(exc, exc_type):
            return status
    return 500


def status_for_response(response: ServiceResponse) -> int:
    """HTTP status for a handled :class:`ServiceResponse`."""
    if response.ok:
        return 200
    if response.error_type is None:
        return 500
    return _STATUS_BY_NAME.get(response.error_type, 500)


def parse_request(
    method: str, path: str, body: dict[str, Any] | None
) -> ServiceRequest:
    """Map an HTTP ``(method, path, json-body)`` to a service request.

    Raises ``ValueError`` for unroutable paths/methods — the HTTP layer
    turns that into a 400/404 without touching the service.
    """
    body = body or {}
    parts = [p for p in path.split("/") if p]
    if parts[:2] == ["v1", "sessions"]:
        rest = parts[2:]
        deadline_ms = body.pop("deadline_ms", None)
        if deadline_ms is not None:
            deadline_ms = float(deadline_ms)
        if not rest:
            if method != "POST":
                raise ValueError(f"{method} not supported on /v1/sessions")
            return ServiceRequest(
                op="start", params=body, deadline_ms=deadline_ms
            )
        session_id = rest[0]
        if len(rest) == 1:
            if method != "DELETE":
                raise ValueError(
                    f"{method} not supported on /v1/sessions/{{id}}"
                )
            return ServiceRequest(
                op="close", session_id=session_id, deadline_ms=deadline_ms
            )
        if len(rest) == 2 and method == "POST":
            op = rest[1]
            if op not in OPERATIONS or op in ("start", "close"):
                raise ValueError(f"unknown session operation {op!r}")
            return ServiceRequest(
                op=op,
                session_id=session_id,
                params=body,
                deadline_ms=deadline_ms,
            )
    raise ValueError(f"no route for {method} {path}")
