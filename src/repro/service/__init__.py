"""Multi-user selection service over :class:`~repro.core.session.MapSession`.

Everything below this package is single-session: one analyst, one
viewport, one process.  ``repro.service`` is the serving layer the
ROADMAP's north star asks for — an asyncio front end that multiplexes
many concurrent users over shared read-only dataset/model/index state,
with *robust overload behavior* as the defining property:

* :class:`SessionManager` — per-user :class:`MapSession` state with
  TTL-based eviction and a hard session cap; every session shares the
  service's immutable datasets (one copy of the coordinate, weight,
  and feature arrays however many users are live).
* :class:`AdmissionController` — bounded queue + concurrency limiter +
  per-request deadline budget.  Overload produces *typed, fast*
  rejections (:class:`~repro.robustness.OverloadShed`) instead of
  queue collapse, and a :class:`~repro.robustness.CircuitBreaker`
  keeps a failing handler path from being hammered.
* :class:`RetryPolicy` / :class:`RetryBudget` /
  :func:`run_with_retry` — jittered-backoff retries for transient
  faults, capped by a token-bucket budget so retries can never
  amplify an outage.
* :class:`SelectionService` — ties the three together and exposes the
  session operations (``start`` / ``zoom_in`` / ``zoom_out`` / ``pan``
  / ``swap_dataset`` / ``close``) as deadline-scoped requests.
* :class:`ServiceHTTPServer` — stdlib-asyncio JSON-over-HTTP protocol
  layer (no third-party runtime dependencies) with health and metrics
  endpoints.

The service's contract with the selection engine is strict: an
*admitted* request returns a selection byte-identical to calling the
same :class:`MapSession` method directly — robustness machinery may
reject (shed) or degrade (ladder tiers), never silently corrupt.
``benchmarks/bench_service_load.py`` gates that plus p50/p95 latency
and shed behavior under 64 concurrent clients; the chaos suite
(``tests/test_service_chaos.py``) drills the ``service.admit`` /
``service.handle`` fault points.  See ``docs/SERVICE.md``.
"""

from repro.service.admission import AdmissionController, is_system_failure
from repro.service.http import ServiceHTTPServer
from repro.service.protocol import (
    parse_request,
    status_for,
    status_for_response,
)
from repro.service.retry import RetryBudget, RetryPolicy, run_with_retry
from repro.service.service import (
    OPERATIONS,
    SelectionService,
    ServiceRequest,
    ServiceResponse,
)
from repro.service.sessions import SessionEntry, SessionManager

__all__ = [
    "AdmissionController",
    "OPERATIONS",
    "RetryBudget",
    "RetryPolicy",
    "SelectionService",
    "ServiceHTTPServer",
    "ServiceRequest",
    "ServiceResponse",
    "SessionEntry",
    "SessionManager",
    "is_system_failure",
    "parse_request",
    "run_with_retry",
    "status_for",
    "status_for_response",
]
