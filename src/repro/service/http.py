"""Stdlib-asyncio JSON-over-HTTP front end for the selection service.

A deliberately minimal HTTP/1.1 server — ``asyncio.start_server`` plus
a hand-rolled request reader — because the repo's no-new-dependencies
rule rules out aiohttp/uvicorn and the protocol surface is five POST
routes and two GETs.  What it does take seriously:

* **bounded reads** — request head capped at 16 KiB and bodies at
  1 MiB, so a misbehaving client cannot balloon memory; oversized or
  malformed requests get a 400/413 and the connection is dropped.
* **keep-alive** — connections are reused until the client sends
  ``Connection: close`` (or HTTP/1.0 without keep-alive), matching the
  closed-loop clients of the load bench.
* **backpressure by admission, not by socket** — the server never
  queues requests itself; every request goes straight to
  :meth:`SelectionService.handle`, whose admission controller is the
  single place where overload policy lives.
* **TTL sweeping** — an optional background task evicts idle sessions
  so abandoned clients cannot pin the session cap.

Responses are always JSON (``ServiceResponse.payload()`` for session
routes); the status code comes from
:func:`repro.service.protocol.status_for_response`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.service.protocol import parse_request, status_for_response
from repro.service.service import SelectionService

MAX_HEAD_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024


class _BadRequest(Exception):
    """Protocol-level rejection: (status, message)."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class ServiceHTTPServer:
    """Serve a :class:`SelectionService` over HTTP/1.1.

    Usage::

        async with ServiceHTTPServer(service, port=0) as server:
            ...  # server.port is the bound port

    or explicitly ``await server.start()`` / ``await server.stop()``.
    ``sweep_interval_s`` (when positive and the service has a TTL)
    runs session eviction in the background.
    """

    def __init__(
        self,
        service: SelectionService,
        host: str = "127.0.0.1",
        port: int = 0,
        sweep_interval_s: float = 30.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.sweep_interval_s = sweep_interval_s
        self._server: asyncio.base_events.Server | None = None
        self._sweeper: asyncio.Task[None] | None = None

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.sweep_interval_s > 0 and self.service.sessions.ttl_s:
            self._sweeper = asyncio.ensure_future(self._sweep_loop())

    async def stop(self) -> None:
        """Stop accepting, cancel the sweeper, close the service.

        Teardown must be unconditional: a sweeper that already died
        with a real exception (an eviction bug, say) re-raises it from
        ``await self._sweeper`` — that must not leave the listening
        socket open and the service (sessions, pools) alive.  The
        sweeper's exception is re-raised *after* everything is down.
        """
        sweeper_exc: BaseException | None = None
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            # repro-lint: disable=RL005 -- held and re-raised after teardown
            except BaseException as exc:
                sweeper_exc = exc
            self._sweeper = None
        try:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
                self._server = None
        finally:
            await self.service.aclose()
        if sweeper_exc is not None:
            raise sweeper_exc

    async def __aenter__(self) -> "ServiceHTTPServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval_s)
            await asyncio.to_thread(self.service.sessions.evict_expired)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._respond(
                        writer, exc.status, {"error": exc.message},
                        keep_alive=False,
                    )
                    return
                if parsed is None:  # client closed between requests
                    return
                method, path, headers, body = parsed
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                status, payload = await self._route(method, path, body)
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # repro-lint: disable=RL005 -- client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass  # repro-lint: disable=RL005 -- already closing; the peer reset first

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between keep-alive requests
            raise _BadRequest(400, "truncated request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise _BadRequest(431, "request head too large") from exc
        if len(head) > MAX_HEAD_BYTES:
            raise _BadRequest(431, "request head too large")
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, path, _version = request_line.split(" ", 2)
        except ValueError as exc:
            raise _BadRequest(400, "malformed request line") from exc
        headers: dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError as exc:
                raise _BadRequest(400, "malformed Content-Length") from exc
            if length < 0 or length > MAX_BODY_BYTES:
                raise _BadRequest(413, "request body too large")
            if length:
                try:
                    body = await reader.readexactly(length)
                except asyncio.IncompleteReadError as exc:
                    raise _BadRequest(400, "truncated request body") from exc
        elif headers.get("transfer-encoding"):
            raise _BadRequest(
                501, "chunked transfer encoding is not supported"
            )
        return method.upper(), path, headers, body

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        path = path.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            payload = self.service.health()
            return (200 if payload["status"] == "ok" else 503), payload
        if method == "GET" and path == "/metrics":
            return 200, self.service.metrics_payload()
        if body:
            try:
                decoded = json.loads(body)
            except json.JSONDecodeError:
                return 400, {"error": "request body is not valid JSON"}
            if not isinstance(decoded, dict):
                return 400, {"error": "request body must be a JSON object"}
        else:
            decoded = {}
        try:
            request = parse_request(method, path, decoded)
        except ValueError as exc:
            status = 404 if "no route" in str(exc) else 400
            return status, {"error": str(exc)}
        response = await self.service.handle(request)
        return status_for_response(response), response.payload()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode()
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            413: "Payload Too Large", 429: "Too Many Requests",
            431: "Request Header Fields Too Large", 500: "Internal Server Error",
            501: "Not Implemented", 503: "Service Unavailable",
            504: "Gateway Timeout",
        }.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
