"""The selection service: sessions + admission + retries, tied together.

:class:`SelectionService` is the transport-independent core — the HTTP
layer (:mod:`repro.service.http`) and tests both drive it through
:meth:`SelectionService.handle`, which takes a :class:`ServiceRequest`
and always returns a :class:`ServiceResponse` (errors are *data*, not
exceptions, once they cross this boundary).

Request lifecycle::

    handle(request)
      └─ span "service.request" (request_id, session_id, op)
         ├─ admission: fault point service.admit → breaker peek →
         │  deadline check → bounded queue → slot      (shed ⇒ typed
         │  rejection *before* any session state is touched)
         ├─ dispatch: per-session asyncio.Lock, then the CPU-bound
         │  MapSession call runs in a worker thread (asyncio.to_thread
         │  copies contextvars, so session spans nest under the
         │  request's root span)
         │    └─ fault point service.handle (inside the worker thread,
         │       so injected latency never blocks the event loop),
         │       wrapped in run_with_retry
         └─ outcome: breaker success/failure recorded by the admission
            ticket; metrics service.requests / .shed / .errors /
            .request_seconds / .tier_seconds.<tier>

Byte-identity contract: for an admitted request the selection payload
is exactly ``step.visible`` from the underlying
:class:`~repro.core.session.MapSession` call — the service adds
envelope fields (ids, latency, attempts) but never reorders, filters,
or recomputes the selection.  ``benchmarks/bench_service_load.py``
replays every admitted operation on a direct session and compares
byte-for-byte.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.session import NavigationStep
from repro.core.streaming import StreamingSelector
from repro.geo.bbox import BoundingBox
from repro.metrics import MetricsRegistry
from repro.robustness.breaker import CircuitBreaker
from repro.robustness.budget import Deadline
from repro.robustness.errors import (
    FaultInjected,
    OverloadShed,
    ServiceClosed,
    SessionNotStarted,
    UnknownSession,
)
from repro.robustness.faults import SERVICE_HANDLE, FaultInjector
from repro.service.admission import AdmissionController
from repro.similarity import GrowableEuclideanSimilarity
from repro.service.retry import RetryBudget, RetryPolicy, run_with_retry
from repro.service.sessions import SessionEntry, SessionManager
from repro.trace.tracer import NULL_TRACER, TracerLike

#: Operations a request may name.
OPERATIONS = (
    "start", "zoom_in", "zoom_out", "pan",
    "set_time_window", "time_step",
    "stream_extend", "stream_remove", "stream_expire",
    "swap_dataset", "close",
)

#: Session-touching operations (everything but ``start``).
_SESSION_OPS = frozenset(OPERATIONS) - {"start"}


@dataclass(frozen=True)
class ServiceRequest:
    """One client request, transport-independent.

    ``params`` carries the operation arguments (``region`` as a
    ``[minx, miny, maxx, maxy]`` list, ``scale``, ``dx``/``dy``,
    ``dataset``, per-session option overrides at ``start``...).
    ``deadline_ms`` overrides the service default budget for this
    request only.
    """

    op: str
    session_id: str | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    deadline_ms: float | None = None


@dataclass
class ServiceResponse:
    """One request's outcome; :meth:`payload` is the wire shape."""

    ok: bool
    op: str
    request_id: str
    session_id: str | None = None
    selection: list[int] | None = None
    score: float | None = None
    tier: str | None = None
    degraded: bool | None = None
    region: list[float] | None = None
    attempts: int = 1
    elapsed_ms: float = 0.0
    error: str | None = None
    error_type: str | None = None
    shed_reason: str | None = None
    detail: Mapping[str, Any] | None = None

    def payload(self) -> dict[str, Any]:
        """JSON-serializable dict, ``None`` fields dropped."""
        out: dict[str, Any] = {}
        for key, value in self.__dict__.items():
            if value is not None:
                out[key] = value
        return out


class SelectionService:
    """Deadline-scoped multi-user facade over :class:`MapSession`.

    Parameters
    ----------
    datasets:
        Named shared datasets (see :class:`SessionManager`).
    default_deadline_ms:
        Per-request budget when the request names none.  The budget
        covers queueing *and* handling; admission sheds requests whose
        budget is already spent.
    admission:
        Admission controller; a default one
        (``max_concurrency=8, max_queue_depth=64``) is built when
        omitted, wired to ``breaker``/``fault_injector``/``metrics``.
    sessions:
        Session manager; a default one is built over ``datasets``.
    retry_policy / retry_budget:
        Backoff schedule and storm-guard for transient handler faults.
    breaker:
        Service-level circuit breaker (default: ``name="service"``,
        standard thresholds).  Pass ``None`` explicitly via a custom
        ``admission`` controller to disable.
    fault_injector:
        Chaos hook; traverses ``service.admit`` and ``service.handle``.
    seed:
        Seeds retry jitter (the only service-level randomness).
    """

    def __init__(
        self,
        datasets: Mapping[str, GeoDataset],
        default_deadline_ms: float = 250.0,
        admission: AdmissionController | None = None,
        sessions: SessionManager | None = None,
        retry_policy: RetryPolicy | None = None,
        retry_budget: RetryBudget | None = None,
        breaker: CircuitBreaker | None = None,
        fault_injector: FaultInjector | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: TracerLike | None = None,
        session_options: Mapping[str, Any] | None = None,
        max_sessions: int = 256,
        session_ttl_s: float | None = 1800.0,
        seed: int = 2018,
    ) -> None:
        if default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be positive, got {default_deadline_ms}"
            )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fault_injector = fault_injector
        self.breaker = (
            breaker if breaker is not None else CircuitBreaker(name="service")
        )
        self.default_deadline_ms = default_deadline_ms
        options = dict(session_options or {})
        options.setdefault("metrics", self.metrics)
        options.setdefault("tracer", self.tracer)
        self.sessions = (
            sessions
            if sessions is not None
            else SessionManager(
                datasets,
                max_sessions=max_sessions,
                ttl_s=session_ttl_s,
                session_options=options,
                metrics=self.metrics,
            )
        )
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(
                breaker=self.breaker,
                fault_injector=fault_injector,
                metrics=self.metrics,
            )
        )
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.retry_budget = (
            retry_budget if retry_budget is not None else RetryBudget()
        )
        self._rng = np.random.default_rng(seed)
        self._request_ids = itertools.count(1)
        self._closed = False

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def handle(self, request: ServiceRequest) -> ServiceResponse:
        """Process one request; never raises (errors become responses)."""
        request_id = f"r-{next(self._request_ids):08d}"
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.default_deadline_ms
        )
        started = time.perf_counter()
        response: ServiceResponse
        with self.tracer.span(
            "service.request",
            request_id=request_id,
            op=request.op,
            session_id=request.session_id or "",
        ) as span:
            try:
                if self._closed:
                    raise ServiceClosed("service is shut down")
                if request.op not in OPERATIONS:
                    raise ValueError(
                        f"unknown operation {request.op!r}; "
                        f"expected one of {', '.join(OPERATIONS)}"
                    )
                if deadline_ms <= 0:
                    raise ValueError(
                        f"deadline_ms must be positive, got {deadline_ms}"
                    )
                deadline = Deadline.after(deadline_ms / 1000.0)
                async with self.admission.admit(deadline):
                    response = await self._dispatch(
                        request, request_id, deadline
                    )
            except OverloadShed as exc:
                self.metrics.incr("service.shed")
                self.metrics.incr(f"service.shed.{exc.reason}")
                self.metrics.observe(
                    "service.shed_seconds", time.perf_counter() - started
                )
                response = self._error_response(
                    request, request_id, exc, shed_reason=exc.reason
                )
            except Exception as exc:
                self.metrics.incr("service.errors")
                self.metrics.incr(
                    f"service.errors.{type(exc).__name__.lower()}"
                )
                response = self._error_response(request, request_id, exc)
            span.annotate(ok=response.ok, error=response.error_type or "")
        response.elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.metrics.incr("service.requests")
        self.metrics.observe(
            "service.request_seconds", time.perf_counter() - started
        )
        return response

    def _error_response(
        self,
        request: ServiceRequest,
        request_id: str,
        exc: BaseException,
        shed_reason: str | None = None,
    ) -> ServiceResponse:
        return ServiceResponse(
            ok=False,
            op=request.op,
            request_id=request_id,
            session_id=request.session_id,
            error=str(exc),
            error_type=type(exc).__name__,
            shed_reason=shed_reason,
        )

    async def _dispatch(
        self, request: ServiceRequest, request_id: str, deadline: Deadline
    ) -> ServiceResponse:
        params = dict(request.params)
        if request.op == "start":
            return await self._handle_start(request, request_id, deadline)
        if request.session_id is None:
            raise ValueError(f"{request.op} requires a session_id")
        entry = self.sessions.get(request.session_id)
        if request.op == "close":
            # Closing tears down per-session pools/streams; hop like
            # every other session-touching operation.
            await asyncio.to_thread(self.sessions.remove, request.session_id)
            return ServiceResponse(
                ok=True,
                op=request.op,
                request_id=request_id,
                session_id=request.session_id,
            )
        if request.op == "swap_dataset":
            return await self._handle_swap(
                entry, params, request_id, deadline
            )
        if request.op.startswith("stream_"):
            return await self._handle_stream(
                entry, request.op, params, request_id, deadline
            )
        step, attempts = await self._run_step(
            entry, request.op, params, deadline
        )
        return self._step_response(entry, request.op, request_id, step, attempts)

    async def _handle_start(
        self, request: ServiceRequest, request_id: str, deadline: Deadline
    ) -> ServiceResponse:
        params = dict(request.params)
        dataset_name = params.pop("dataset", None)
        region = self._parse_region(params.pop("region", None))
        overrides = {
            key: params.pop(key)
            for key in (
                "k", "theta_fraction", "prefetch", "deadline_s",
                "time_window", "time_hysteresis",
            )
            if key in params
        }
        self._reject_extras(params)
        # Creation warms the dataset's shared worker pool (process
        # spawn + shared-memory export) and may evict expired sessions
        # — seconds of work that must not stall the event loop.
        entry = await asyncio.to_thread(
            self.sessions.create, dataset_name, overrides
        )
        try:
            if region is None:
                region = self.sessions.dataset(entry.dataset_name).frame()
            step, attempts = await self._run_step(
                entry, "start", {"region": region}, deadline, parsed=True
            )
        except BaseException:
            # Creation succeeded but the first selection did not; a
            # half-started session would never be reachable again.
            try:
                await asyncio.to_thread(
                    self.sessions.remove, entry.session_id
                )
            except UnknownSession:
                pass
            raise
        return self._step_response(entry, "start", request_id, step, attempts)

    async def _handle_swap(
        self,
        entry: SessionEntry,
        params: dict[str, Any],
        request_id: str,
        deadline: Deadline,
    ) -> ServiceResponse:
        name = params.pop("dataset", None)
        if name is None:
            raise ValueError("swap_dataset requires a dataset name")
        region = self._parse_region(params.pop("region", None))
        self._reject_extras(params)
        dataset = self.sessions.dataset(name)
        step, attempts = await self._run_step(
            entry,
            "swap_dataset",
            {"dataset": dataset, "region": region},
            deadline,
            parsed=True,
        )
        entry.dataset_name = name
        return self._step_response(
            entry, "swap_dataset", request_id, step, attempts
        )

    def _stream_for(self, entry: SessionEntry) -> StreamingSelector:
        """The session's long-lived stream, created on first use.

        The stream watches the session's *current* viewport with the
        session's ``k`` and the θ that viewport implies; its universe
        is an append-only Euclidean model (arrival coordinates are not
        known upfront) with ``d_max`` fixed to the viewport diagonal,
        matching :class:`~repro.similarity.EuclideanSimilarity`'s
        frame-diagonal default.  Callers hold ``entry.lock``.
        """
        if entry.stream is None:
            session = entry.session
            region = session.region
            if region is None:
                raise SessionNotStarted(
                    "stream operations require a started session "
                    "(the stream watches the session's viewport)"
                )
            d_max = float(np.hypot(region.width, region.height)) or 1.0
            theta = session.theta_fraction * max(
                region.width, region.height
            )
            entry.stream = StreamingSelector(
                GrowableEuclideanSimilarity(d_max=d_max),
                region,
                k=session.k,
                theta=theta,
                aggregation=session.aggregation,
            )
        return entry.stream

    async def _handle_stream(
        self,
        entry: SessionEntry,
        op: str,
        params: dict[str, Any],
        request_id: str,
        deadline: Deadline,
    ) -> ServiceResponse:
        """Run one stream mutation under the session lock.

        Mirrors :meth:`_run_step` (worker thread, fault point, retry
        on injected faults) but mutates the per-session
        :class:`StreamingSelector` instead of the
        :class:`~repro.core.session.MapSession`.  The response's
        ``selection`` is the maintained selection after the mutation;
        ``detail`` carries the stream's lifetime counters.
        """
        if op == "stream_extend":
            try:
                xs = np.asarray(params.pop("xs"), dtype=np.float64)
                ys = np.asarray(params.pop("ys"), dtype=np.float64)
            except KeyError as exc:
                raise ValueError(
                    f"stream_extend requires {exc.args[0]!r}"
                ) from None
            weights = params.pop("weights", None)
            if weights is not None:
                weights = np.asarray(weights, dtype=np.float64)
            ts = params.pop("ts", None)
            if ts is not None:
                ts = np.asarray(ts, dtype=np.float64)
            self._reject_extras(params)

            def mutate(stream: StreamingSelector) -> None:
                # The universe grows first so every arrival's id is in
                # range; if ingestion then rejects the batch (length
                # mismatch, bad weight), the universe rolls back to the
                # arrivals actually ingested so ids stay aligned with
                # coordinates.
                stream.similarity.append(xs, ys)
                try:
                    stream.extend(xs, ys, weights=weights, ts=ts)
                except BaseException:
                    stream.similarity.truncate(stream.arrivals)
                    raise

        elif op == "stream_remove":
            try:
                obj_id = int(params.pop("id"))
            except KeyError:
                raise ValueError("stream_remove requires 'id'") from None
            self._reject_extras(params)

            def mutate(stream: StreamingSelector) -> None:
                stream.remove(obj_id)

        elif op == "stream_expire":
            try:
                cutoff = float(params.pop("cutoff"))
            except KeyError:
                raise ValueError(
                    "stream_expire requires 'cutoff'"
                ) from None
            self._reject_extras(params)

            def mutate(stream: StreamingSelector) -> None:
                stream.expire_before(cutoff)

        else:
            raise ValueError(f"unknown operation {op!r}")

        injector = self.fault_injector

        def invoke() -> StreamingSelector:
            if injector is not None:
                injector.check(SERVICE_HANDLE)
            deadline.check()
            stream = self._stream_for(entry)
            mutate(stream)
            return stream

        async with entry.lock:
            if entry.closed:
                raise UnknownSession(entry.session_id)
            with self.tracer.span("service.dispatch", op=op):
                stream, attempts = await run_with_retry(
                    lambda: asyncio.to_thread(invoke),
                    policy=self.retry_policy,
                    rng=self._rng,
                    retryable=(FaultInjected,),
                    deadline=deadline,
                    budget=self.retry_budget,
                    metrics=self.metrics,
                )
            entry.steps += 1
            self.sessions.touch(entry)
        self.metrics.incr(f"service.stream.{op.removeprefix('stream_')}")
        return ServiceResponse(
            ok=True,
            op=op,
            request_id=request_id,
            session_id=entry.session_id,
            selection=[int(i) for i in stream.selected],
            score=float(stream.score()),
            attempts=attempts,
            detail={
                "arrivals": stream.arrivals,
                "swaps": stream.swaps,
                "removals": stream.removals,
                "expired": stream.expired,
            },
        )

    async def _run_step(
        self,
        entry: SessionEntry,
        op: str,
        params: Mapping[str, Any],
        deadline: Deadline,
        parsed: bool = False,
    ) -> tuple[NavigationStep | None, int]:
        """Run one session operation under the entry lock, with retries."""
        call = self._build_call(entry, op, params, parsed)
        injector = self.fault_injector

        def invoke() -> NavigationStep | None:
            # Runs in a worker thread: the fault check lives here so an
            # injected latency stalls the worker, not the event loop —
            # and so a retry traverses the fault point again.
            if injector is not None:
                injector.check(SERVICE_HANDLE)
            deadline.check()
            return call()

        async with entry.lock:
            if entry.closed:
                raise UnknownSession(entry.session_id)
            with self.tracer.span("service.dispatch", op=op):
                result, attempts = await run_with_retry(
                    lambda: asyncio.to_thread(invoke),
                    policy=self.retry_policy,
                    rng=self._rng,
                    retryable=(FaultInjected,),
                    deadline=deadline,
                    budget=self.retry_budget,
                    metrics=self.metrics,
                )
            entry.steps += 1
            self.sessions.touch(entry)
        return result, attempts

    def _build_call(
        self,
        entry: SessionEntry,
        op: str,
        params: Mapping[str, Any],
        parsed: bool,
    ):
        """Bind the MapSession method and validated arguments for ``op``."""
        session = entry.session
        params = dict(params)
        if op == "start":
            region = (
                params.pop("region")
                if parsed
                else self._parse_region(params.pop("region", None))
            )
            self._reject_extras(params)
            if region is None:
                raise ValueError("start requires a region")
            return lambda: session.start(region)
        if op == "swap_dataset":
            dataset = params.pop("dataset")
            region = params.pop("region", None)
            self._reject_extras(params)

            def swap() -> NavigationStep | None:
                session.swap_dataset(dataset)
                if region is not None:
                    return session.start(region)
                return None

            return swap
        if op in ("zoom_in", "zoom_out"):
            scale = params.pop("scale", None)
            target = self._parse_region(params.pop("target", None))
            self._reject_extras(params)
            method = session.zoom_in if op == "zoom_in" else session.zoom_out
            kwargs: dict[str, Any] = {}
            if scale is not None:
                kwargs["scale"] = float(scale)
            if target is not None:
                kwargs["target"] = target
            return lambda: method(**kwargs)
        if op == "pan":
            dx = float(params.pop("dx", 0.0))
            dy = float(params.pop("dy", 0.0))
            target = self._parse_region(params.pop("target", None))
            self._reject_extras(params)
            if target is not None:
                return lambda: session.pan(target=target)
            return lambda: session.pan(dx, dy)
        if op == "set_time_window":
            try:
                t_start = float(params.pop("t_start"))
                t_end = float(params.pop("t_end"))
            except KeyError as exc:
                raise ValueError(
                    f"set_time_window requires {exc.args[0]!r}"
                ) from None
            self._reject_extras(params)
            return lambda: session.set_time_window(t_start, t_end)
        if op == "time_step":
            try:
                dt = float(params.pop("dt"))
            except KeyError:
                raise ValueError("time_step requires 'dt'") from None
            self._reject_extras(params)
            return lambda: session.time_step(dt)
        raise ValueError(f"unknown operation {op!r}")

    def _step_response(
        self,
        entry: SessionEntry,
        op: str,
        request_id: str,
        step: NavigationStep | None,
        attempts: int,
    ) -> ServiceResponse:
        response = ServiceResponse(
            ok=True,
            op=op,
            request_id=request_id,
            session_id=entry.session_id,
            attempts=attempts,
        )
        if step is not None:
            response.selection = [int(i) for i in step.visible]
            response.score = float(step.result.score)
            response.tier = step.tier
            response.degraded = bool(step.degraded)
            response.region = [
                step.region.minx, step.region.miny,
                step.region.maxx, step.region.maxy,
            ]
            if step.time_window is not None:
                response.detail = {
                    "time_window": [
                        step.time_window[0], step.time_window[1]
                    ]
                }
            self.metrics.observe(
                f"service.tier_seconds.{step.tier}", step.elapsed_s
            )
        return response

    @staticmethod
    def _parse_region(raw: Any) -> BoundingBox | None:
        if raw is None or isinstance(raw, BoundingBox):
            return raw
        if isinstance(raw, Mapping):
            try:
                return BoundingBox(
                    float(raw["minx"]), float(raw["miny"]),
                    float(raw["maxx"]), float(raw["maxy"]),
                )
            except KeyError as exc:
                raise ValueError(
                    f"region mapping is missing key {exc.args[0]!r}"
                ) from None
        try:
            minx, miny, maxx, maxy = (float(v) for v in raw)
        except (TypeError, ValueError):
            raise ValueError(
                "region must be [minx, miny, maxx, maxy] or an object "
                "with those keys"
            ) from None
        return BoundingBox(minx, miny, maxx, maxy)

    @staticmethod
    def _reject_extras(params: Mapping[str, Any]) -> None:
        if params:
            raise ValueError(
                "unexpected parameters: " + ", ".join(sorted(params))
            )

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Liveness payload for ``GET /healthz``."""
        return {
            "status": "closed" if self._closed else "ok",
            "sessions": self.sessions.count,
            "active": self.admission.active,
            "queue_depth": self.admission.queue_depth,
            "breaker": self.breaker.state,
            "datasets": self.sessions.dataset_names,
        }

    def metrics_payload(self) -> dict[str, Any]:
        """Observability payload for ``GET /metrics``."""
        return {
            "counters": self.metrics.snapshot(),
            "gauges": self.metrics.gauges(),
            "timers": self.metrics.summaries(),
        }

    def close(self) -> None:
        """Refuse new work and close every session (idempotent)."""
        self._closed = True
        self.sessions.close_all()

    async def aclose(self) -> None:
        """Async variant of :meth:`close` (session closes off-loop)."""
        self._closed = True
        await asyncio.to_thread(self.sessions.close_all)
