"""Baseline machinery: grandfathering pre-existing findings.

A baseline file records the findings that existed when the analyzer
was adopted so CI can gate *new* violations without demanding the whole
debt be paid first.  Entries are keyed by ``(rule, path, line text)``
with a count — see :meth:`~repro.analysis.findings.Finding.key` for why
line text beats line numbers — so edits elsewhere in a file do not
invalidate the baseline, while touching a baselined line (its text
changes) surfaces the finding again, which is exactly when the debt
should be paid.

Renames get a second chance: every entry also carries a path-free
**content hash** of (rule, line text), and a finding that misses the
exact key falls back to matching by hash.  Moving a file therefore
does not resurface its whole grandfathered debt — only actually
touching the offending lines does.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = ".repro-lint-baseline.json"


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def _entry_hash(rule: str, text: str) -> str:
    """Path-free entry identity; must mirror ``Finding.content_hash``."""
    digest = hashlib.sha256(f"{rule}\x00{text}".encode("utf-8"))
    return digest.hexdigest()[:16]


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Persist ``findings`` as the new accepted debt."""
    counts = Counter(f.key() for f in findings)
    entries = [
        {
            "rule": rule,
            "path": fpath,
            "text": text,
            "count": count,
            "hash": _entry_hash(rule, text),
        }
        for (rule, fpath, text), count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> tuple[Counter, Counter]:
    """Load accepted debt as ``(exact keys, content-hash fallback)``.

    The exact counter is keyed like :meth:`Finding.key`; the hash
    counter is keyed by the path-free entry hash.  Baselines written
    before the ``hash`` field existed still load — their hash is
    recomputed from the stored rule + text.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
    if payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has version {payload.get('version')!r}, "
            f"expected {BASELINE_VERSION}"
        )
    exact: Counter = Counter()
    hashed: Counter = Counter()
    for entry in payload.get("entries", []):
        count = int(entry.get("count", 1))
        exact[(entry["rule"], entry["path"], entry["text"])] += count
        hashed[
            entry.get("hash") or _entry_hash(entry["rule"], entry["text"])
        ] += count
    return exact, hashed


def apply_baseline(
    findings: list[Finding], accepted: Counter | tuple[Counter, Counter]
) -> tuple[list[Finding], int]:
    """Split findings into (new, baselined-away count).

    For each baseline key the first ``count`` occurrences are
    grandfathered; anything beyond that is new debt and is reported.
    A finding that misses its exact (rule, path, text) key is retried
    against the content-hash pool, which is what keeps a renamed
    file's debt grandfathered.  Both pools draw down together on an
    exact match so a rename cannot double the accepted budget.
    """
    if isinstance(accepted, tuple):
        exact, hashed = Counter(accepted[0]), Counter(accepted[1])
    else:
        # Backward-compatible single-counter form (exact keys only).
        exact, hashed = Counter(accepted), Counter()
        for (rule, _path, text), count in exact.items():
            hashed[_entry_hash(rule, text)] += count
    new: list[Finding] = []
    matched = 0
    for finding in findings:
        key = finding.key()
        digest = finding.content_hash()
        if exact.get(key, 0) > 0:
            exact[key] -= 1
            if hashed.get(digest, 0) > 0:
                hashed[digest] -= 1
            matched += 1
        elif hashed.get(digest, 0) > 0:
            hashed[digest] -= 1
            matched += 1
        else:
            new.append(finding)
    return new, matched
