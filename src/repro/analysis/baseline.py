"""Baseline machinery: grandfathering pre-existing findings.

A baseline file records the findings that existed when the analyzer
was adopted so CI can gate *new* violations without demanding the whole
debt be paid first.  Entries are keyed by ``(rule, path, line text)``
with a count — see :meth:`~repro.analysis.findings.Finding.key` for why
line text beats line numbers — so edits elsewhere in a file do not
invalidate the baseline, while touching a baselined line (its text
changes) surfaces the finding again, which is exactly when the debt
should be paid.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = ".repro-lint-baseline.json"


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Persist ``findings`` as the new accepted debt."""
    counts = Counter(f.key() for f in findings)
    entries = [
        {"rule": rule, "path": fpath, "text": text, "count": count}
        for (rule, fpath, text), count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Counter:
    """Load accepted-debt counts keyed like :meth:`Finding.key`."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc
    if payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has version {payload.get('version')!r}, "
            f"expected {BASELINE_VERSION}"
        )
    counts: Counter = Counter()
    for entry in payload.get("entries", []):
        key = (entry["rule"], entry["path"], entry["text"])
        counts[key] += int(entry.get("count", 1))
    return counts


def apply_baseline(
    findings: list[Finding], accepted: Counter
) -> tuple[list[Finding], int]:
    """Split findings into (new, baselined-away count).

    For each baseline key the first ``count`` occurrences are
    grandfathered; anything beyond that is new debt and is reported.
    """
    remaining = Counter(accepted)
    new: list[Finding] = []
    matched = 0
    for finding in findings:
        key = finding.key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new.append(finding)
    return new, matched
