"""Finding record and output formatting for ``repro.analysis``.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.key` deliberately ignores the line *number* and keys on
the line *text* instead: baselines must survive unrelated edits above a
finding, and the (rule, path, normalized line text) triple is stable
under such drift the same way flake8/ruff baseline tools match.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Stripped source text of the offending line (baseline matching).
    line_text: str = field(default="", compare=False)

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable under line-number drift."""
        return (self.rule, self.path, self.line_text)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def format_text(findings: list[Finding]) -> str:
    """One ``path:line:col: RLxxx message`` line per finding."""
    lines = [
        f"{f.location()}: {f.rule} {f.message}"
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    return "\n".join(lines)


def format_json(findings: list[Finding]) -> str:
    """JSON array of finding objects (machine-readable output)."""
    payload = [
        {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "message": f.message,
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    return json.dumps(payload, indent=2)
