"""Finding record and output formatting for ``repro.analysis``.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.key` deliberately ignores the line *number* and keys on
the line *text* instead: baselines must survive unrelated edits above a
finding, and the (rule, path, normalized line text) triple is stable
under such drift the same way flake8/ruff baseline tools match.
:meth:`Finding.content_hash` drops the path too, so baselines survive
file *renames* as well (the hash fallback in
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Stripped source text of the offending line (baseline matching).
    line_text: str = field(default="", compare=False)

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable under line-number drift."""
        return (self.rule, self.path, self.line_text)

    def content_hash(self) -> str:
        """Path-independent identity: stable under file renames.

        Hashes (rule, line text) only, so a finding whose file moved —
        same offending line, new path — still matches its baseline
        entry through the hash fallback.
        """
        digest = hashlib.sha256(
            f"{self.rule}\x00{self.line_text}".encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the project index caches these)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
            line_text=str(data.get("line_text", "")),
        )


def _sorted(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def format_text(findings: list[Finding]) -> str:
    """One ``path:line:col: RLxxx message`` line per finding."""
    lines = [
        f"{f.location()}: {f.rule} {f.message}" for f in _sorted(findings)
    ]
    return "\n".join(lines)


def format_json(findings: list[Finding]) -> str:
    """JSON array of finding objects (machine-readable output)."""
    payload = [
        {
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "message": f.message,
        }
        for f in _sorted(findings)
    ]
    return json.dumps(payload, indent=2)


def _escape_annotation(text: str) -> str:
    """Escape a GitHub Actions workflow-command message value."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def format_github(findings: list[Finding]) -> str:
    """GitHub Actions ``::error`` annotations, one per finding.

    Emitted on stdout inside a workflow step, these attach inline to
    the PR diff at ``file``/``line`` — the reviewer sees the finding on
    the offending line without opening the job log.
    """
    lines = []
    for f in _sorted(findings):
        lines.append(
            f"::error file={f.path},line={f.line},col={f.col},"
            f"title=repro-lint {f.rule}::{_escape_annotation(f.message)}"
        )
    return "\n".join(lines)
