"""``python -m repro.analysis`` — the repro-lint command line.

Usage::

    python -m repro.analysis check src tests
    python -m repro.analysis check --project src tests
    python -m repro.analysis check src --select RL001,RL002 --format json
    python -m repro.analysis check src tests --write-baseline
    python -m repro.analysis rules

Exit codes: ``0`` clean (or fully baseline-gated), ``1`` findings,
``2`` usage errors (unknown rule id, unreadable baseline).

``--project`` enables the whole-package pass (call graph, async
taint, name registry) that the interprocedural rules RL007–RL011 need;
without it they are inert.  Project mode keeps a cross-module index
(default ``.repro-lint-index.json``) keyed by file mtime+size so warm
runs only re-parse edited files; ``--no-index`` disables it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import check_paths
from repro.analysis.findings import format_github, format_json, format_text
from repro.analysis.project import DEFAULT_INDEX
from repro.analysis.registry import all_rules


def _rule_list(value: str) -> list[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: project-specific static analysis enforcing "
            "lock discipline, determinism, span hygiene, naming, "
            "exception policy, public-API annotations, and (with "
            "--project) async safety, resource lifecycle, name-"
            "registry consistency, deadline propagation, and "
            "half-open temporal intervals."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="analyze files/directories")
    check.add_argument(
        "paths", nargs="+", type=Path, help="files or directories to scan"
    )
    check.add_argument(
        "--select", type=_rule_list, default=None, metavar="RLxxx[,RLyyy]",
        help="run only these rules",
    )
    check.add_argument(
        "--ignore", type=_rule_list, default=None, metavar="RLxxx[,RLyyy]",
        help="skip these rules",
    )
    check.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="output format (default: text; 'github' emits ::error "
             "workflow annotations)",
    )
    check.add_argument(
        "--baseline", type=Path, default=None, metavar="PATH",
        help=f"baseline file (default: {DEFAULT_BASELINE} when present)",
    )
    check.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring any baseline file",
    )
    check.add_argument(
        "--write-baseline", action="store_true",
        help="accept current findings as debt and write the baseline",
    )
    check.add_argument(
        "--project", action="store_true",
        help="run the whole-package pass (call graph + async taint); "
             "enables the interprocedural rules RL007-RL011",
    )
    check.add_argument(
        "--index", type=Path, default=None, metavar="PATH",
        help="cross-module index cache for --project "
             f"(default: {DEFAULT_INDEX})",
    )
    check.add_argument(
        "--no-index", action="store_true",
        help="re-parse every file; do not read or write the index",
    )

    sub.add_parser("rules", help="list registered rules")
    return parser


def _cmd_rules() -> int:
    for rule_id, rule in sorted(all_rules().items()):
        print(f"{rule_id}  {rule.name:<26} {rule.description}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    stats: dict[str, Any] = {}
    try:
        if args.project:
            index_path = None
            if not args.no_index:
                index_path = args.index or Path(DEFAULT_INDEX)
            findings = check_paths(
                args.paths, select=args.select, ignore=args.ignore,
                project=True, index_path=index_path, stats=stats,
            )
        else:
            findings = check_paths(
                args.paths, select=args.select, ignore=args.ignore
            )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or Path(DEFAULT_BASELINE)
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"wrote {baseline_path} with {len(findings)} accepted "
            f"finding(s)"
        )
        return 0

    matched = 0
    if not args.no_baseline and baseline_path.exists():
        try:
            accepted = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        findings, matched = apply_baseline(findings, accepted)

    if args.format == "json":
        print(format_json(findings))
    elif args.format == "github":
        if findings:
            print(format_github(findings))
    elif findings:
        print(format_text(findings))

    if args.format in ("text", "github"):
        summary = f"{len(findings)} finding(s)"
        if matched:
            summary += f" ({matched} baselined)"
        if stats:
            summary += (
                f"; {stats['files']} file(s) analyzed in "
                f"{stats['elapsed_s']:.2f}s "
                f"({stats['reused']} from index, {stats['parsed']} parsed)"
            )
        print(summary, file=sys.stderr)
    return 1 if findings else 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "rules":
        return _cmd_rules()
    return _cmd_check(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
