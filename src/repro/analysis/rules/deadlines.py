"""RL011 — deadline propagation.

A public operation that accepts a deadline (``deadline`` /
``deadline_s`` / ``deadline_ms`` parameter, or any parameter annotated
with a ``Deadline`` type) promises bounded latency.  That promise is
only as good as the deepest call: a selection or prefetch call made
*without* forwarding the deadline runs to completion regardless,
turning the budget into a lie precisely when the system is overloaded
and the deadline matters most.

This is a project rule: whether the callee even takes a deadline is a
fact about its (usually cross-module) signature.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.registry import ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.findings import Finding
    from repro.analysis.project import ProjectContext


def _short(qual: str) -> str:
    parts = qual.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qual


@register
class DeadlinePropagationRule(ProjectRule):
    id = "RL011"
    name = "deadline-propagation"
    description = (
        "An operation accepting a deadline must forward it into every "
        "call it makes to a deadline-aware callee."
    )

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator["Finding"]:
        for qual, ref in project.functions.items():
            if not ref.info.deadline_param:
                continue
            if ref.module is None or not (
                ref.module == "repro" or ref.module.startswith("repro.")
            ):
                continue
            for call in ref.info.calls:
                if call.passes_deadline:
                    continue
                target = project.resolve_call(call.callee, ref)
                if target is None or target == qual:
                    continue
                tinfo = project.functions[target].info
                if not tinfo.deadline_param:
                    continue
                yield self.project_finding(
                    project, ref.rel, call.line, call.col,
                    f"'{_short(qual)}' accepts "
                    f"'{ref.info.deadline_param}' but calls "
                    f"'{_short(target)}' without forwarding it — the "
                    "callee runs unbounded while the caller's budget "
                    "expires",
                )
