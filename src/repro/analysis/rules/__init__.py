"""Rule modules for ``repro.analysis``.

Importing this package registers every rule with
:mod:`repro.analysis.registry` — the imports below exist for that side
effect.
"""

from repro.analysis.rules import (  # noqa: F401  (registration side effect)
    annotations,
    async_safety,
    deadlines,
    determinism,
    exceptions,
    intervals,
    lifecycle,
    locks,
    names,
    naming,
    spans,
)
