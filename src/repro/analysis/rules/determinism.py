"""RL002 — determinism of the selection-critical packages.

The paper's evaluation (and this repo's parallel-equivalence suite)
relies on ``Sim(O, S)`` objective values being bit-identical across
runs and worker counts.  Inside the packages that compute selections —
``repro.core``, ``repro.similarity``, ``repro.index``,
``repro.baselines`` — wall-clock reads and unseeded randomness are the
two ways nondeterminism leaks in, so both are flagged:

* ``time.time`` / ``time.perf_counter`` / ``time.monotonic`` /
  ``datetime.now`` reads (timing belongs in the allowlisted timing
  modules, or behind a justified suppression when it only feeds
  reporting fields like ``elapsed_s``);
* the legacy global ``np.random.*`` API and stdlib ``random.*`` (both
  share hidden global state);
* ``np.random.default_rng()`` with no seed argument.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import receiver_text

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import FileContext
    from repro.analysis.findings import Finding

SCOPED_PACKAGES = (
    "repro.core", "repro.similarity", "repro.index", "repro.baselines",
)

#: Modules exempt from the clock checks: they exist to measure time.
TIMING_ALLOWLIST = {
    "repro.experiments.timing",
    "repro.robustness.budget",
    "repro.metrics.registry",
    "repro.trace.tracer",
}

CLOCK_ATTRS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
}
DATETIME_ATTRS = {"now", "utcnow", "today"}
#: ``np.random`` members that are *not* the legacy global-state API.
NP_RANDOM_OK = {"default_rng", "Generator", "SeedSequence", "PCG64", "BitGenerator"}


def _np_random_member(call: ast.Call) -> str | None:
    """``np.random.<member>`` / ``numpy.random.<member>`` call name."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if (
        isinstance(value, ast.Attribute)
        and value.attr == "random"
        and isinstance(value.value, ast.Name)
        and value.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


@register
class DeterminismRule(Rule):
    id = "RL002"
    name = "determinism"
    description = (
        "No wall-clock reads or unseeded/global randomness inside the "
        "deterministic selection packages."
    )

    def applies_to(self, ctx: "FileContext") -> bool:
        if ctx.module in TIMING_ALLOWLIST:
            return False
        return ctx.in_module(*SCOPED_PACKAGES)

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._check_call(ctx, node)
            if finding is not None:
                yield finding

    def _check_call(
        self, ctx: "FileContext", call: ast.Call
    ) -> "Finding | None":
        func = call.func
        line, col = call.lineno, call.col_offset + 1

        member = _np_random_member(call)
        if member is not None:
            if member == "default_rng" and not (call.args or call.keywords):
                return self.finding(
                    ctx, line, col,
                    "np.random.default_rng() without a seed is "
                    "nondeterministic; thread an explicit seed or "
                    "Generator through the caller",
                )
            if member not in NP_RANDOM_OK:
                return self.finding(
                    ctx, line, col,
                    f"legacy global-state RNG np.random.{member} is "
                    f"forbidden here; use a seeded "
                    f"np.random.default_rng Generator",
                )
            return None

        if isinstance(func, ast.Name):
            if func.id == "default_rng" and not (call.args or call.keywords):
                return self.finding(
                    ctx, line, col,
                    "default_rng() without a seed is nondeterministic; "
                    "thread an explicit seed or Generator through",
                )
            if func.id in ("perf_counter", "monotonic"):
                return self.finding(
                    ctx, line, col,
                    f"clock read {func.id}() in a deterministic "
                    f"package; move timing to an allowlisted timing "
                    f"module or justify a suppression",
                )
            return None

        if not isinstance(func, ast.Attribute):
            return None
        recv = receiver_text(call)

        if recv == "time" and func.attr in CLOCK_ATTRS:
            return self.finding(
                ctx, line, col,
                f"clock read time.{func.attr}() in a deterministic "
                f"package; move timing to an allowlisted timing module "
                f"or justify a suppression",
            )
        if func.attr in DATETIME_ATTRS and (
            "datetime" in recv or recv == "date"
        ):
            return self.finding(
                ctx, line, col,
                f"wall-clock read {recv}.{func.attr}() in a "
                f"deterministic package",
            )
        if recv == "random":
            return self.finding(
                ctx, line, col,
                f"stdlib random.{func.attr} uses hidden global state; "
                f"use a seeded np.random.default_rng Generator",
            )
        return None
