"""RL009 — resource lifecycle.

``WorkerPool`` owns OS processes and shared-memory segments,
``TileStore`` owns a pool, ``StreamingSelector`` owns per-session
state, ``SharedMemory`` leaks a ``/dev/shm`` segment until ``unlink``.
Creating one of these and dropping it on the floor is a slow leak that
only shows up under multi-session load (PR 6's ``close_all`` exists
precisely because of this).  Every creation of a closeable class must
be discharged on the creating path: context-managed (``with``),
returned to the caller, stored on an owner, handed to another call, or
explicitly closed.

This is a project rule: "closeable" is a property of the *class*
(does it or a base define ``close``/``aclose``/``shutdown``/
``__exit__``?), which usually lives in another module than the
creation site.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.registry import ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.findings import Finding
    from repro.analysis.project import ProjectContext


@register
class ResourceLifecycleRule(ProjectRule):
    id = "RL009"
    name = "resource-lifecycle"
    description = (
        "Creations of closeable resource classes (WorkerPool, "
        "SharedMemory, TileStore, ...) must be closed on all paths: "
        "'with', try/finally, return, or handoff to a close()-bearing "
        "owner."
    )

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator["Finding"]:
        for ref in project.functions.values():
            # Test helpers create short-lived fixtures with finalizer
            # patterns the summarizer cannot see; scope to the package.
            if ref.module is None or not (
                ref.module == "repro" or ref.module.startswith("repro.")
            ):
                continue
            for creation in ref.info.creations:
                if creation.discharged:
                    continue
                if project.closeable_class(creation.cls) is None:
                    continue
                leaf = creation.cls.rpartition(".")[2]
                bound = f" (bound to '{creation.var}')" if creation.var else ""
                yield self.project_finding(
                    project, ref.rel, creation.line, creation.col,
                    f"'{leaf}' created here{bound} is never closed on "
                    "this path; use 'with', try/finally, or hand it to "
                    "an owner that closes it",
                )
