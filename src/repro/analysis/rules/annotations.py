"""RL006 — public-API type annotations in the algorithm packages.

``repro.core`` and ``repro.similarity`` are the surface other layers
(and downstream users reproducing the paper's tables) program against;
their public callables must be fully annotated so mypy actually checks
call sites instead of inferring ``Any``.  Public means: module-level
functions and methods of public classes whose name does not start with
``_`` — plus ``__init__``/``__call__``, whose signatures *are* the
class's public API.  Other dunders and private helpers are exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import FileContext
    from repro.analysis.findings import Finding

SCOPED_PACKAGES = ("repro.core", "repro.similarity")
PUBLIC_DUNDERS = {"__init__", "__call__"}


def _is_public(name: str) -> bool:
    if name in PUBLIC_DUNDERS:
        return True
    return not name.startswith("_")


def _missing_annotations(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, is_method: bool
) -> list[str]:
    missing: list[str] = []
    args = fn.args
    positional = args.posonlyargs + args.args
    for index, arg in enumerate(positional):
        if is_method and index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if fn.returns is None:
        missing.append("return")
    return missing


@register
class PublicApiAnnotationsRule(Rule):
    id = "RL006"
    name = "public-api-annotations"
    description = (
        "Public functions/methods in repro.core and repro.similarity "
        "must annotate every parameter and the return type."
    )

    def applies_to(self, ctx: "FileContext") -> bool:
        return ctx.in_module(*SCOPED_PACKAGES)

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_fn(ctx, stmt, is_method=False)
            elif isinstance(stmt, ast.ClassDef) and _is_public(stmt.name):
                for sub in stmt.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        yield from self._check_fn(ctx, sub, is_method=True)

    def _check_fn(
        self,
        ctx: "FileContext",
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        is_method: bool,
    ) -> Iterator["Finding"]:
        if not _is_public(fn.name):
            return
        missing = _missing_annotations(fn, is_method)
        if not missing:
            return
        yield self.finding(
            ctx, fn.lineno, fn.col_offset + 1,
            f"public callable '{fn.name}' is missing annotations for: "
            f"{', '.join(missing)}",
        )
