"""RL005 — broad exception handler policy.

``except Exception`` (or bare ``except``) is how the response path
survives a broken index or a failing prefetch builder — but a broad
handler that silently swallows is also how real bugs disappear.  The
policy, matching the repo's existing degradation sites: every broad
handler must do at least one of

* **re-raise** (``raise`` somewhere in the handler body),
* **record** the event — call something named ``record*`` (e.g.
  ``breaker.record_failure``) or a metrics ``incr``/``observe``,
* carry a justified ``# repro-lint: disable=RL005 -- ...`` suppression
  on the ``except`` line for the genuinely best-effort cases
  (``__del__`` cleanup, JSON coercion fallbacks).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import is_broad_handler

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import FileContext
    from repro.analysis.findings import Finding

RECORDING_ATTRS = {"incr", "observe"}


def _records_outcome(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or records a metric/event."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name is None:
                continue
            bare = name.lstrip("_")
            if bare in RECORDING_ATTRS or bare.startswith("record"):
                return True
    return False


@register
class ExceptionPolicyRule(Rule):
    id = "RL005"
    name = "exception-policy"
    description = (
        "Broad 'except Exception' handlers must re-raise, record a "
        "metric, or carry a justified RL005 suppression."
    )

    def applies_to(self, ctx: "FileContext") -> bool:
        # Tests legitimately catch broadly around assertions.
        return ctx.in_module("repro")

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not is_broad_handler(node):
                continue
            if _records_outcome(node):
                continue
            caught = "bare except" if node.type is None else (
                f"except {ast.unparse(node.type)}"
            )
            yield self.finding(
                ctx, node.lineno, node.col_offset + 1,
                f"broad handler ({caught}) neither re-raises nor "
                f"records the failure; narrow the type, record a "
                f"metric, or add a justified RL005 suppression",
            )
