"""RL007 / RL008 — event-loop safety.

RL007 (project rule): a blocking call — ``time.sleep``, sync lock
acquire, pool submit/teardown, file or socket IO — must not be
reachable from an ``async def`` without an ``asyncio.to_thread`` /
executor hop in between.  One armed fault-injection latency or one
cold ``WorkerPool.warm()`` on the loop stalls *every* concurrent
session, which is exactly the multi-user interference the admission
controller exists to prevent.

RL008 (per-file rule): a ``threading`` lock held across an ``await``
serializes the event loop behind lock holders and deadlocks outright
if the awaited task needs the same lock (the PR 4 breaker
check-then-call race generalized).  Async code must use
``asyncio.Lock`` — or release the sync lock before awaiting.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.registry import ProjectRule, Rule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import FileContext
    from repro.analysis.findings import Finding
    from repro.analysis.project import CallSite, FunctionRef, ProjectContext

#: Fully-qualified callables that block the calling thread.
BLOCKING_EXACT = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_output",
    "subprocess.check_call",
    "subprocess.Popen",
    "socket.create_connection",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
    "open",
}

#: Path-object IO attrs (``p.read_text()`` hits the disk).
_BLOCKING_IO_ATTRS = {"read_text", "write_text", "read_bytes",
                      "write_bytes"}

#: Pool/executor lifecycle+dispatch attrs that block or stall the loop.
_POOL_BLOCKING_ATTRS = {"submit", "map", "shutdown", "join", "result",
                        "warm"}
_POOL_RECEIVER_TOKENS = ("pool", "executor", "_threads", "_processes",
                         "workers", "worker", "future", "fut", "thread",
                         "process", "proc")


def _short(qual: str) -> str:
    """Trailing segments of a global qualname for compact messages."""
    parts = qual.split(".")
    return ".".join(parts[-3:]) if len(parts) > 3 else qual


@register
class BlockingCallInAsyncRule(ProjectRule):
    id = "RL007"
    name = "blocking-call-in-async"
    description = (
        "No blocking call (time.sleep, sync lock acquire, pool "
        "submit/teardown, file/socket IO) may be reachable from async "
        "code without an asyncio.to_thread/executor hop."
    )

    def _blocking_reason(
        self,
        project: "ProjectContext",
        ref: "FunctionRef",
        call: "CallSite",
    ) -> str | None:
        callee = call.callee
        if not callee:
            return None
        if call.awaited:
            # An awaited expression is a coroutine/future, not a sync
            # block; any blocking inside the awaited callee is reached
            # by taint propagation and flagged at its own site.
            return None
        if callee in BLOCKING_EXACT:
            return f"'{callee}' blocks the calling thread"
        receiver, _, attr = callee.rpartition(".")
        lowered = receiver.lower()
        if attr in _BLOCKING_IO_ATTRS and receiver:
            return f"'{callee}' performs synchronous file IO"
        if attr == "acquire" and receiver:
            if lowered.startswith("asyncio"):
                return None
            if receiver.startswith("self.") and "." not in receiver[5:]:
                kind = project.lock_kind_of(ref.cls_qual, receiver[5:])
                if kind == "thread":
                    return f"'{callee}' acquires a threading lock"
                if kind == "async":
                    return None
            if "lock" in lowered or "sem" in lowered:
                return f"'{callee}' acquires a sync primitive"
            return None
        if attr in _POOL_BLOCKING_ATTRS and any(
            token in lowered for token in _POOL_RECEIVER_TOKENS
        ):
            return (
                f"'{callee}' dispatches to / tears down a worker pool "
                "synchronously"
            )
        return None

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator["Finding"]:
        for qual, ref in project.functions.items():
            if not project.is_tainted(qual):
                continue
            for call in ref.info.calls:
                reason = self._blocking_reason(project, ref, call)
                if reason is None:
                    continue
                chain = project.taint_chain(qual)
                via = " -> ".join(_short(q) for q in chain[-4:])
                yield self.project_finding(
                    project, ref.rel, call.line, call.col,
                    f"{reason} but may run on the event loop "
                    f"(async-reachable via {via}); await an async "
                    "equivalent or hop via asyncio.to_thread",
                )


def _thread_lock_rhs(value: ast.expr) -> bool:
    """Whether an assignment RHS constructs a ``threading`` lock."""
    if not isinstance(value, ast.Call):
        return False
    factories = {"Lock", "RLock", "Condition", "Semaphore",
                 "BoundedSemaphore"}
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr in factories:
        return (isinstance(func.value, ast.Name)
                and func.value.id != "asyncio")
    # ``from threading import Lock`` style: asyncio primitives are
    # conventionally module-qualified, so a bare name is a thread lock.
    return isinstance(func, ast.Name) and func.id in factories


def _class_thread_locks(node: ast.ClassDef) -> set[str]:
    """``self.X`` attrs assigned a threading lock in this class body."""
    attrs: set[str] = set()
    for item in ast.walk(node):
        if isinstance(item, ast.Assign) and _thread_lock_rhs(item.value):
            for target in item.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
    return attrs


def _own_nodes(body: list[ast.stmt]) -> list[ast.AST]:
    """Nodes of ``body`` excluding nested function/lambda subtrees."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


@register
class LockHeldAcrossAwaitRule(Rule):
    id = "RL008"
    name = "lock-held-across-await"
    description = (
        "A threading lock must not be held across an await (and never "
        "used with 'async with'): the loop serializes behind the "
        "holder, or deadlocks if the awaited task wants the lock."
    )

    def _is_thread_lock(
        self, expr: ast.expr, class_locks: set[str], local_locks: set[str]
    ) -> str | None:
        """Display text when ``expr`` is a known threading lock."""
        if _thread_lock_rhs(expr) and not (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and isinstance(expr.func.value, ast.Name)
            and expr.func.value.id == "asyncio"
        ):
            try:
                return ast.unparse(expr)
            except (ValueError, AttributeError):  # pragma: no cover
                return None
        if isinstance(expr, ast.Name) and expr.id in local_locks:
            return expr.id
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in class_locks
        ):
            return f"self.{expr.attr}"
        return None

    def _check_async_def(
        self,
        ctx: "FileContext",
        node: ast.AsyncFunctionDef,
        class_locks: set[str],
    ) -> Iterator["Finding"]:
        own = _own_nodes(node.body)
        local_locks = {
            target.id
            for item in own
            if isinstance(item, ast.Assign) and _thread_lock_rhs(item.value)
            for target in item.targets
            if isinstance(target, ast.Name)
        }
        for item in own:
            if isinstance(item, ast.AsyncWith):
                for with_item in item.items:
                    lock = self._is_thread_lock(
                        with_item.context_expr, class_locks, local_locks
                    )
                    if lock is not None:
                        yield self.finding(
                            ctx, item.lineno, item.col_offset + 1,
                            f"'async with {lock}' on a threading lock: "
                            "threading locks are not async context "
                            "managers; use asyncio.Lock",
                        )
            elif isinstance(item, ast.With):
                held = [
                    lock for with_item in item.items
                    if (lock := self._is_thread_lock(
                        with_item.context_expr, class_locks, local_locks
                    )) is not None
                ]
                if held and any(
                    isinstance(sub, ast.Await)
                    for sub in _own_nodes(item.body)
                ):
                    yield self.finding(
                        ctx, item.lineno, item.col_offset + 1,
                        f"threading lock '{held[0]}' is held across an "
                        "await; the event loop serializes behind the "
                        "holder (use asyncio.Lock, or release before "
                        "awaiting)",
                    )

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        # Map every async def to its enclosing class's thread locks.
        pending: list[tuple[ast.AsyncFunctionDef, set[str]]] = []
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                locks = _class_thread_locks(node)
                for sub in ast.walk(node):
                    if isinstance(sub, ast.AsyncFunctionDef):
                        pending.append((sub, locks))
            else:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.AsyncFunctionDef):
                        pending.append((sub, set()))
        for async_def, locks in pending:
            yield from self._check_async_def(ctx, async_def, locks)
