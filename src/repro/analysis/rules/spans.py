"""RL003 — span hygiene.

``tracer.span(...)`` returns a context manager whose ``__exit__``
finalizes the span's end timestamp and feeds the metrics registry.  A
span call whose result is dropped (bare expression statement) or parked
in a variable never closes: the trace tree holds a zero-duration span
forever and, worse, nested spans attach to a parent that never exits.
Every span call must therefore be the context expression of a ``with``
statement (or be handed to ``ExitStack.enter_context``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import attr_name, receiver_text

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import FileContext
    from repro.analysis.findings import Finding


def _is_span_call(call: ast.Call) -> bool:
    return attr_name(call) == "span" and "tracer" in receiver_text(call)


@register
class SpanHygieneRule(Rule):
    id = "RL003"
    name = "span-hygiene"
    description = (
        "tracer.span(...) results must be context-managed "
        "('with tracer.span(...)'), never dropped or parked."
    )

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        managed: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        managed.add(id(item.context_expr))
            elif isinstance(node, ast.Call):
                # ExitStack.enter_context(tracer.span(...)) manages too.
                if attr_name(node) == "enter_context":
                    for arg in node.args:
                        if isinstance(arg, ast.Call):
                            managed.add(id(arg))
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and _is_span_call(node)
                and id(node) not in managed
            ):
                yield self.finding(
                    ctx, node.lineno, node.col_offset + 1,
                    "tracer.span(...) result is not context-managed; "
                    "the span never finishes (use 'with tracer.span"
                    "(...)' or ExitStack.enter_context)",
                )
