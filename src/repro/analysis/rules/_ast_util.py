"""Small shared AST helpers for the rule modules."""

from __future__ import annotations

import ast

BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def receiver_text(call: ast.Call) -> str:
    """Lower-cased source of a call's receiver (``''`` for plain names).

    ``self.tracer.span(...)`` → ``"self.tracer"``; used for the cheap
    "does this look like a tracer/metrics object" heuristics.
    """
    func = call.func
    if isinstance(func, ast.Attribute):
        try:
            return ast.unparse(func.value).lower()
        except (ValueError, AttributeError):  # pragma: no cover
            return ""  # malformed synthetic AST
    return ""


def attr_name(call: ast.Call) -> str | None:
    """The attribute being called (``span`` in ``x.y.span(...)``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def first_str_arg(call: ast.Call) -> str | None:
    """First positional argument when it is a string literal."""
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None


def self_attr_root(node: ast.AST) -> str | None:
    """Root ``self`` attribute of an expression chain, if any.

    ``self._counters[name]`` → ``_counters``; ``self.a.b`` → ``a``;
    anything not rooted at ``self`` → ``None``.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


def is_broad_handler(handler: ast.ExceptHandler) -> bool:
    """Whether a handler catches ``Exception``/``BaseException``/bare."""
    def broad(expr: ast.expr | None) -> bool:
        if expr is None:
            return True
        if isinstance(expr, ast.Name):
            return expr.id in BROAD_EXCEPTIONS
        if isinstance(expr, ast.Tuple):
            return any(broad(el) for el in expr.elts)
        return False

    return broad(handler.type)
