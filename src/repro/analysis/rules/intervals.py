"""RL012 — half-open temporal-interval discipline.

Every temporal window in the system is half-open: ``t0 <= t < t1``
(:meth:`GeoDataset.time_mask`, slider steps, streaming cutoffs).  A
closed upper bound (``t <= t1``) double-counts boundary objects when
adjacent windows tile the timeline — the population of ``[t0, t1]``
and ``[t1, t2]`` overlap at ``t1``, which silently breaks the
exact-population premise behind Lemma 5.1 prefetch bounds.

The rule flags comparisons whose *upper* bound is closed when the
compared quantity looks temporal (``ts``/``t``/``time``/
``timestamp``/``window``/``cutoff`` tokens).  Pure bound-vs-bound
validation (``t0 <= t1``) is deliberately exempt: comparing two
endpoints is ordering, not membership.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import FileContext
    from repro.analysis.findings import Finding

_TEMPORAL_TOKENS = {"t", "t0", "t1", "ts", "time", "times", "timestamp",
                    "timestamps", "cutoff", "window"}
#: Names that are unambiguously a time *coordinate* (not just
#: time-adjacent like ``time_hysteresis`` or ``elapsed_time``).
_STRICT_TEMPORAL = {"t", "t0", "t1", "ts", "timestamp", "timestamps",
                    "cutoff"}
_END_TOKENS = {"t1", "end", "hi", "high", "max", "stop", "until", "upper"}
_START_TOKENS = {"t0", "start", "lo", "low", "min", "begin", "lower"}

_SPLIT = re.compile(r"[_.\[\]()'\" ]+")


def _tokens(node: ast.expr) -> set[str]:
    try:
        text = ast.unparse(node).lower()
    except (ValueError, AttributeError):  # pragma: no cover
        return set()
    return {tok for tok in _SPLIT.split(text) if tok}


def _is_temporal(tokens: set[str]) -> bool:
    return bool(tokens & _TEMPORAL_TOKENS)


def _is_bound(tokens: set[str]) -> bool:
    """Whether an expression names a window endpoint (t0/t_end/...)."""
    return bool(tokens & (_END_TOKENS | _START_TOKENS))


def _is_end(tokens: set[str]) -> bool:
    return bool(tokens & _END_TOKENS)


@register
class HalfOpenIntervalRule(Rule):
    id = "RL012"
    name = "half-open-intervals"
    description = (
        "Temporal window membership must be half-open (t0 <= t < t1); "
        "a closed upper bound (t <= t1) double-counts window "
        "boundaries."
    )

    def applies_to(self, ctx: "FileContext") -> bool:
        return ctx.in_module("repro")

    def _flag(
        self, ctx: "FileContext", node: ast.Compare, upper: ast.expr
    ) -> "Finding":
        try:
            text = ast.unparse(node)
        except (ValueError, AttributeError):  # pragma: no cover
            text = "<comparison>"
        try:
            upper_text = ast.unparse(upper)
        except (ValueError, AttributeError):  # pragma: no cover
            upper_text = "<bound>"
        return self.finding(
            ctx, node.lineno, node.col_offset + 1,
            f"closed temporal upper bound in '{text}': windows are "
            f"half-open [t0, t1) — use '< {upper_text}'",
        )

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            if len(node.ops) == 2 and isinstance(
                node.ops[0], (ast.LtE, ast.Lt)
            ) and isinstance(node.ops[1], ast.LtE):
                # Chained range check ``lo <= x <= hi``: the middle
                # operand is the member, the last is the upper bound.
                # Require either an unambiguous time coordinate or an
                # end-named bound, so scalar validations like
                # ``0.0 <= time_hysteresis <= 1.0`` stay clean.
                middle, upper = _tokens(operands[1]), operands[2]
                strict = bool(middle & _STRICT_TEMPORAL)
                if (
                    (strict or (_is_temporal(middle)
                                and _is_end(_tokens(upper))))
                    and not _is_bound(middle)
                ):
                    yield self._flag(ctx, node, upper)
            elif len(node.ops) == 1:
                left, right = operands
                ltoks, rtoks = _tokens(left), _tokens(right)
                if isinstance(node.ops[0], ast.LtE):
                    member, bound, btoks = left, right, rtoks
                    mtoks = ltoks
                elif isinstance(node.ops[0], ast.GtE):
                    member, bound, btoks = right, left, ltoks
                    mtoks = rtoks
                else:
                    continue
                if (
                    _is_end(btoks)
                    and _is_temporal(mtoks)
                    and not _is_bound(mtoks)
                ):
                    yield self._flag(ctx, node, bound)
