"""RL004 — metric and span naming convention.

Counters, timers, spans, and span events share one namespace surfaced
in ``--metrics`` output, Chrome-trace exports, and the benchmark
regression JSONs.  Names must be dotted lowercase
(``subsystem.measure``, e.g. ``sim.row_hits``, ``session.prefetch``)
so dashboards group by prefix and renames stay greppable.  Only string
*literals* are checked; dynamically built names (``f"session.{op}"``)
are the caller's responsibility.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import (
    attr_name,
    first_str_arg,
    receiver_text,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import FileContext
    from repro.analysis.findings import Finding

NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Always name-checked, whatever the receiver looks like.
ALWAYS_CHECKED = {"incr", "observe", "event", "_incr"}


def _named_call(call: ast.Call) -> bool:
    attr = attr_name(call)
    if attr is None:
        return False
    if attr in ALWAYS_CHECKED:
        return True
    recv = receiver_text(call)
    if attr == "span":
        return "tracer" in recv
    if attr in ("time", "count", "summary", "observations"):
        return "metrics" in recv or "registry" in recv
    return False


@register
class NamingConventionRule(Rule):
    id = "RL004"
    name = "metric-span-naming"
    description = (
        "Literal metric/span/event names must be dotted lowercase "
        "(^[a-z][a-z0-9_]*(\\.[a-z0-9_]+)+$)."
    )

    def applies_to(self, ctx: "FileContext") -> bool:
        # Library code only: tests may exercise the registry with
        # throwaway names.
        return ctx.in_module("repro")

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not _named_call(node):
                continue
            name = first_str_arg(node)
            if name is None or NAME_RE.match(name):
                continue
            yield self.finding(
                ctx, node.lineno, node.col_offset + 1,
                f"metric/span name {name!r} violates the dotted-"
                f"lowercase convention 'subsystem.measure' "
                f"({NAME_RE.pattern})",
            )
