"""RL010 — name-registry consistency.

Metric and fault-point names are stringly-typed: a typo'd dotted name
in ``metrics.count("servce.shed")`` or ``injector.arm("index.qurey")``
does not crash — it silently reads zero or arms a point nothing ever
checks, which is the worst failure mode for observability code.  The
project pass harvests every *declared* name (literal first args of
``incr``/``observe``/``event``/``set_gauge``/``adjust_gauge``/
``span``/``time`` writes, plus f-string literal prefixes, plus
module-level fault-point constants in ``repro.robustness``) and this
rule validates every literal *read* against that registry.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.registry import ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.findings import Finding
    from repro.analysis.project import ProjectContext


@register
class NameRegistryRule(ProjectRule):
    id = "RL010"
    name = "name-registry"
    description = (
        "Literal metric/fault-point names that are read (count, gauge, "
        "observations, arm, fires, ...) must match a name declared by "
        "some write or fault-point constant."
    )

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator["Finding"]:
        declared = project.declared_names
        prefixes = project.declared_prefixes
        for rel, summary in project.summaries.items():
            for use in summary.name_uses:
                if use.kind == "metric":
                    if use.name in declared:
                        continue
                    if any(
                        use.name == p or use.name.startswith(p + ".")
                        for p in prefixes
                    ):
                        continue
                    yield self.project_finding(
                        project, rel, use.line, use.col,
                        f"metric name '{use.name}' is read here but "
                        "never declared by any incr/observe/set_gauge/"
                        "event write — likely a typo'd dotted name "
                        "that silently reads zero",
                    )
                elif use.kind == "fault":
                    if use.name in project.fault_names:
                        continue
                    yield self.project_finding(
                        project, rel, use.line, use.col,
                        f"fault point '{use.name}' is not a declared "
                        "fault-point constant in repro.robustness — "
                        "arming it would inject into nothing",
                    )
