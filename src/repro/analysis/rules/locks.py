"""RL001 — lock discipline for lock-owning classes.

A class that creates a ``threading.Lock``/``RLock`` — or an
``asyncio.Lock``, which the service layer uses to serialize per-session
access across concurrently scheduled coroutines — on ``self`` (the
:class:`~repro.robustness.breaker.CircuitBreaker`,
:class:`~repro.metrics.MetricsRegistry`,
:class:`~repro.trace.tracer.Tracer` pattern) is declaring its instance
state shared between threads (or tasks).  Every attribute such a class
mutates both *under* ``with self._lock`` / ``async with self._lock``
and *outside* it is a data race by construction — exactly the pre-PR-4
breaker bug where ``state`` reads advanced the automaton unlocked while
``record_failure`` mutated it locked.

Conventions the rule understands:

* ``__init__`` mutations are exempt (no sharing before construction
  completes);
* methods named ``*_locked`` are helpers documented as called with the
  lock held, so their mutations count as locked;
* the lock attributes themselves are not tracked;
* ``async with self._lock`` (``asyncio.Lock``) counts exactly like the
  synchronous form, and ``async def`` methods are scanned like plain
  ones.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.analysis.registry import Rule, register
from repro.analysis.rules._ast_util import self_attr_root

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import FileContext
    from repro.analysis.findings import Finding

#: Method calls that mutate their receiver in place.
MUTATORS = {
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "pop", "popitem", "remove", "setdefault", "update",
}

LOCK_FACTORIES = {"Lock", "RLock"}


@dataclass
class _MutationSites:
    locked: list[tuple[int, str]] = field(default_factory=list)
    unlocked: list[tuple[int, str]] = field(default_factory=list)


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes assigned a ``threading.Lock()``/``RLock()``."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name not in LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = self_attr_root(target)
            if attr is not None:
                locks.add(attr)
    return locks


def _is_lock_item(item: ast.withitem, locks: set[str]) -> bool:
    expr = item.context_expr
    if isinstance(expr, ast.Call):  # with self._lock.acquire_timeout(...)
        expr = expr.func
    attr = self_attr_root(expr)
    return attr in locks


class _MethodScanner(ast.NodeVisitor):
    """Collect per-attribute mutation sites with lock-held state."""

    def __init__(self, locks: set[str], method: str, held: bool):
        self.locks = locks
        self.method = method
        self.held = held
        self.sites: dict[str, _MutationSites] = {}

    def _record(self, attr: str | None, line: int) -> None:
        if attr is None or attr in self.locks:
            return
        bucket = self.sites.setdefault(attr, _MutationSites())
        target = bucket.locked if self.held else bucket.unlocked
        target.append((line, self.method))

    def visit_With(self, node: ast.With) -> None:
        if any(_is_lock_item(item, self.locks) for item in node.items):
            prev, self.held = self.held, True
            for stmt in node.body:
                self.visit(stmt)
            self.held = prev
        else:
            self.generic_visit(node)

    # ``async with self._lock`` (asyncio.Lock) is the same discipline;
    # ast.AsyncWith shares ast.With's shape, so the handler is reused.
    visit_AsyncWith = visit_With

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(self_attr_root(target), node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(self_attr_root(node.target), node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(self_attr_root(node.target), node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
            self._record(self_attr_root(func.value), node.lineno)
        self.generic_visit(node)


@register
class LockDisciplineRule(Rule):
    id = "RL001"
    name = "lock-discipline"
    description = (
        "Attributes of a Lock-owning class must not be mutated both "
        "under and outside 'with self._lock'."
    )

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: "FileContext", cls: ast.ClassDef
    ) -> Iterator["Finding"]:
        locks = _lock_attrs(cls)
        if not locks:
            return
        lock_name = sorted(locks)[0]
        merged: dict[str, _MutationSites] = {}
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in ("__init__", "__new__"):
                continue
            scanner = _MethodScanner(
                locks, stmt.name, held=stmt.name.endswith("_locked")
            )
            for inner in stmt.body:
                scanner.visit(inner)
            for attr, sites in scanner.sites.items():
                bucket = merged.setdefault(attr, _MutationSites())
                bucket.locked.extend(sites.locked)
                bucket.unlocked.extend(sites.unlocked)
        for attr, sites in sorted(merged.items()):
            if not (sites.locked and sites.unlocked):
                continue
            locked_line = sites.locked[0][0]
            for line, method in sites.unlocked:
                yield self.finding(
                    ctx, line, 1,
                    f"attribute '{attr}' of lock-owning class "
                    f"'{cls.name}' is mutated in '{method}' without "
                    f"'with self.{lock_name}' but under the lock "
                    f"elsewhere (e.g. line {locked_line}); hold the "
                    f"lock or rename the helper '*_locked'",
                )
