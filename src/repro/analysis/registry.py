"""Rule registry for ``repro.analysis``.

Rules self-register via the :func:`register` decorator at import time
(:mod:`repro.analysis.rules` imports every rule module for the side
effect).  The CLI's ``--select`` / ``--ignore`` resolve against this
registry, so an unknown rule id is a usage error rather than a silent
no-op.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import FileContext
    from repro.analysis.findings import Finding
    from repro.analysis.project import ProjectContext

#: Reserved id for analyzer meta-findings (unparsable file, malformed
#: suppression comment).  Not a registered rule: it cannot be selected,
#: ignored, suppressed, or baselined away.
META_RULE = "RL000"


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set :attr:`id` (``RLxxx``), :attr:`name` (short slug)
    and :attr:`description`, and implement :meth:`check`.  Scoping —
    which files a rule even looks at — lives in :meth:`applies_to` so
    the engine can report per-rule coverage honestly.
    """

    id: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, ctx: "FileContext") -> bool:
        """Whether this rule inspects ``ctx`` at all (default: yes)."""
        return True

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        """Yield findings for one parsed file."""
        raise NotImplementedError

    def finding(
        self, ctx: "FileContext", line: int, col: int, message: str
    ) -> "Finding":
        """Build a :class:`Finding` carrying the offending line text."""
        from repro.analysis.findings import Finding

        text = ""
        if 1 <= line <= len(ctx.lines):
            text = ctx.lines[line - 1].strip()
        return Finding(
            rule=self.id,
            path=ctx.rel,
            line=line,
            col=col,
            message=message,
            line_text=text,
        )


class ProjectRule(Rule):
    """Base class for rules that need the whole-package view.

    A project rule sees the :class:`~repro.analysis.project.ProjectContext`
    — call graph, async taint, declared-name registry, resource-class
    set — instead of one file at a time.  Its per-file :meth:`check` is
    a no-op so project rules are silently inert outside ``--project``
    mode (the cross-module facts they test simply do not exist there);
    the engine invokes :meth:`check_project` once after every file has
    been summarized.  Inline suppressions still apply: the engine drops
    a project finding when the *finding's* file carries a justified
    directive on that line.
    """

    def check(self, ctx: "FileContext") -> Iterator["Finding"]:
        return iter(())

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator["Finding"]:
        """Yield findings computed over the whole project."""
        raise NotImplementedError

    def project_finding(
        self,
        project: "ProjectContext",
        rel: str,
        line: int,
        col: int,
        message: str,
    ) -> "Finding":
        """Build a :class:`Finding` resolving line text via the project."""
        from repro.analysis.findings import Finding

        return Finding(
            rule=self.id,
            path=rel,
            line=line,
            col=col,
            message=message,
            line_text=project.line_text(rel, line),
        )


_RULES: dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one rule instance to the registry."""
    if not cls.id or not cls.id.startswith("RL"):
        raise ValueError(f"rule id must look like RLxxx, got {cls.id!r}")
    if cls.id == META_RULE:
        raise ValueError(f"{META_RULE} is reserved for analyzer meta-findings")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    _RULES[cls.id] = cls()
    return cls


def all_rules() -> dict[str, Rule]:
    """Registered rules by id (import-ordered copy)."""
    from repro.analysis import rules  # noqa: F401  (registration side effect)

    return dict(_RULES)


def resolve_rules(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> list[Rule]:
    """Rules to run after ``--select`` / ``--ignore`` filtering.

    Raises ``ValueError`` on unknown ids so typos fail loudly.
    """
    rules = all_rules()
    for rid in (select or []) + (ignore or []):
        if rid not in rules:
            known = ", ".join(sorted(rules))
            raise ValueError(f"unknown rule id {rid!r} (known: {known})")
    chosen = list(select) if select else sorted(rules)
    return [rules[rid] for rid in chosen if rid not in set(ignore or [])]
