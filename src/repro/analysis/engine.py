"""File walking and rule execution for ``repro.analysis``.

The engine parses each ``.py`` file once, hands the shared
:class:`FileContext` (source, AST, dotted module name, suppression
index) to every selected rule, then post-processes raw findings:

1. justified inline suppressions drop their findings;
2. malformed suppressions become ``RL000`` meta-findings;
3. the baseline (if any) grandfathers pre-existing debt.

Rules never read files or apply suppressions themselves, which keeps
them small enough to test against string fixtures via
:func:`check_source`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding
from repro.analysis.registry import META_RULE, Rule, resolve_rules
from repro.analysis.suppressions import SuppressionIndex, parse_suppressions


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: Path
    rel: str
    module: str | None
    source: str
    tree: ast.Module
    lines: list[str]
    suppressions: SuppressionIndex

    def in_module(self, *prefixes: str) -> bool:
        """Whether this file's dotted module sits under any prefix."""
        if self.module is None:
            return False
        return any(
            self.module == p or self.module.startswith(p + ".")
            for p in prefixes
        )


def module_name_for(rel: str) -> str | None:
    """Dotted module for a repo-relative path (``None`` outside src).

    ``src/repro/core/greedy.py`` → ``repro.core.greedy``;
    ``tests/test_x.py`` and other non-``src`` files map to ``None`` so
    module-scoped rules skip them.
    """
    parts = Path(rel).parts
    if "src" not in parts:
        return None
    idx = parts.index("src")
    dotted = list(parts[idx + 1 :])
    if not dotted or not dotted[-1].endswith(".py"):
        return None
    dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted) if dotted else None


def build_context(path: Path, root: Path | None = None) -> FileContext | None:
    """Parse one file; ``None`` with no context if it cannot be read."""
    root = root or Path.cwd()
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=path,
        rel=rel,
        module=module_name_for(rel),
        source=source,
        tree=tree,
        lines=source.splitlines(),
        suppressions=parse_suppressions(source),
    )


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                seen.setdefault(sub, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return list(seen)


def _meta_finding(rel: str, line: int, message: str, text: str) -> Finding:
    return Finding(
        rule=META_RULE, path=rel, line=line, col=1,
        message=message, line_text=text,
    )


def check_context(ctx: FileContext, rules: list[Rule]) -> list[Finding]:
    """Run ``rules`` over one parsed file, applying suppressions."""
    findings: list[Finding] = []
    for line, message in ctx.suppressions.malformed:
        text = ctx.lines[line - 1].strip() if line <= len(ctx.lines) else ""
        findings.append(_meta_finding(ctx.rel, line, message, text))
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressions.covers(finding.line, finding.rule):
                continue
            findings.append(finding)
    return findings


def check_source(
    source: str,
    rules: list[Rule] | None = None,
    rel: str = "src/repro/core/_fixture.py",
) -> list[Finding]:
    """Analyze a source string — the unit-test entry point.

    ``rel`` controls the synthetic path (and therefore the module
    scoping rules see); the default plants fixtures inside
    ``repro.core`` where every rule is active.
    """
    ctx = FileContext(
        path=Path(rel),
        rel=rel,
        module=module_name_for(rel),
        source=source,
        tree=ast.parse(source),
        lines=source.splitlines(),
        suppressions=parse_suppressions(source),
    )
    return check_context(ctx, rules if rules is not None else resolve_rules())


def check_paths(
    paths: list[Path],
    select: list[str] | None = None,
    ignore: list[str] | None = None,
    root: Path | None = None,
    project: bool = False,
    index_path: Path | None = None,
    stats: dict | None = None,
) -> list[Finding]:
    """Analyze files/directories; parse failures become RL000.

    With ``project=True`` the whole-package pass runs instead: every
    file is summarized, the cross-module :class:`ProjectContext` is
    built, and :class:`~repro.analysis.registry.ProjectRule` instances
    fire (they are inert per-file).  ``index_path`` caches summaries
    across runs; ``stats`` (a dict) receives file/reuse/elapsed counts.
    """
    if project:
        # Imported lazily: project.py builds on this module.
        from repro.analysis.project import check_project

        return check_project(
            paths, select=select, ignore=ignore, root=root,
            index_path=index_path, stats=stats,
        )
    rules = resolve_rules(select, ignore)
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            ctx = build_context(path, root=root)
        except (SyntaxError, UnicodeDecodeError) as exc:
            rel = path.as_posix()
            line = getattr(exc, "lineno", None) or 1
            findings.append(
                _meta_finding(rel, line, f"cannot parse file: {exc}", "")
            )
            continue
        if ctx is not None:
            findings.extend(check_context(ctx, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
