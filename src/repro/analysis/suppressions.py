"""Inline suppression comments for ``repro.analysis``.

The accepted form is::

    risky_line()  # repro-lint: disable=RL002 -- why this is exempt

* one or more comma-separated rule ids after ``disable=``;
* a ``--``-separated **justification is required** — a suppression
  without one does not suppress anything and is itself reported as an
  :data:`~repro.analysis.registry.META_RULE` finding, so exemptions
  cannot silently accrete without recorded rationale;
* a comment on its own line applies to the next source line, so long
  signatures and ``with`` headers can carry their exemption above.

Suppressions are parsed from the token stream (never from string
literals), which keeps fixture snippets and docs that *mention* the
marker from being treated as live exemptions.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

MARKER = "repro-lint:"

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<ids>[A-Za-z0-9, ]+?)"
    r"(?:\s+--\s*(?P<why>.*))?\s*$"
)


@dataclass
class Suppression:
    """One parsed ``disable=`` comment."""

    line: int
    rules: set[str]
    justification: str
    #: Source line the suppression covers (the comment's own line, or
    #: the following line for standalone comments).
    applies_to: int = 0

    @property
    def justified(self) -> bool:
        return bool(self.justification.strip())


@dataclass
class SuppressionIndex:
    """Suppressions of one file, keyed by the line they cover."""

    by_line: dict[int, list[Suppression]] = field(default_factory=dict)
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def covers(self, line: int, rule: str) -> bool:
        """Whether a justified suppression exempts ``rule`` at ``line``."""
        for sup in self.by_line.get(line, []):
            if sup.justified and rule in sup.rules:
                return True
        return False


def parse_suppressions(source: str) -> SuppressionIndex:
    """Extract every ``repro-lint: disable=`` comment from ``source``."""
    index = SuppressionIndex()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return index  # the engine reports the parse failure separately
    for tok in tokens:
        if tok.type != tokenize.COMMENT or MARKER not in tok.string:
            continue
        line = tok.start[0]
        match = _DIRECTIVE.match(tok.string.strip())
        if match is None:
            index.malformed.append(
                (line, "malformed repro-lint comment (expected "
                       "'# repro-lint: disable=RLxxx -- justification')")
            )
            continue
        rules = {
            rid.strip() for rid in match.group("ids").split(",") if rid.strip()
        }
        why = (match.group("why") or "").strip()
        sup = Suppression(line=line, rules=rules, justification=why)
        if not rules:
            index.malformed.append(
                (line, "repro-lint suppression names no rule ids")
            )
            continue
        if not sup.justified:
            index.malformed.append(
                (line, "repro-lint suppression is missing its "
                       "'-- justification' text; it is not honored")
            )
            continue
        # A standalone comment (nothing but whitespace before the '#'
        # on its line) shields the next line; trailing comments shield
        # their own.
        standalone = tok.line[: tok.start[1]].strip() == ""
        sup.applies_to = line + 1 if standalone else line
        index.by_line.setdefault(sup.applies_to, []).append(sup)
    return index
