"""Whole-package analysis pass for ``repro.analysis``.

Per-file rules (RL001–RL006) see one AST at a time; the invariants
PRs 6–9 introduced — "no blocking call reachable from the event
loop", "every pool created is closed", "every metric name read was
declared somewhere" — span functions and modules.  This module builds
the shared cross-module view those rules need:

* a :class:`ModuleSummary` per file — functions, classes, call sites,
  resource creations, declared/used observability names — cheap to
  serialize, so summaries cache in ``.repro-lint-index.json`` keyed by
  file mtime+size and only edited files re-parse;
* a :class:`ProjectContext` over all summaries — best-effort call
  graph (import aliases, ``self.attr`` receivers via inferred
  attribute types, MRO walk), **async taint** (an ``async def``, or
  anything transitively reachable from one without an
  ``asyncio.to_thread``/executor hop, runs on the event loop), the
  declared-name registry, and the closeable-class set;
* the :func:`check_project` driver behind ``--project`` mode, which
  runs per-file rules as usual and then every
  :class:`~repro.analysis.registry.ProjectRule` once over the context.

Everything here is *best effort*: an unresolvable call simply adds no
edge, so the analysis under-approximates reachability rather than
guessing.  Rules built on it therefore favor precision (few false
positives) over recall, and real gaps are covered by targeted
receiver-name heuristics in the rules themselves.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.engine import (
    FileContext,
    build_context,
    check_context,
    iter_python_files,
    module_name_for,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    META_RULE,
    ProjectRule,
    Rule,
    all_rules,
    resolve_rules,
)
from repro.analysis.suppressions import SuppressionIndex, parse_suppressions

#: Index-format version; bump on incompatible summary changes.
INDEX_VERSION = 1

#: Default cross-module index file (repo root, like the baseline).
DEFAULT_INDEX = ".repro-lint-index.json"

#: Calls that move work off the event loop: taint does not propagate
#: through them (neither to the callee nor to function refs passed in).
_HOP_CALLEES = {"asyncio.to_thread"}
_HOP_ATTRS = {"run_in_executor"}

#: Receiver tokens that mark ``.submit``/``.map`` as a pool dispatch.
_POOL_TOKENS = ("pool", "executor", "_threads", "_processes", "workers")

#: Constructors whose callable arguments run on another thread/process.
_HOP_CTORS = {"ThreadPoolExecutor", "ProcessPoolExecutor", "Thread",
              "Process", "Timer"}

#: Method names whose presence makes a class a closeable resource.
_CLOSE_METHODS = {"close", "aclose", "close_all", "shutdown",
                  "__exit__", "__aexit__"}

#: Stdlib / third-party resource classes with no in-project definition.
EXTERNAL_CLOSEABLE = {"SharedMemory", "ThreadPoolExecutor",
                      "ProcessPoolExecutor"}

#: Calls on a variable that count as releasing the resource it holds.
_DISCHARGE_CALLS = {"close", "aclose", "close_all", "shutdown", "stop",
                    "terminate", "unlink", "join"}

#: Parameter names that carry a deadline through the call stack.
DEADLINE_PARAMS = {"deadline", "deadline_s", "deadline_ms"}

#: Factory attrs producing thread locks (vs ``asyncio`` primitives).
_THREAD_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "Semaphore",
                          "BoundedSemaphore"}


# ---------------------------------------------------------------------------
# Summary dataclasses (all JSON round-trippable for the index cache)
# ---------------------------------------------------------------------------


@dataclass
class CallSite:
    """One call expression inside a function body."""

    callee: str  #: best-effort dotted text, alias/var-resolved
    line: int
    col: int
    hop: bool = False  #: moves work off the event loop (taint barrier)
    awaited: bool = False  #: direct operand of ``await`` / asyncio.* arg
    refs: list[str] = field(default_factory=list)  #: bare callables passed
    passes_deadline: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {"callee": self.callee, "line": self.line, "col": self.col,
                "hop": self.hop, "awaited": self.awaited, "refs": self.refs,
                "passes_deadline": self.passes_deadline}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "CallSite":
        return cls(callee=d["callee"], line=d["line"], col=d["col"],
                   hop=d["hop"], awaited=d["awaited"], refs=list(d["refs"]),
                   passes_deadline=d["passes_deadline"])


@dataclass
class Creation:
    """One constructor call that may allocate a closeable resource."""

    cls: str  #: alias-resolved constructor text
    line: int
    col: int
    var: str = ""  #: local name it was bound to ("" if none)
    discharged: bool = False
    how: str = ""  #: with / returned / handoff / stored / closed

    def to_dict(self) -> dict[str, Any]:
        return {"cls": self.cls, "line": self.line, "col": self.col,
                "var": self.var, "discharged": self.discharged,
                "how": self.how}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Creation":
        return cls(cls=d["cls"], line=d["line"], col=d["col"],
                   var=d["var"], discharged=d["discharged"], how=d["how"])


@dataclass
class FuncInfo:
    """Summary of one function or method."""

    name: str  #: local qualname: ``f``, ``C.m``, ``f.<locals>.g``
    line: int
    col: int
    is_async: bool = False
    cls: str = ""  #: enclosing class local name ("" for free functions)
    params: list[str] = field(default_factory=list)
    deadline_param: str = ""  #: the deadline-carrying param, if any
    calls: list[CallSite] = field(default_factory=list)
    creations: list[Creation] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "line": self.line, "col": self.col,
                "is_async": self.is_async, "cls": self.cls,
                "params": self.params, "deadline_param": self.deadline_param,
                "calls": [c.to_dict() for c in self.calls],
                "creations": [c.to_dict() for c in self.creations]}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FuncInfo":
        return cls(name=d["name"], line=d["line"], col=d["col"],
                   is_async=d["is_async"], cls=d["cls"],
                   params=list(d["params"]),
                   deadline_param=d["deadline_param"],
                   calls=[CallSite.from_dict(c) for c in d["calls"]],
                   creations=[Creation.from_dict(c) for c in d["creations"]])


@dataclass
class ClassInfo:
    """Summary of one class definition."""

    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)
    attr_types: dict[str, str] = field(default_factory=dict)
    closeable: bool = False  #: defines a close-like method itself
    lock_attrs: list[str] = field(default_factory=list)  #: threading locks
    async_lock_attrs: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "line": self.line, "bases": self.bases,
                "methods": self.methods, "attr_types": self.attr_types,
                "closeable": self.closeable, "lock_attrs": self.lock_attrs,
                "async_lock_attrs": self.async_lock_attrs}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ClassInfo":
        return cls(name=d["name"], line=d["line"], bases=list(d["bases"]),
                   methods=list(d["methods"]),
                   attr_types=dict(d["attr_types"]),
                   closeable=d["closeable"],
                   lock_attrs=list(d["lock_attrs"]),
                   async_lock_attrs=list(d["async_lock_attrs"]))


@dataclass
class NameUse:
    """A literal observability-name read to validate against the registry."""

    kind: str  #: ``metric`` or ``fault``
    name: str
    line: int
    col: int

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name,
                "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "NameUse":
        return cls(kind=d["kind"], name=d["name"],
                   line=d["line"], col=d["col"])


@dataclass
class ModuleSummary:
    """Everything the project pass retains about one parsed file."""

    rel: str
    module: str | None
    functions: dict[str, FuncInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    declared_names: set[str] = field(default_factory=set)
    declared_prefixes: set[str] = field(default_factory=set)
    name_uses: list[NameUse] = field(default_factory=list)
    fault_constants: set[str] = field(default_factory=set)
    #: line → justified-suppression rule ids (applies to project findings)
    suppressed: dict[int, list[str]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rel": self.rel,
            "module": self.module,
            "functions": {k: v.to_dict() for k, v in self.functions.items()},
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
            "declared_names": sorted(self.declared_names),
            "declared_prefixes": sorted(self.declared_prefixes),
            "name_uses": [u.to_dict() for u in self.name_uses],
            "fault_constants": sorted(self.fault_constants),
            "suppressed": {str(k): v for k, v in self.suppressed.items()},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ModuleSummary":
        return cls(
            rel=d["rel"],
            module=d["module"],
            functions={k: FuncInfo.from_dict(v)
                       for k, v in d["functions"].items()},
            classes={k: ClassInfo.from_dict(v)
                     for k, v in d["classes"].items()},
            declared_names=set(d["declared_names"]),
            declared_prefixes=set(d["declared_prefixes"]),
            name_uses=[NameUse.from_dict(u) for u in d["name_uses"]],
            fault_constants=set(d["fault_constants"]),
            suppressed={int(k): list(v)
                        for k, v in d["suppressed"].items()},
        )


# ---------------------------------------------------------------------------
# Summarizer: one parsed file -> ModuleSummary
# ---------------------------------------------------------------------------


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` text for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _looks_like_class(text: str) -> bool:
    """Final dotted segment starts uppercase (PEP 8 class naming)."""
    leaf = text.rpartition(".")[2]
    return bool(leaf) and leaf[0].isupper()


def _clean_type(text: str) -> str:
    """Best-effort class name out of an annotation text.

    ``Optional[WorkerPool]`` / ``"WorkerPool | None"`` / ``WorkerPool``
    all reduce to ``WorkerPool``; unhandled shapes reduce to ``""``.
    """
    text = text.replace(" ", "").replace('"', "").replace("'", "")
    if text.startswith("Optional[") and text.endswith("]"):
        text = text[len("Optional["):-1]
    for part in text.split("|"):
        if part and part != "None":
            text = part
            break
    if "[" in text:  # list[WorkerPool] etc. — container, not the class
        return ""
    return text if all(p.isidentifier() for p in text.split(".")) else ""


def _import_table(tree: ast.Module, module: str | None) -> dict[str, str]:
    """Local name → dotted target for every import in the file."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level and module:
                # Relative import: resolve against this module's package.
                pkg = module.split(".")
                pkg = pkg[: len(pkg) - node.level] if node.level <= len(pkg) else []
                base = ".".join(pkg + ([node.module] if node.module else []))
            elif node.level:
                continue  # relative import outside src/ — unresolvable
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    return table


def _scan_nodes(body: list[ast.stmt]) -> list[ast.AST]:
    """Every node in ``body`` excluding nested function/lambda subtrees."""
    out: list[ast.AST] = []
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


class _FunctionScanner:
    """Extracts one :class:`FuncInfo` from a def's own body."""

    def __init__(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qual: str,
        cls: str,
        imports: dict[str, str],
        local_funcs: dict[str, str],
    ) -> None:
        self.node = node
        self.qual = qual
        self.cls = cls
        self.imports = imports
        self.local_funcs = local_funcs  # in-scope def name -> local qual
        self.var_types: dict[str, str] = {}

    def qualify(self, text: str) -> str:
        """Substitute a dotted text's root via var types then imports."""
        root, dot, rest = text.partition(".")
        if root == "self":
            return text
        if root in self.var_types:
            return self.var_types[root] + dot + rest
        if root in self.local_funcs:
            return self.local_funcs[root] + dot + rest
        if root in self.imports:
            return self.imports[root] + dot + rest
        return text

    def _infer_types(self, nodes: list[ast.AST]) -> None:
        for arg in (self.node.args.posonlyargs + self.node.args.args
                    + self.node.args.kwonlyargs):
            if arg.annotation is not None:
                t = _clean_type(ast.unparse(arg.annotation))
                if t:
                    self.var_types[arg.arg] = self.qualify(t)
        # Source order matters for chains like ``ctl = self._c`` then
        # ``sem = ctl._semaphore`` (the second leans on the first).
        nodes = sorted(
            nodes, key=lambda n: (getattr(n, "lineno", 0),
                                  getattr(n, "col_offset", 0))
        )
        for node in nodes:
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                t = _clean_type(ast.unparse(node.annotation))
                if t:
                    self.var_types[node.target.id] = self.qualify(t)
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                name = node.targets[0].id
                value = node.value
                if isinstance(value, ast.Call):
                    t = _dotted(value.func)
                    if t is not None and _looks_like_class(t):
                        self.var_types[name] = self.qualify(t)
                elif isinstance(value, ast.Attribute):
                    t = _dotted(value)
                    if t is not None and t.startswith("self."):
                        # Resolved against the class at graph time.
                        self.var_types[name] = t
                    elif t is not None:
                        root, dot, rest = t.partition(".")
                        if root in self.var_types:
                            self.var_types[name] = (
                                self.var_types[root] + dot + rest
                            )
                elif isinstance(value, ast.IfExp):
                    for branch in (value.body, value.orelse):
                        if isinstance(branch, ast.Call):
                            t = _dotted(branch.func)
                            if t is not None and _looks_like_class(t):
                                self.var_types[name] = self.qualify(t)
                                break

    def _is_hop(self, callee: str, call: ast.Call) -> bool:
        if callee in _HOP_CALLEES:
            return True
        prefix, _, attr = callee.rpartition(".")
        if attr in _HOP_ATTRS:
            return True
        receiver = prefix.lower()
        if attr in {"submit", "map"} and any(
            tok in receiver for tok in _POOL_TOKENS
        ):
            return True
        if _looks_like_class(callee) and callee.rpartition(".")[2] in _HOP_CTORS:
            return True
        return False

    def _is_awaited(
        self, call: ast.Call, parents: dict[int, ast.AST]
    ) -> bool:
        """Operand of ``await`` (or arg to an asyncio.* combinator).

        An awaited expression is by construction a coroutine/future,
        not a synchronous block; whatever blocking it contains lives in
        the awaited callee, which taint propagation reaches anyway.
        """
        parent = parents.get(id(call))
        if isinstance(parent, ast.Await):
            return True
        if isinstance(parent, ast.keyword):
            parent = parents.get(id(parent))
        if isinstance(parent, ast.Call):
            text = _dotted(parent.func)
            if text is not None and self.qualify(text).startswith("asyncio."):
                return True
        return False

    def _call_site(
        self, call: ast.Call, parents: dict[int, ast.AST]
    ) -> CallSite:
        text = _dotted(call.func)
        callee = self.qualify(text) if text is not None else ""
        refs: list[str] = []
        passes_deadline = False
        for arg in call.args:
            t = _dotted(arg)
            if t is not None:
                if "deadline" in t.lower():
                    passes_deadline = True
                refs.append(self.qualify(t))
        for kw in call.keywords:
            if kw.arg is not None and (
                kw.arg in DEADLINE_PARAMS or "deadline" in kw.arg
            ):
                passes_deadline = True
            t = _dotted(kw.value)
            if t is not None:
                if "deadline" in t.lower():
                    passes_deadline = True
                refs.append(self.qualify(t))
        return CallSite(
            callee=callee,
            line=call.lineno,
            col=call.col_offset + 1,
            hop=self._is_hop(callee, call) if callee else False,
            awaited=self._is_awaited(call, parents),
            refs=refs,
            passes_deadline=passes_deadline,
        )

    def _deadline_param(self) -> str:
        for arg in (self.node.args.posonlyargs + self.node.args.args
                    + self.node.args.kwonlyargs):
            if arg.arg in DEADLINE_PARAMS:
                return arg.arg
            if arg.annotation is not None and (
                "deadline" in ast.unparse(arg.annotation).lower()
            ):
                return arg.arg
        return ""

    def _creations(
        self, nodes: list[ast.AST], parents: dict[int, ast.AST]
    ) -> list[Creation]:
        """Constructor calls + whether each one's resource is discharged."""
        creations: list[Creation] = []
        by_var: dict[str, Creation] = {}
        for node in nodes:
            if not isinstance(node, ast.Call):
                continue
            text = _dotted(node.func)
            if text is None:
                continue
            resolved = self.qualify(text)
            if not _looks_like_class(resolved):
                continue
            creation = Creation(
                cls=resolved, line=node.lineno, col=node.col_offset + 1
            )
            parent = parents.get(id(node))
            # ``self.x = y if y is not None else X()`` wraps the call.
            while isinstance(parent, (ast.IfExp, ast.BoolOp)):
                parent = parents.get(id(parent))
            if isinstance(parent, ast.withitem):
                creation.discharged, creation.how = True, "with"
            elif isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom,
                                     ast.Await)):
                creation.discharged, creation.how = True, "returned"
            elif isinstance(parent, (ast.Call, ast.keyword)):
                creation.discharged, creation.how = True, "handoff"
            elif isinstance(parent, ast.Assign):
                targets = parent.targets
                if len(targets) == 1 and isinstance(targets[0], ast.Name):
                    creation.var = targets[0].id
                    by_var[creation.var] = creation
                else:
                    # self.x = X() / d[k] = X(): ownership handed to the
                    # container, whose own lifecycle rules apply.
                    creation.discharged, creation.how = True, "stored"
            elif isinstance(parent, ast.AnnAssign):
                if isinstance(parent.target, ast.Name):
                    creation.var = parent.target.id
                    by_var[creation.var] = creation
                else:
                    creation.discharged, creation.how = True, "stored"
            creations.append(creation)
        if by_var:
            self._discharge_vars(nodes, by_var)
        return creations

    def _discharge_vars(
        self, nodes: list[ast.AST], by_var: dict[str, Creation]
    ) -> None:
        """Mark var-bound creations that are released later in the body."""
        for node in nodes:
            if isinstance(node, ast.Call):
                text = _dotted(node.func)
                if text is not None:
                    root, _, rest = text.partition(".")
                    if (root in by_var
                            and rest.rpartition(".")[2] in _DISCHARGE_CALLS):
                        c = by_var[root]
                        c.discharged, c.how = True, "closed"
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if isinstance(arg, ast.Name) and arg.id in by_var:
                        c = by_var[arg.id]
                        c.discharged, c.how = True, "handoff"
            elif isinstance(node, ast.withitem):
                expr = node.context_expr
                if isinstance(expr, ast.Name) and expr.id in by_var:
                    c = by_var[expr.id]
                    c.discharged, c.how = True, "with"
            elif isinstance(node, (ast.Return, ast.Yield)):
                if isinstance(node.value, ast.Name) and node.value.id in by_var:
                    c = by_var[node.value.id]
                    c.discharged, c.how = True, "returned"
            elif isinstance(node, ast.Assign):
                values = [node.value]
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    values = list(node.value.elts)
                stored_names = {
                    v.id for v in values
                    if isinstance(v, ast.Name) and v.id in by_var
                }
                if stored_names and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ):
                    for name in stored_names:
                        c = by_var[name]
                        c.discharged, c.how = True, "stored"

    def scan(self) -> FuncInfo:
        nodes = _scan_nodes(self.node.body)
        parents: dict[int, ast.AST] = {}
        for node in nodes:
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        self._infer_types(nodes)
        params = [a.arg for a in (self.node.args.posonlyargs
                                  + self.node.args.args
                                  + self.node.args.kwonlyargs)]
        info = FuncInfo(
            name=self.qual,
            line=self.node.lineno,
            col=self.node.col_offset + 1,
            is_async=isinstance(self.node, ast.AsyncFunctionDef),
            cls=self.cls,
            params=params,
            deadline_param=self._deadline_param(),
        )
        for node in nodes:
            if isinstance(node, ast.Call):
                site = self._call_site(node, parents)
                if site.callee or site.refs:
                    info.calls.append(site)
        info.creations = self._creations(nodes, parents)
        return info


#: Dotted observability-name shape (mirrors rules/naming.py NAME_RE).
_DOTTED_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Metric/event writes — a literal first arg *declares* that name.
_DECLARING_ATTRS = {"incr", "_incr", "observe", "event", "set_gauge",
                    "adjust_gauge", "span", "time"}

#: Metric reads — a literal first arg must match a declared name.
_READING_ATTRS = {"count", "gauge", "observations", "summary"}

#: Fault-injector ops — a literal first arg must be a declared point.
_FAULT_ATTRS = {"arm", "check", "acheck", "fires", "disarm", "rule"}


def _receiver_of(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        try:
            return ast.unparse(call.func.value).lower()
        except (ValueError, AttributeError):  # pragma: no cover
            return ""
    return ""


def _metricish(receiver: str) -> bool:
    return ("metric" in receiver or "registr" in receiver
            or receiver in {"m", "reg"})


def _faultish(receiver: str) -> bool:
    return "injector" in receiver or "fault" in receiver


def _literal_prefix(call: ast.Call) -> str | None:
    """Leading literal text of an f-string first arg (name prefixes)."""
    if not call.args or not isinstance(call.args[0], ast.JoinedStr):
        return None
    joined = call.args[0]
    if joined.values and isinstance(joined.values[0], ast.Constant):
        value = joined.values[0].value
        if isinstance(value, str) and "." in value:
            return value.rstrip(".")
    return None


def _harvest_names(tree: ast.Module, summary: ModuleSummary) -> None:
    """Collect declared and used observability names from every call."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        attr = node.func.attr
        receiver = _receiver_of(node)
        literal = None
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            literal = node.args[0].value
        if attr in _DECLARING_ATTRS:
            if literal is not None and _DOTTED_NAME.match(literal):
                summary.declared_names.add(literal)
            else:
                prefix = _literal_prefix(node)
                if prefix is not None:
                    summary.declared_prefixes.add(prefix)
        elif attr in _READING_ATTRS and _metricish(receiver):
            if literal is not None and _DOTTED_NAME.match(literal):
                summary.name_uses.append(NameUse(
                    kind="metric", name=literal,
                    line=node.lineno, col=node.col_offset + 1,
                ))
        elif attr in _FAULT_ATTRS and _faultish(receiver):
            if literal is not None and _DOTTED_NAME.match(literal):
                summary.name_uses.append(NameUse(
                    kind="fault", name=literal,
                    line=node.lineno, col=node.col_offset + 1,
                ))


def _harvest_constants(tree: ast.Module, summary: ModuleSummary) -> None:
    """Module-level ``UPPER = "dotted.name"`` constants (fault points)."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id.isupper()
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
            and _DOTTED_NAME.match(node.value.value)
        ):
            summary.fault_constants.add(node.value.value)


def _lock_kind(value: ast.expr) -> str:
    """``thread``/``async``/``""`` for a lock-factory assignment RHS."""
    if not isinstance(value, ast.Call):
        return ""
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr in _THREAD_LOCK_FACTORIES:
        receiver = ""
        try:
            receiver = ast.unparse(func.value)
        except (ValueError, AttributeError):  # pragma: no cover
            pass
        return "async" if receiver == "asyncio" else "thread"
    if isinstance(func, ast.Name) and func.id in _THREAD_LOCK_FACTORIES:
        # ``from threading import Lock`` style; asyncio primitives are
        # conventionally used via the module, so a bare name is a
        # thread lock unless proven otherwise.
        return "thread"
    return ""


def _summarize_class(
    node: ast.ClassDef,
    imports: dict[str, str],
    summary: ModuleSummary,
    module_funcs: dict[str, str],
) -> None:
    info = ClassInfo(name=node.name, line=node.lineno)
    for base in node.bases:
        text = _dotted(base)
        if text is not None:
            root, dot, rest = text.partition(".")
            if root in imports:
                text = imports[root] + dot + rest
            info.bases.append(text)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods.append(item.name)
            qual = f"{node.name}.{item.name}"
            _summarize_function(
                item, qual, node.name, imports, summary, module_funcs
            )
            if item.name in ("__init__", "__post_init__"):
                _infer_attr_types(item, imports, info)
        elif isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            t = _clean_type(ast.unparse(item.annotation))
            if t:
                root, dot, rest = t.partition(".")
                if root in imports:
                    t = imports[root] + dot + rest
                info.attr_types[item.target.id] = t
    info.closeable = bool(set(info.methods) & _CLOSE_METHODS)
    summary.classes[node.name] = info


def _infer_attr_types(
    init: ast.FunctionDef | ast.AsyncFunctionDef,
    imports: dict[str, str],
    info: ClassInfo,
) -> None:
    """``self.x = ...`` attribute types from a constructor body."""
    param_types: dict[str, str] = {}
    for arg in (init.args.posonlyargs + init.args.args
                + init.args.kwonlyargs):
        if arg.annotation is not None:
            t = _clean_type(ast.unparse(arg.annotation))
            if t:
                root, dot, rest = t.partition(".")
                if root in imports:
                    t = imports[root] + dot + rest
                param_types[arg.arg] = t

    def rhs_type(value: ast.expr) -> str:
        if isinstance(value, ast.Call):
            t = _dotted(value.func)
            if t is not None and _looks_like_class(t):
                root, dot, rest = t.partition(".")
                if root in imports:
                    return imports[root] + dot + rest
                return t
        elif isinstance(value, ast.Name) and value.id in param_types:
            return param_types[value.id]
        elif isinstance(value, ast.IfExp):
            for branch in (value.body, value.orelse):
                t = rhs_type(branch)
                if t:
                    return t
        return ""

    for node in _scan_nodes(init.body):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            assert value is not None
            kind = _lock_kind(value)
            if kind == "thread":
                info.lock_attrs.append(target.attr)
            elif kind == "async":
                info.async_lock_attrs.append(target.attr)
            if isinstance(node, ast.AnnAssign):
                t = _clean_type(ast.unparse(node.annotation))
                if t:
                    root, dot, rest = t.partition(".")
                    if root in imports:
                        t = imports[root] + dot + rest
                    info.attr_types[target.attr] = t
                    continue
            t = rhs_type(value)
            if t:
                info.attr_types.setdefault(target.attr, t)


def _summarize_function(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qual: str,
    cls: str,
    imports: dict[str, str],
    summary: ModuleSummary,
    module_funcs: dict[str, str],
) -> None:
    nested = {
        item.name: f"{qual}.<locals>.{item.name}"
        for item in ast.walk(node)
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        and item is not node
    }
    local_funcs = dict(module_funcs)
    local_funcs.update(nested)
    scanner = _FunctionScanner(node, qual, cls, imports, local_funcs)
    summary.functions[qual] = scanner.scan()
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _summarize_function(
                item, f"{qual}.<locals>.{item.name}", "", imports,
                summary, local_funcs,
            )


def summarize_module(
    rel: str,
    module: str | None,
    tree: ast.Module,
    suppressions: SuppressionIndex | None = None,
) -> ModuleSummary:
    """Build the project-pass summary for one parsed file."""
    summary = ModuleSummary(rel=rel, module=module)
    imports = _import_table(tree, module)
    module_funcs: dict[str, str] = {
        item.name: item.name
        for item in tree.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _summarize_function(
                node, node.name, "", imports, summary, module_funcs
            )
        elif isinstance(node, ast.ClassDef):
            _summarize_class(node, imports, summary, module_funcs)
    _harvest_names(tree, summary)
    _harvest_constants(tree, summary)
    if suppressions is not None:
        for line, sups in suppressions.by_line.items():
            ids = sorted({
                rid for sup in sups if sup.justified for rid in sup.rules
            })
            if ids:
                summary.suppressed[line] = ids
    return summary


# ---------------------------------------------------------------------------
# ProjectContext: the cross-module view project rules consume
# ---------------------------------------------------------------------------


@dataclass
class FunctionRef:
    """One function in the global graph, with enough context to resolve
    its call sites (module for same-module names, class for ``self.``)."""

    rel: str
    module: str | None
    qual: str  #: global qualname, e.g. ``repro.service.http.Server.stop``
    info: FuncInfo
    cls_qual: str = ""  #: global class qualname for methods ("" otherwise)


class ProjectContext:
    """Call graph + async taint + name registry over all summaries."""

    #: Cap on MRO / attribute-chain walks; real hierarchies are shallow
    #: and the cap keeps accidental base-class cycles from spinning.
    MAX_WALK = 8

    def __init__(
        self,
        summaries: dict[str, ModuleSummary],
        root: Path | None = None,
        sources: dict[str, str] | None = None,
    ) -> None:
        self.summaries = summaries
        self.root = root
        self._lines: dict[str, list[str]] = {
            rel: src.splitlines() for rel, src in (sources or {}).items()
        }
        self.functions: dict[str, FunctionRef] = {}
        self.classes: dict[str, tuple[str, ClassInfo]] = {}
        self._class_simple: dict[str, list[str]] = {}
        for rel, summary in summaries.items():
            base = summary.module or rel
            for cname, cinfo in summary.classes.items():
                cq = f"{base}.{cname}"
                self.classes[cq] = (rel, cinfo)
                self._class_simple.setdefault(cname, []).append(cq)
            for fqual, finfo in summary.functions.items():
                ref = FunctionRef(
                    rel=rel, module=summary.module,
                    qual=f"{base}.{fqual}", info=finfo,
                    cls_qual=f"{base}.{finfo.cls}" if finfo.cls else "",
                )
                self.functions[ref.qual] = ref
        self.declared_names: set[str] = set()
        self.declared_prefixes: set[str] = set()
        self.fault_names: set[str] = set()
        for summary in summaries.values():
            self.declared_names |= summary.declared_names
            self.declared_prefixes |= summary.declared_prefixes
            if summary.module and summary.module.startswith("repro.robustness"):
                self.fault_names |= summary.fault_constants
        #: tainted qual -> the caller that tainted it (None for seeds)
        self.async_taint: dict[str, str | None] = {}
        self._propagate_taint()

    # -- class / call resolution -------------------------------------

    def resolve_class(self, text: str) -> str | None:
        """Global class qualname for a dotted class text, best effort."""
        if not text:
            return None
        if text in self.classes:
            return text
        simple = text.rpartition(".")[2]
        quals = self._class_simple.get(simple, [])
        if len(quals) == 1:
            return quals[0]
        return None

    def attr_type(self, cls_qual: str, attr: str) -> str | None:
        """Declared/inferred type text of ``attr`` via the MRO."""
        for cq in self._mro(cls_qual):
            _, info = self.classes[cq]
            if attr in info.attr_types:
                return info.attr_types[attr]
        return None

    def _mro(self, cls_qual: str) -> list[str]:
        order: list[str] = []
        seen: set[str] = set()
        queue = [cls_qual]
        while queue and len(order) < self.MAX_WALK:
            cq = queue.pop(0)
            if cq in seen or cq not in self.classes:
                continue
            seen.add(cq)
            order.append(cq)
            _, info = self.classes[cq]
            for base in info.bases:
                bq = self.resolve_class(base)
                if bq is not None:
                    queue.append(bq)
        return order

    def resolve_method(self, cls_qual: str, name: str) -> str | None:
        """Global qual of ``name`` looked up through the class MRO."""
        for cq in self._mro(cls_qual):
            _, info = self.classes[cq]
            if name in info.methods:
                qual = f"{cq}.{name}"
                return qual if qual in self.functions else None
        return None

    def lock_kind_of(self, cls_qual: str, attr: str) -> str:
        """``thread``/``async``/``""`` for a ``self.<attr>`` lock."""
        for cq in self._mro(cls_qual):
            _, info = self.classes[cq]
            if attr in info.lock_attrs:
                return "thread"
            if attr in info.async_lock_attrs:
                return "async"
        return ""

    def _walk_attrs(self, cls_qual: str, parts: list[str]) -> str | None:
        """Resolve ``parts`` (attrs... method) starting from a class."""
        cls: str | None = cls_qual
        for hop, part in enumerate(parts):
            if cls is None:
                return None
            if hop == len(parts) - 1:
                return self.resolve_method(cls, part)
            t = self.attr_type(cls, part)
            if t is None:
                return None
            cls = self.resolve_class(t)
        return None

    def resolve_call(self, text: str, caller: FunctionRef) -> str | None:
        """Global qual of a call site's target, or ``None``.

        Tries, in order: ``self.``-rooted attribute walks through the
        caller's class, same-module names, absolute dotted names, then
        a class-prefixed attribute walk (``Type.attr.method``).
        """
        if not text or text.startswith("<"):
            return None
        parts = text.split(".")
        if parts[0] == "self":
            if not caller.cls_qual or len(parts) < 2:
                return None
            return self._walk_attrs(caller.cls_qual, parts[1:])
        base = caller.module or caller.rel
        for prefix in (base, None):
            cand = f"{prefix}.{text}" if prefix else text
            if cand in self.functions:
                return cand
            if cand in self.classes:
                return self.resolve_method(cand, "__init__")
        if len(parts) >= 2:
            for split in range(len(parts) - 1, 0, -1):
                cq = self.resolve_class(".".join(parts[:split]))
                if cq is not None:
                    return self._walk_attrs(cq, parts[split:])
        return None

    # -- async taint ---------------------------------------------------

    def _propagate_taint(self) -> None:
        queue: list[str] = []
        for qual, ref in self.functions.items():
            # Seed only from package code: an async *test* runs under
            # asyncio.run in a throwaway loop where blocking is a
            # test-speed concern, not a correctness bug.
            if ref.info.is_async and ref.module is not None:
                self.async_taint[qual] = None
                queue.append(qual)
        while queue:
            qual = queue.pop(0)
            ref = self.functions[qual]
            for call in ref.info.calls:
                if call.hop:
                    continue
                targets = []
                resolved = self.resolve_call(call.callee, ref)
                if resolved is not None:
                    targets.append(resolved)
                for r in call.refs:
                    rt = self.resolve_call(r, ref)
                    if rt is not None:
                        targets.append(rt)
                for target in targets:
                    if target not in self.async_taint:
                        self.async_taint[target] = qual
                        queue.append(target)

    def is_tainted(self, qual: str) -> bool:
        """Whether ``qual`` may run on the event loop."""
        return qual in self.async_taint

    def taint_chain(self, qual: str) -> list[str]:
        """Path from the async seed down to ``qual`` (inclusive)."""
        chain = [qual]
        while True:
            parent = self.async_taint.get(chain[-1])
            if parent is None or parent in chain:
                break
            chain.append(parent)
        chain.reverse()
        return chain

    # -- resources ----------------------------------------------------

    def closeable_class(self, cls_text: str) -> str | None:
        """Display name if ``cls_text`` is a closeable resource class.

        In-project classes qualify when they (or a resolvable base)
        define a close-like method; well-known stdlib resource classes
        (:data:`EXTERNAL_CLOSEABLE`) qualify by name.
        """
        simple = cls_text.rpartition(".")[2]
        if simple in EXTERNAL_CLOSEABLE:
            return simple
        cq = self.resolve_class(cls_text)
        if cq is None:
            return None
        for mq in self._mro(cq):
            _, info = self.classes[mq]
            if info.closeable:
                return cq
        return None

    # -- misc ----------------------------------------------------------

    def line_text(self, rel: str, line: int) -> str:
        """Stripped source text at ``rel:line`` (lazy file read)."""
        if rel not in self._lines:
            path = (self.root / rel) if self.root else Path(rel)
            try:
                self._lines[rel] = path.read_text(
                    encoding="utf-8"
                ).splitlines()
            except OSError:
                self._lines[rel] = []
        lines = self._lines[rel]
        if 1 <= line <= len(lines):
            return lines[line - 1].strip()
        return ""


# ---------------------------------------------------------------------------
# Incremental index + the --project driver
# ---------------------------------------------------------------------------


def analysis_token() -> str:
    """Fingerprint of the analyzer's own sources.

    Cached summaries and findings are only as good as the code that
    produced them, so the index self-invalidates whenever any module in
    the analysis package changes.
    """
    digest = hashlib.sha256()
    pkg = Path(__file__).resolve().parent
    for path in sorted(pkg.rglob("*.py")):
        digest.update(path.relative_to(pkg).as_posix().encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def load_index(path: Path) -> dict[str, Any] | None:
    """Read the cross-module index; ``None`` if absent/stale/corrupt."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict) or data.get("version") != INDEX_VERSION:
        return None
    if data.get("token") != analysis_token():
        return None
    files = data.get("files")
    return data if isinstance(files, dict) else None


def write_index(path: Path, files: dict[str, Any]) -> None:
    """Persist summaries + per-file findings for the next run."""
    payload = {
        "version": INDEX_VERSION,
        "token": analysis_token(),
        "files": files,
    }
    path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")


def _project_findings(
    project: ProjectContext,
    rules: list[Rule],
    summaries: dict[str, ModuleSummary],
) -> list[Finding]:
    """Run project rules, honoring the finding-file's suppressions."""
    findings: list[Finding] = []
    for rule in rules:
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(project):
            summary = summaries.get(finding.path)
            if summary is not None and finding.rule in summary.suppressed.get(
                finding.line, []
            ):
                continue
            findings.append(finding)
    return findings


def check_project(
    paths: list[Path],
    select: list[str] | None = None,
    ignore: list[str] | None = None,
    root: Path | None = None,
    index_path: Path | None = None,
    stats: dict[str, Any] | None = None,
) -> list[Finding]:
    """Analyze files with per-file *and* project rules (``--project``).

    Per-file findings are computed for **all** registered rules and
    cached in the index alongside each file's summary (so a later run
    with a different ``--select`` can still reuse the cache); the
    returned list is filtered to the selected rules.  Project rules
    are recomputed every run from the (cheap) summaries.
    """
    started = time.perf_counter()
    selected = resolve_rules(select, ignore)
    selected_ids = {rule.id for rule in selected}
    every_rule = list(all_rules().values())
    file_rules = [r for r in every_rule if not isinstance(r, ProjectRule)]
    root = root or Path.cwd()

    index = load_index(index_path) if index_path is not None else None
    cached_files: dict[str, Any] = index["files"] if index else {}
    next_files: dict[str, Any] = {}
    reused = parsed = 0

    findings: list[Finding] = []
    summaries: dict[str, ModuleSummary] = {}
    for path in iter_python_files(paths):
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            stat = path.stat()
        except OSError:
            continue
        entry = cached_files.get(rel)
        if (
            entry is not None
            and entry.get("mtime") == stat.st_mtime
            and entry.get("size") == stat.st_size
        ):
            summary = ModuleSummary.from_dict(entry["summary"])
            file_findings = [Finding.from_dict(d) for d in entry["findings"]]
            next_files[rel] = entry
            reused += 1
        else:
            try:
                ctx = build_context(path, root=root)
            except (SyntaxError, UnicodeDecodeError) as exc:
                line = getattr(exc, "lineno", None) or 1
                findings.append(Finding(
                    rule=META_RULE, path=rel, line=line, col=1,
                    message=f"cannot parse file: {exc}", line_text="",
                ))
                continue
            assert ctx is not None
            file_findings = check_context(ctx, file_rules)
            summary = summarize_module(
                ctx.rel, ctx.module, ctx.tree, ctx.suppressions
            )
            next_files[rel] = {
                "mtime": stat.st_mtime,
                "size": stat.st_size,
                "summary": summary.to_dict(),
                "findings": [f.to_dict() for f in file_findings],
            }
            parsed += 1
        summaries[rel] = summary
        findings.extend(
            f for f in file_findings
            if f.rule in selected_ids or f.rule == META_RULE
        )

    project = ProjectContext(summaries, root=root)
    findings.extend(_project_findings(project, selected, summaries))

    if index_path is not None:
        try:
            write_index(index_path, next_files)
        except OSError:
            pass  # read-only checkout: analysis still ran, just uncached

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if stats is not None:
        stats.update({
            "files": reused + parsed,
            "parsed": parsed,
            "reused": reused,
            "elapsed_s": time.perf_counter() - started,
        })
    return findings


def check_project_sources(
    sources: dict[str, str],
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> list[Finding]:
    """Analyze in-memory sources with project rules — the test entry.

    ``sources`` maps synthetic repo-relative paths (which set module
    scoping, e.g. ``src/repro/core/_fixture.py``) to source strings.
    """
    rules = resolve_rules(select, ignore)
    findings: list[Finding] = []
    summaries: dict[str, ModuleSummary] = {}
    for rel, source in sources.items():
        tree = ast.parse(source, filename=rel)
        suppressions = parse_suppressions(source)
        ctx = FileContext(
            path=Path(rel),
            rel=rel,
            module=module_name_for(rel),
            source=source,
            tree=tree,
            lines=source.splitlines(),
            suppressions=suppressions,
        )
        findings.extend(check_context(
            ctx, [r for r in rules if not isinstance(r, ProjectRule)]
        ))
        summaries[rel] = summarize_module(rel, ctx.module, tree, suppressions)
    project = ProjectContext(summaries, sources=sources)
    findings.extend(_project_findings(project, rules, summaries))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
