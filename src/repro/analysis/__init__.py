"""repro-lint: project-specific static analysis.

An AST-based checker turning the repo's runtime-tested invariants into
statically enforced ones (see ``docs/STATIC_ANALYSIS.md``):

========  =======================  ==========================================
Rule      Name                     Invariant
========  =======================  ==========================================
RL001     lock-discipline          no mixed locked/unlocked attribute
                                   mutation in Lock-owning classes
RL002     determinism              no wall-clock or unseeded/global RNG in
                                   the selection packages
RL003     span-hygiene             ``tracer.span`` results context-managed
RL004     metric-span-naming       literal names dotted lowercase
RL005     exception-policy         broad handlers re-raise/record/justify
RL006     public-api-annotations   full annotations in core/similarity
RL007*    blocking-call-in-async   no blocking call reachable from async
                                   code without an ``asyncio.to_thread`` hop
RL008     lock-held-across-await   no threading lock held across ``await``
RL009*    resource-lifecycle       closeable resources discharged on all
                                   creating paths
RL010*    name-registry            literal metric/fault names read must be
                                   declared by some write
RL011*    deadline-propagation     deadline params forwarded to deadline-
                                   aware callees
RL012     half-open-intervals      temporal windows ``t0 <= t < t1``
========  =======================  ==========================================

Rules marked ``*`` are interprocedural: they build on the
whole-package call graph and only fire in ``--project`` mode
(``python -m repro.analysis check --project src tests``).
"""

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import check_paths, check_source
from repro.analysis.findings import (
    Finding,
    format_github,
    format_json,
    format_text,
)
from repro.analysis.project import (
    ProjectContext,
    check_project,
    check_project_sources,
)
from repro.analysis.registry import (
    ProjectRule,
    Rule,
    all_rules,
    register,
    resolve_rules,
)

__all__ = [
    "Finding",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "all_rules",
    "apply_baseline",
    "check_paths",
    "check_project",
    "check_project_sources",
    "check_source",
    "format_github",
    "format_json",
    "format_text",
    "load_baseline",
    "register",
    "resolve_rules",
    "write_baseline",
]
