"""repro-lint: project-specific static analysis.

An AST-based checker turning the repo's runtime-tested invariants into
statically enforced ones (see ``docs/STATIC_ANALYSIS.md``):

========  =======================  ==========================================
Rule      Name                     Invariant
========  =======================  ==========================================
RL001     lock-discipline          no mixed locked/unlocked attribute
                                   mutation in Lock-owning classes
RL002     determinism              no wall-clock or unseeded/global RNG in
                                   the selection packages
RL003     span-hygiene             ``tracer.span`` results context-managed
RL004     metric-span-naming       literal names dotted lowercase
RL005     exception-policy         broad handlers re-raise/record/justify
RL006     public-api-annotations   full annotations in core/similarity
========  =======================  ==========================================

Run with ``python -m repro.analysis check src tests``.
"""

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.engine import check_paths, check_source
from repro.analysis.findings import Finding, format_json, format_text
from repro.analysis.registry import Rule, all_rules, register, resolve_rules

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "apply_baseline",
    "check_paths",
    "check_source",
    "format_json",
    "format_text",
    "load_baseline",
    "register",
    "resolve_rules",
    "write_baseline",
]
