"""Per-session warm-start material for the ISOS greedy.

The expensive part of serving a navigation operation cold is heap
initialization: one first-iteration gain per candidate, ``O(|O|·|G|)``
similarity work on the response path.  The session's
:class:`SelectionCache` removes it for the overlapping-viewport case
without any dedicated precomputation sweep:

* **capture** — after each step, harvest from the
  :class:`~repro.cache.SimilarityCache` the raw weighted similarity
  masses ``raw(v) = Σ_{o∈O_t} ω_o·Sim(o, v)`` of every object of the
  current population whose row is already cached (they all are, right
  after a selection: the greedy evaluated them to initialize its
  heap).  Harvesting is pure numpy over cached rows — zero model
  evaluations — and runs off the response path.
* **warm start** — when the next operation's viewport lies *inside*
  the captured one (zoom-in, or any targeted navigation that stays
  within the previous region), the new population satisfies
  ``O_new ⊆ O_t``, so ``raw(v) / |O_new|`` upper-bounds the
  first-iteration gain of each covered candidate exactly as the
  Sec. 5.2 prefetch bounds do (Lemma 5.1: monotonicity in the
  population plus submodularity).  The greedy heap starts from these
  stale bounds and skips exact initialization; lazy-forward
  refreshing guarantees the selection is bit-identical to a cold
  start.  Candidates without a harvested mass get ``NaN`` and are
  initialized exactly, so partial coverage degrades smoothly.

Fallback to cold start is explicit and recorded in the metrics
registry (``warm.skipped.<reason>``): no capture yet, the similarity
cache was invalidated since capture, the new viewport is not
contained in the captured one (pan/zoom-out — those are served by the
prefetcher's union bounds instead), the viewport overlap
``area(new)/area(captured)`` is below ``min_overlap`` (bounds valid
but too loose to help), or candidate coverage is below
``min_coverage``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.similarity_cache import SimilarityCache
from repro.geo.bbox import BoundingBox
from repro.metrics import MetricsRegistry

DEFAULT_MIN_OVERLAP = 0.05
DEFAULT_MIN_COVERAGE = 0.5
DEFAULT_MAX_POPULATION = 20_000


@dataclass
class CapturedSelection:
    """Harvested warm-start material for one committed viewport."""

    region: BoundingBox
    population: int
    raw_ids: np.ndarray  # sorted ids with a harvested raw mass
    raw_sums: np.ndarray  # aligned with raw_ids
    generation: int  # similarity-cache generation at harvest time


class SelectionCache:
    """Warm-start state carried between the steps of one session.

    Parameters
    ----------
    min_overlap:
        Minimum ``area(new) / area(captured)`` for a warm start; a
        deep zoom keeps valid but weak bounds, and below this ratio a
        cold exact initialization is cheaper than refreshing them.
    min_coverage:
        Minimum fraction of candidates with a harvested mass; below
        it the mixed seed degenerates to mostly-exact and the cache
        steps aside entirely.
    max_population:
        Harvest guard: populations larger than this are not captured
        (the ``O(|O_t|²)`` gather/dot harvest would dominate).
    """

    def __init__(
        self,
        min_overlap: float = DEFAULT_MIN_OVERLAP,
        min_coverage: float = DEFAULT_MIN_COVERAGE,
        max_population: int = DEFAULT_MAX_POPULATION,
        metrics: MetricsRegistry | None = None,
    ):
        if not 0.0 <= min_overlap <= 1.0:
            raise ValueError(f"min_overlap must be in [0, 1], got {min_overlap}")
        if not 0.0 <= min_coverage <= 1.0:
            raise ValueError(
                f"min_coverage must be in [0, 1], got {min_coverage}"
            )
        self.min_overlap = min_overlap
        self.min_coverage = min_coverage
        self.max_population = max_population
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._captured: CapturedSelection | None = None

    @property
    def captured(self) -> CapturedSelection | None:
        """The current warm-start material (``None`` when cold)."""
        return self._captured

    def invalidate(self) -> None:
        """Drop the captured material (dataset swap, session reset)."""
        self._captured = None

    def capture(
        self,
        similarity: SimilarityCache,
        weights: np.ndarray,
        region: BoundingBox,
        region_ids: np.ndarray,
    ) -> None:
        """Harvest raw masses over ``region_ids`` from cached rows.

        Zero similarity-model evaluations: objects whose row over the
        population is not fully cached are simply left out (the next
        warm start initializes them exactly).  Runs off the response
        path; replaces any previous capture.
        """
        region_ids = np.asarray(region_ids, dtype=np.int64)
        self._captured = None
        if len(region_ids) == 0 or len(region_ids) > self.max_population:
            self.metrics.incr("warm.capture_skipped")
            return
        w = np.asarray(weights, dtype=np.float64)[region_ids]
        ids: list[int] = []
        sums: list[float] = []
        for v in region_ids:
            row = similarity.cached_row_over(int(v), region_ids)
            if row is not None:
                ids.append(int(v))
                sums.append(float(np.dot(w, row)))
        if not ids:
            self.metrics.incr("warm.capture_skipped")
            return
        raw_ids = np.asarray(ids, dtype=np.int64)
        order = np.argsort(raw_ids, kind="stable")
        self._captured = CapturedSelection(
            region=region,
            population=int(len(region_ids)),
            raw_ids=raw_ids[order],
            raw_sums=np.asarray(sums, dtype=np.float64)[order],
            generation=similarity.generation,
        )
        self.metrics.incr("warm.captures")
        self.metrics.incr("warm.captured_ids", len(ids))

    def bounds_for(
        self,
        similarity: SimilarityCache,
        new_region: BoundingBox,
        new_ids: np.ndarray,
        candidate_ids: np.ndarray,
    ) -> np.ndarray | None:
        """Upper bounds aligned with ``candidate_ids``, or ``None``.

        ``NaN`` entries mark candidates without a harvested mass; the
        greedy engine initializes those exactly.  Returns ``None``
        whenever a warm start is invalid or not worthwhile — the
        caller serves the operation cold.
        """
        c = self._captured
        if c is None:
            return self._skip("no_capture")
        if similarity.generation != c.generation:
            self._captured = None
            return self._skip("invalidated")
        if len(new_ids) == 0 or len(candidate_ids) == 0:
            return self._skip("empty")
        if not c.region.contains_box(new_region):
            # O_new ⊆ O_captured no longer guaranteed: the masses are
            # not valid bounds (pan / zoom-out are the prefetcher's
            # job, whose union supersets cover them).
            return self._skip("not_contained")
        if c.region.area > 0 and new_region.area / c.region.area < self.min_overlap:
            return self._skip("low_overlap")
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        pos = np.searchsorted(c.raw_ids, candidate_ids)
        pos_safe = np.minimum(pos, len(c.raw_ids) - 1)
        found = c.raw_ids[pos_safe] == candidate_ids
        coverage = float(found.mean())
        if coverage < self.min_coverage:
            return self._skip("low_coverage")
        bounds = np.full(len(candidate_ids), np.nan, dtype=np.float64)
        bounds[found] = c.raw_sums[pos_safe[found]] / float(len(new_ids))
        self.metrics.incr("warm.starts")
        self.metrics.incr("warm.seeded_bounds", int(found.sum()))
        self.metrics.incr("warm.exact_fallbacks", int((~found).sum()))
        return bounds

    def _skip(self, reason: str) -> np.ndarray | None:
        self.metrics.incr(f"warm.skipped.{reason}")
        return None
