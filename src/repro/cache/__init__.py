"""Cross-step caching for the selection hot path.

Two cooperating layers (see ``docs/CACHING.md``):

* :class:`SimilarityCache` — bounded LRU memoization of
  ``sim``/``sims_to`` over any :class:`~repro.similarity.SimilarityModel`,
  with subset-gather and merge semantics so overlapping populations
  reuse each other's evaluations.
* :class:`SelectionCache` — per-session warm-start material: raw
  similarity masses harvested from cached rows after every step, fed
  back as valid upper bounds (Lemma 5.1) when the next viewport is
  contained in the previous one.

:class:`EquivalenceViolation` is raised by the session's equivalence
mode when a warm-started selection differs from its cold-start twin —
which a correct cache must never allow.
"""

from repro.cache.selection_cache import CapturedSelection, SelectionCache
from repro.cache.similarity_cache import SimilarityCache


class EquivalenceViolation(AssertionError):
    """A warm-started selection diverged from its cold-start twin."""


__all__ = [
    "CapturedSelection",
    "EquivalenceViolation",
    "SelectionCache",
    "SimilarityCache",
]
