"""Bounded LRU memoization of similarity evaluations.

The greedy machinery evaluates ``sims_to(v, O)`` rows over and over —
within one selection (a picked object's row is computed once for its
gain and again when it is committed) and *across* navigation steps of
an ISOS session, whose populations overlap heavily by construction
(zooming/panning consistency, Def. 3.6).  :class:`SimilarityCache`
wraps any :class:`~repro.similarity.SimilarityModel` and memoizes:

* **rows** — per object id, the union of all id/value pairs evaluated
  so far, kept sorted by id.  A later request for a subset is a pure
  numpy gather (zero model evaluations); a partially overlapping
  request only evaluates the missing ids and merges them in (the
  cross-step case: a panned viewport re-scores the surviving
  population for free and pays only for the fresh strip).
* **scalars** — ``sim(i, j)`` pairs under the symmetric key
  ``(min(i,j), max(i,j))``.

Capacity is bounded in *cached float entries* (``max_entries``) with
least-recently-used row eviction; ``max_entries=0`` disables storage
entirely, leaving a pure pass-through that still counts evaluations —
the benchmark's "cold" baseline.

Correctness: every value returned is a value the base model produced
for exactly that ``(i, j)`` pair, so cached and uncached runs see
bit-identical similarities.  The one deliberate deviation is
:meth:`weighted_sims_sum`, which always reduces row-by-row (so the
rows populate the cache) rather than delegating to a possibly
vectorized base implementation; see ``docs/CACHING.md``.

The cache is **not** thread-safe and must be invalidated when the
underlying dataset or model changes (:meth:`invalidate`); the
``generation`` counter lets dependents (the session's
:class:`~repro.cache.SelectionCache`) detect that their derived state
is stale.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.metrics import MetricsRegistry
from repro.similarity.base import SimilarityModel
from repro.trace.tracer import NULL_TRACER

DEFAULT_MAX_ENTRIES = 4_000_000  # cached floats across rows (~32 MB)
DEFAULT_MAX_SCALARS = 65_536


class SimilarityCache(SimilarityModel):
    """Memoizing wrapper around a :class:`SimilarityModel`.

    Parameters
    ----------
    base:
        The wrapped model; all values come from it.
    max_entries:
        Capacity of the row store in cached floats.  ``0`` disables
        row caching (pass-through + counting only).  A single row
        larger than the capacity is served but never stored.
    max_scalars:
        Capacity of the ``sim(i, j)`` scalar store in pairs.
    metrics:
        Optional shared :class:`~repro.metrics.MetricsRegistry`; a
        private one is created when omitted.  Counters emitted (all
        under ``sim.``): ``pairs_evaluated``, ``pairs_saved``,
        ``row_hits``, ``row_partial_hits``, ``row_misses``,
        ``scalar_hits``, ``scalar_misses``, ``row_evictions``,
        ``invalidations``.
    tracer:
        Optional :class:`~repro.trace.Tracer`; block-kernel misses
        that fall through to the base model are wrapped in a
        ``cache.fill`` span (per block, not per row, so the trace
        stays bounded).
    """

    #: LRU bookkeeping mutates on every read; the worker pool degrades
    #: to serial block execution for this model (batching still holds).
    thread_safe = False

    @property
    def batch_friendly(self) -> bool:
        """Follow the wrapped model's batching preference."""
        return self.base.batch_friendly

    def __init__(
        self,
        base: SimilarityModel,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_scalars: int = DEFAULT_MAX_SCALARS,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ):
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if max_scalars < 0:
            raise ValueError(f"max_scalars must be >= 0, got {max_scalars}")
        self.base = base
        self.max_entries = max_entries
        self.max_scalars = max_scalars
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.generation = 0
        # id -> (sorted ids, values aligned with them)
        self._rows: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._scalars: OrderedDict[tuple[int, int], float] = OrderedDict()
        self._entries = 0  # total floats in self._rows

    # ------------------------------------------------------------------
    # SimilarityModel protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.base)

    def sim(self, i: int, j: int) -> float:
        i, j = int(i), int(j)
        key = (i, j) if i <= j else (j, i)
        cached = self._scalars.get(key)
        if cached is not None:
            self._scalars.move_to_end(key)
            self.metrics.incr("sim.scalar_hits")
            return cached
        # A cached row may already hold the pair.
        from_row = self._scalar_from_rows(i, j)
        if from_row is not None:
            self.metrics.incr("sim.scalar_hits")
            return from_row
        value = float(self.base.sim(i, j))
        self.metrics.incr("sim.scalar_misses")
        self.metrics.incr("sim.pairs_evaluated")
        if self.max_scalars:
            self._scalars[key] = value
            while len(self._scalars) > self.max_scalars:
                self._scalars.popitem(last=False)
        return value

    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        i = int(i)
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            return np.zeros(0, dtype=np.float64)
        row = self._rows.get(i)
        if row is None:
            values = np.asarray(
                self.base.sims_to(i, ids), dtype=np.float64
            )
            self.metrics.incr("sim.row_misses")
            self.metrics.incr("sim.pairs_evaluated", len(ids))
            self._store_row(i, ids, values)
            return values

        cached_ids, cached_vals = row
        pos = np.searchsorted(cached_ids, ids)
        pos_safe = np.minimum(pos, len(cached_ids) - 1)
        found = cached_ids[pos_safe] == ids
        if found.all():
            self._rows.move_to_end(i)
            self.metrics.incr("sim.row_hits")
            self.metrics.incr("sim.pairs_saved", len(ids))
            return cached_vals[pos_safe]

        missing = ids[~found]
        miss_vals = np.asarray(
            self.base.sims_to(i, missing), dtype=np.float64
        )
        saved = int(found.sum())
        self.metrics.incr("sim.row_partial_hits")
        self.metrics.incr("sim.pairs_evaluated", len(missing))
        self.metrics.incr("sim.pairs_saved", saved)

        out = np.empty(len(ids), dtype=np.float64)
        out[found] = cached_vals[pos_safe[found]]
        out[~found] = miss_vals
        self._merge_row(i, cached_ids, cached_vals, missing, miss_vals)
        return out

    def row_kernel(self, ids: np.ndarray):
        """Population-specialized kernel, cache-first.

        The greedy loop's hot call.  A fully cached row is served as a
        gather; misses go through the *base model's* specialized kernel
        (keeping its amortized sub-matrix extraction — the whole point
        of :meth:`~repro.similarity.SimilarityModel.row_kernel`) and
        the evaluated row is stored/merged for later steps.  Shipped
        models produce bit-identical values from their kernel and
        ``sims_to`` paths, which the equivalence tests rely on.
        """
        ids = np.asarray(ids, dtype=np.int64)
        base_kernel = self.base.row_kernel(ids)
        n = len(ids)

        def kernel(obj_id: int) -> np.ndarray:
            i = int(obj_id)
            cached = self.cached_row_over(i, ids)
            if cached is not None:
                self.metrics.incr("sim.row_hits")
                self.metrics.incr("sim.pairs_saved", n)
                return cached
            values = np.asarray(base_kernel(i), dtype=np.float64)
            self.metrics.incr("sim.row_misses")
            self.metrics.incr("sim.pairs_evaluated", n)
            existing = self._rows.get(i)
            if existing is None:
                self._store_row(i, ids, values)
            else:
                self._merge_row(i, existing[0], existing[1], ids, values)
            return values

        return kernel

    def rows_kernel(self, ids: np.ndarray):
        """Block kernel: gather cached rows, batch-evaluate the misses.

        Each block splits into rows the cache can serve as pure gathers
        and rows it cannot; the misses go through the *base model's*
        block kernel in a single call (one kernel invocation per block
        regardless of hit pattern) and are stored/merged afterwards.
        Values are identical to the scalar cache path because both
        serve exactly the cached values or exactly the base kernel's
        rows.
        """
        ids = np.asarray(ids, dtype=np.int64)
        base_rows = self.base.rows_kernel(ids)
        n = len(ids)

        def kernel(obj_ids: np.ndarray) -> np.ndarray:
            obj_ids = np.asarray(obj_ids, dtype=np.int64)
            out = np.empty((len(obj_ids), n), dtype=np.float64)
            miss_rows: list[int] = []
            for b, obj in enumerate(obj_ids):
                cached = self.cached_row_over(int(obj), ids)
                if cached is not None:
                    self.metrics.incr("sim.row_hits")
                    self.metrics.incr("sim.pairs_saved", n)
                    out[b] = cached
                else:
                    miss_rows.append(b)
            if miss_rows:
                missing = obj_ids[miss_rows]
                with self.tracer.span(
                    "cache.fill", rows=len(miss_rows), width=n
                ):
                    values = np.asarray(
                        base_rows(missing), dtype=np.float64
                    )
                self.metrics.incr("sim.row_misses", len(miss_rows))
                self.metrics.incr(
                    "sim.pairs_evaluated", n * len(miss_rows)
                )
                for row, b in enumerate(miss_rows):
                    i = int(obj_ids[b])
                    out[b] = values[row]
                    existing = self._rows.get(i)
                    if existing is None:
                        self._store_row(i, ids, values[row])
                    else:
                        self._merge_row(
                            i, existing[0], existing[1], ids, values[row]
                        )
            return out

        return kernel

    def weighted_sims_sum(
        self,
        target_ids: np.ndarray,
        source_ids: np.ndarray,
        source_weights: np.ndarray,
    ) -> np.ndarray:
        """Row-by-row weighted masses, populating the row cache.

        Deliberately does *not* delegate to a vectorized base
        implementation: reducing per cached/cacheable row keeps every
        mass bit-identical between cold and warm runs and leaves the
        rows behind for the selection that follows — this is how the
        prefetcher and the warm-start capture fill the cache.
        """
        target_ids = np.asarray(target_ids, dtype=np.int64)
        source_ids = np.asarray(source_ids, dtype=np.int64)
        weights = np.asarray(source_weights, dtype=np.float64)
        if len(source_ids) != len(weights):
            raise ValueError("source_ids and source_weights must align")
        out = np.empty(len(target_ids), dtype=np.float64)
        for row, t in enumerate(target_ids):
            out[row] = float(np.dot(weights, self.sims_to(int(t), source_ids)))
        return out

    # ------------------------------------------------------------------
    # Cache-specific surface
    # ------------------------------------------------------------------

    def cached_row_over(self, i: int, ids: np.ndarray) -> np.ndarray | None:
        """Values of ``sims_to(i, ids)`` if fully cached, else ``None``.

        Never evaluates the base model — this is the peek the
        warm-start capture uses to harvest for free.
        """
        row = self._rows.get(int(i))
        if row is None:
            return None
        cached_ids, cached_vals = row
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) == 0:
            return np.zeros(0, dtype=np.float64)
        pos = np.searchsorted(cached_ids, ids)
        pos_safe = np.minimum(pos, len(cached_ids) - 1)
        if not np.array_equal(cached_ids[pos_safe], ids):
            return None
        self._rows.move_to_end(int(i))
        return cached_vals[pos_safe]

    def invalidate(self) -> None:
        """Drop every cached value and bump :attr:`generation`.

        Must be called whenever the wrapped model (or the dataset it
        was built from) changes; dependents compare generations to
        notice that derived material is stale.
        """
        self._rows.clear()
        self._scalars.clear()
        self._entries = 0
        self.generation += 1
        self.metrics.incr("sim.invalidations")

    def counters(self) -> dict[str, int]:
        """Hot counters as plain ints (for ``SelectionResult.stats``)."""
        m = self.metrics
        hits = (
            m.count("sim.row_hits")
            + m.count("sim.row_partial_hits")
            + m.count("sim.scalar_hits")
        )
        misses = m.count("sim.row_misses") + m.count("sim.scalar_misses")
        return {
            "pairs_evaluated": int(m.count("sim.pairs_evaluated")),
            "pairs_saved": int(m.count("sim.pairs_saved")),
            "hits": int(hits),
            "misses": int(misses),
        }

    @property
    def entries(self) -> int:
        """Floats currently held by the row store."""
        return self._entries

    @property
    def rows_cached(self) -> int:
        """Number of object rows currently cached."""
        return len(self._rows)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _scalar_from_rows(self, i: int, j: int) -> float | None:
        for a, b in ((i, j), (j, i)):
            row = self._rows.get(a)
            if row is None:
                continue
            cached_ids, cached_vals = row
            pos = int(np.searchsorted(cached_ids, b))
            if pos < len(cached_ids) and int(cached_ids[pos]) == b:
                return float(cached_vals[pos])
        return None

    def _store_row(self, i: int, ids: np.ndarray, values: np.ndarray) -> None:
        if self.max_entries == 0 or len(ids) > self.max_entries:
            return
        if len(ids) > 1:
            diffs = np.diff(ids)
            if (diffs > 0).all():  # already sorted+unique: the hot case
                sorted_ids, sorted_vals = ids, values
            elif (diffs[diffs != 0] > 0).all():  # sorted with duplicates
                sorted_ids, first = np.unique(ids, return_index=True)
                sorted_vals = values[first]
            else:
                order = np.argsort(ids, kind="stable")
                sorted_ids = ids[order]
                if (np.diff(sorted_ids) == 0).any():
                    sorted_ids, first = np.unique(ids, return_index=True)
                    sorted_vals = values[first]
                else:
                    sorted_vals = values[order]
        else:
            sorted_ids, sorted_vals = ids, values
        self._rows[i] = (sorted_ids, np.array(sorted_vals, dtype=np.float64))
        self._entries += len(sorted_ids)
        self._evict()

    def _merge_row(
        self,
        i: int,
        cached_ids: np.ndarray,
        cached_vals: np.ndarray,
        new_ids: np.ndarray,
        new_vals: np.ndarray,
    ) -> None:
        if self.max_entries == 0:
            return
        all_ids = np.concatenate([cached_ids, new_ids])
        all_vals = np.concatenate([cached_vals, new_vals])
        merged_ids, first = np.unique(all_ids, return_index=True)
        if len(merged_ids) > self.max_entries:
            return
        merged_vals = all_vals[first]
        self._entries += len(merged_ids) - len(cached_ids)
        self._rows[i] = (merged_ids, merged_vals)
        self._rows.move_to_end(i)
        self._evict()

    def _evict(self) -> None:
        while self._entries > self.max_entries and self._rows:
            _, (old_ids, _vals) = self._rows.popitem(last=False)
            self._entries -= len(old_ids)
            self.metrics.incr("sim.row_evictions")
