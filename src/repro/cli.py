"""Command-line interface: generate corpora, select, explore.

Usage::

    python -m repro generate --preset uk --n 50000 --out corpus.jsonl
    python -m repro select corpus.jsonl --region 0.3,0.3,0.5,0.5 --k 20
    python -m repro explore corpus.jsonl --k 15 --steps 5 --prefetch
    python -m repro serve corpus.jsonl --port 8080 --k 20
    python -m repro tiles build corpus.jsonl --out tiles.npz
    python -m repro tiles info tiles.npz

``select`` prints the chosen objects (and optionally an ASCII map or
an SVG file); ``explore`` replays a random navigation trace through a
:class:`~repro.core.session.MapSession` and reports per-operation
response times — a one-command demo of the ISOS machinery.  ``serve``
runs the multi-user JSON-over-HTTP selection service
(:mod:`repro.service`, see ``docs/SERVICE.md``) over one or more
corpora.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

import numpy as np

from repro import (
    Budget,
    Deadline,
    FaultInjector,
    MapSession,
    MetricsRegistry,
    RegionQuery,
    SimilarityCache,
    greedy_select,
    sass_select,
)
from repro.parallel import WorkerPool
from repro.robustness.faults import ALL_POINTS, STANDARD_POINTS
from repro.trace import Tracer, format_span_tree, write_chrome_trace
from repro.datasets import (
    load_jsonl,
    random_navigation_trace,
    save_jsonl,
    sg_pois,
    uk_tweets,
    us_tweets,
)
from repro.geo import BoundingBox
from repro.viz import render_ascii, render_svg

_PRESETS = {"uk": uk_tweets, "us": us_tweets, "poi": sg_pois}


def _parse_fault(text: str) -> tuple[str, float]:
    """Parse ``point[:probability]`` fault specs (e.g. ``index.query:0.5``)."""
    point, _, prob = text.partition(":")
    if point not in ALL_POINTS:
        raise argparse.ArgumentTypeError(
            f"unknown fault point {point!r}; choose from "
            + ", ".join(ALL_POINTS)
        )
    try:
        probability = float(prob) if prob else 1.0
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad fault probability {prob!r}"
        ) from None
    if not 0.0 <= probability <= 1.0:
        raise argparse.ArgumentTypeError("fault probability must be in [0, 1]")
    return point, probability


def _parse_deadline_ms(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad deadline {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"deadline must be positive, got {text}"
        )
    return value


def _parse_workers(text: str) -> "int | str":
    """Parse ``--workers``: a non-negative integer or ``auto``."""
    if text == "auto":
        return text
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer or 'auto', got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("workers must be >= 0")
    return value


def _parse_batch_size(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad batch size {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError("batch size must be >= 1")
    return value


def _parse_region(text: str) -> BoundingBox:
    parts = text.split(",")
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            "region must be 'minx,miny,maxx,maxy'"
        )
    try:
        minx, miny, maxx, maxy = (float(p) for p in parts)
        return BoundingBox(minx, miny, maxx, maxy)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_window(text: str) -> tuple[float, float]:
    parts = text.split(",")
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(
            "time window must be 't_start,t_end'"
        )
    try:
        t_start, t_end = (float(p) for p in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad time window {text!r}"
        ) from None
    if t_end <= t_start:
        raise argparse.ArgumentTypeError(f"empty time window {text!r}")
    return t_start, t_end


def _cmd_generate(args: argparse.Namespace) -> int:
    factory = _PRESETS[args.preset]
    dataset = factory(
        n=args.n, seed=args.seed, with_timestamps=args.timestamps
    )
    save_jsonl(dataset, args.out)
    stamped = " (timestamped)" if args.timestamps else ""
    print(f"wrote {len(dataset):,} objects to {args.out}{stamped}")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    import dataclasses

    dataset = load_jsonl(args.corpus)
    metrics = MetricsRegistry()
    if args.cache:
        dataset = dataclasses.replace(
            dataset,
            similarity=SimilarityCache(dataset.similarity, metrics=metrics),
        )
    region = args.region or dataset.frame()
    query = RegionQuery.with_theta_fraction(
        region, k=args.k, theta_fraction=args.theta_fraction
    )
    budget = (
        Budget(Deadline.after(args.deadline_ms / 1000.0))
        if args.deadline_ms is not None
        else None
    )
    pool = None
    if args.workers:
        pool = WorkerPool(
            args.workers, similarity=dataset.similarity, metrics=metrics
        )
    try:
        if args.sample:
            result = sass_select(
                dataset, query, rng=np.random.default_rng(args.seed),
                budget=budget, batch_size=args.batch_size, pool=pool,
            )
        else:
            candidates = (
                dataset.keyword_filter(args.filter) if args.filter else None
            )
            result = greedy_select(
                dataset, query, candidates=candidates, budget=budget,
                metrics=metrics, batch_size=args.batch_size, pool=pool,
            )
    finally:
        if pool is not None:
            pool.close()
    flags = " [degraded]" if result.degraded else ""
    print(
        f"selected {len(result)} of {len(result.region_ids)} objects, "
        f"score={result.score:.4f}, "
        f"{result.stats.get('elapsed_s', 0.0) * 1000:.1f} ms{flags}"
    )
    for obj in result.selected:
        text = dataset.texts[int(obj)] if dataset.texts else ""
        print(
            f"  #{int(obj)}  ({dataset.xs[obj]:.4f}, {dataset.ys[obj]:.4f})"
            f"  w={dataset.weights[obj]:.2f}  {text}"
        )
    if args.map:
        print(render_ascii(dataset, region, selected=result.selected))
    if args.svg:
        render_svg(dataset, region, selected=result.selected, path=args.svg)
        print(f"svg written to {args.svg}")
    if args.metrics:
        print(metrics.format())
    return 0


def _print_step(step, args) -> None:
    flags = " [prefetched]" if step.used_prefetch else ""
    if step.warm_started:
        flags += " [warm]"
    if step.tile_seeded:
        flags += " [tiles]"
    if step.delta_seeded:
        flags += " [delta]"
    if step.temporal_seeded:
        flags += " [temporal]"
    if step.degraded:
        flags += f" [degraded:{step.tier}]"
    if args.cache:
        flags += f" [cache {step.cache_hits}h/{step.cache_misses}m]"
    if step.time_window is not None:
        flags += (
            f" [t {step.time_window[0]:.3f}..{step.time_window[1]:.3f})"
        )
    print(
        f"{step.operation:8s} {len(step.result):3d} markers  "
        f"score={step.result.score:.4f}  "
        f"{step.elapsed_s * 1000:8.1f} ms{flags}"
    )
    if args.trace_summary and step.span is not None:
        print(format_span_tree(step.span))


def _cmd_explore(args: argparse.Namespace) -> int:
    dataset = load_jsonl(args.corpus)
    if args.time_window is not None and dataset.ts is None:
        print(
            "corpus has no timestamps; regenerate with "
            "'generate --timestamps'",
            file=sys.stderr,
        )
        return 2
    rng = np.random.default_rng(args.seed)
    trace = random_navigation_trace(
        dataset, args.steps, region_fraction=args.region_fraction, rng=rng
    )
    injector = None
    if args.fault:
        injector = FaultInjector(seed=args.seed)
        for point, probability in args.fault:
            injector.arm(point, probability=probability)
    metrics = MetricsRegistry()
    tracer = None
    if args.trace or args.trace_summary:
        tracer = Tracer(metrics=metrics)
    tiles = None
    if args.tiles:
        from repro.tiles import TileStore

        tiles = TileStore.load(args.tiles)
    session = MapSession(
        dataset,
        k=args.k,
        prefetch=args.prefetch,
        deadline_s=(
            args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
        ),
        fault_injector=injector,
        similarity_cache=args.cache,
        warm_start=not args.no_warm_start,
        delta=args.delta,
        tiles=tiles,
        metrics=metrics,
        workers=args.workers,
        batch_size=args.batch_size,
        tracer=tracer,
        time_window=args.time_window,
    )
    if (
        session.tiles is not None
        and not session.tiles.compatible_with(session.dataset)
    ):
        print(
            "warning: tile store was built from a different corpus; "
            "every step will serve cold",
            file=sys.stderr,
        )
    for step in trace.replay(session):
        _print_step(step, args)
    if args.time_window is not None and args.time_steps:
        dt = args.time_dt
        if dt is None:
            dt = (args.time_window[1] - args.time_window[0]) / 2.0
        for _ in range(args.time_steps):
            _print_step(session.time_step(dt), args)
    session.close()
    if args.trace:
        write_chrome_trace(tracer, args.trace)
        spans = sum(1 for root in tracer.roots for _ in root.walk())
        print(f"trace: {spans} spans over {len(tracer.roots)} trees "
              f"written to {args.trace}")
    if args.metrics:
        print(session.metrics.format())
    return 0


def _cmd_tiles_build(args: argparse.Namespace) -> int:
    import time

    from repro.tiles import TileScheme, build_tile_store

    dataset = load_jsonl(args.corpus)
    scheme = TileScheme(frame=dataset.frame(), max_zoom=args.max_zoom)
    zooms = None
    if args.zooms:
        try:
            zooms = sorted({int(z) for z in args.zooms.split(",")})
        except ValueError:
            print(f"bad --zooms {args.zooms!r}", file=sys.stderr)
            return 2
    metrics = MetricsRegistry()
    pool = None
    if args.workers:
        pool = WorkerPool(
            args.workers, similarity=dataset.similarity, metrics=metrics
        )
    # repro-lint: disable=RL002 -- reporting-only duration measurement (CLI progress output); never influences which objects are selected
    started = time.perf_counter()
    try:
        store = build_tile_store(
            dataset,
            scheme=scheme,
            zooms=zooms,
            k=args.k,
            theta_fraction=args.theta_fraction,
            byte_budget=args.byte_budget,
            pool=pool,
            metrics=metrics,
        )
    finally:
        if pool is not None:
            pool.close()
    # repro-lint: disable=RL002 -- reporting-only duration measurement (CLI progress output); never influences which objects are selected
    elapsed = time.perf_counter() - started
    store.save(args.out)
    stats = store.stats()
    print(
        f"built {stats['tiles']} tiles over "
        f"{len(store.meta.zooms_built)} zoom level(s) from "
        f"{len(dataset):,} objects in {elapsed:.1f}s "
        f"({stats['bytes'] / 1e6:.1f} MB) -> {args.out}"
    )
    return 0


def _cmd_tiles_info(args: argparse.Namespace) -> int:
    from repro.tiles import TileStore

    store = TileStore.load(args.store)
    stats = store.stats()
    meta = store.meta
    print(f"tile store {args.store}")
    print(f"  objects:        {meta.objects:,}")
    print(f"  fingerprint:    {meta.fingerprint[:16]}…")
    print(f"  frame:          {tuple(round(v, 6) for v in meta.frame)}")
    print(f"  max zoom:       {meta.max_zoom}")
    print(f"  zooms built:    {meta.zooms_built}")
    print(f"  per-tile k/θ:   {meta.k} / {meta.theta_fraction}")
    print(f"  tiles resident: {stats['tiles']} ({stats['bytes'] / 1e6:.1f} MB,"
          f" budget {stats['byte_budget'] or 'none'})")
    for zoom, count in stats["tiles_per_zoom"].items():
        print(f"    zoom {zoom}: {count} tiles")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import SelectionService, ServiceHTTPServer

    datasets = {}
    for spec in args.corpus:
        name, sep, file = spec.partition("=")
        if not sep:
            name, file = f"corpus{len(datasets)}", spec
        datasets[name] = load_jsonl(file)
    injector = None
    if args.fault:
        injector = FaultInjector(seed=args.seed)
        for point, probability in args.fault:
            injector.arm(point, probability=probability)
    metrics = MetricsRegistry()
    tiles = None
    if args.tiles:
        from repro.tiles import TileSelectionCache, TileStore

        # One shared read-only cache: the store is internally locked,
        # so every session of the matching corpus serves from it;
        # sessions on other corpora skip it via the fingerprint check.
        tiles = TileSelectionCache(TileStore.load(args.tiles), metrics=metrics)

    async def run() -> None:
        # Built inside the running loop so the admission semaphore and
        # per-session locks bind to the serving event loop.
        from repro.robustness import CircuitBreaker
        from repro.service import AdmissionController

        breaker = CircuitBreaker(name="service")
        service = SelectionService(
            datasets,
            default_deadline_ms=args.deadline_ms,
            admission=AdmissionController(
                max_concurrency=args.max_concurrency,
                max_queue_depth=args.max_queue,
                queue_timeout_s=args.queue_timeout_ms / 1000.0,
                breaker=breaker,
                fault_injector=injector,
                metrics=metrics,
            ),
            breaker=breaker,
            fault_injector=injector,
            metrics=metrics,
            session_options={
                "k": args.k,
                "prefetch": args.prefetch,
                "workers": args.workers,
                "tiles": tiles,
            },
            max_sessions=args.max_sessions,
            session_ttl_s=args.session_ttl if args.session_ttl > 0 else None,
            seed=args.seed,
        )
        async with ServiceHTTPServer(
            service, host=args.host, port=args.port
        ) as server:
            print(
                f"serving {', '.join(sorted(datasets))} on "
                f"http://{server.host}:{server.port} "
                f"(concurrency={args.max_concurrency}, "
                f"queue={args.max_queue}, "
                f"deadline={args.deadline_ms:g}ms)"
            )
            await asyncio.Event().wait()  # until interrupted

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    if args.metrics:
        print(metrics.format())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Representative, visibility-constrained selection of "
                    "geospatial objects (SIGMOD 2018 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic corpus")
    gen.add_argument("--preset", choices=sorted(_PRESETS), default="uk")
    gen.add_argument("--n", type=int, default=None,
                     help="object count (preset default if omitted)")
    gen.add_argument("--seed", type=int, default=2018)
    gen.add_argument("--timestamps", action="store_true",
                     help="attach per-object event times in [0, 1] "
                          "(bursty per-topic model; enables the time "
                          "axis in explore/serve)")
    gen.add_argument("--out", required=True, help="output JSONL path")
    gen.set_defaults(func=_cmd_generate)

    sel = sub.add_parser("select", help="run an SOS selection")
    sel.add_argument("corpus", help="JSONL corpus path")
    sel.add_argument("--region", type=_parse_region, default=None,
                     help="viewport 'minx,miny,maxx,maxy' (default: all)")
    sel.add_argument("--k", type=int, default=20)
    sel.add_argument("--theta-fraction", type=float, default=0.003)
    sel.add_argument("--filter", default=None,
                     help="keyword filtering condition")
    sel.add_argument("--sample", action="store_true",
                     help="use SaSS sampling instead of the full greedy")
    sel.add_argument("--seed", type=int, default=0)
    sel.add_argument("--deadline-ms", type=_parse_deadline_ms, default=None,
                     help="anytime budget: return the partial prefix "
                          "after this many milliseconds")
    sel.add_argument("--map", action="store_true",
                     help="render an ASCII map of the selection")
    sel.add_argument("--svg", default=None, help="write an SVG map here")
    sel.add_argument("--cache", action="store_true",
                     help="read similarities through a memoizing "
                          "SimilarityCache")
    sel.add_argument("--workers", type=_parse_workers, default=0,
                     help="worker pool size for heap initialization "
                          "(integer or 'auto'; selections are "
                          "bit-identical at any count)")
    sel.add_argument("--batch-size", type=_parse_batch_size, default=None,
                     help="candidate block size for batched gain "
                          "evaluation (default 256, 1 = scalar)")
    sel.add_argument("--metrics", action="store_true",
                     help="print the counter/timer registry afterwards")
    sel.set_defaults(func=_cmd_select)

    exp = sub.add_parser("explore", help="replay an interactive session")
    exp.add_argument("corpus", help="JSONL corpus path")
    exp.add_argument("--k", type=int, default=20)
    exp.add_argument("--steps", type=int, default=5)
    exp.add_argument("--region-fraction", type=float, default=0.1)
    exp.add_argument("--prefetch", action="store_true")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument("--deadline-ms", type=_parse_deadline_ms, default=None,
                     help="per-operation response deadline; late "
                          "selections degrade through the ladder")
    exp.add_argument("--fault", type=_parse_fault, action="append",
                     default=None, metavar="POINT[:PROB]",
                     help="arm a fault injection point "
                          f"({', '.join(STANDARD_POINTS)}); repeatable")
    exp.add_argument("--cache", action="store_true",
                     help="enable the session similarity cache "
                          "(and warm starts)")
    exp.add_argument("--no-warm-start", action="store_true",
                     help="keep the similarity cache but disable "
                          "selection warm starts")
    exp.add_argument("--delta", action="store_true",
                     help="maintain O(delta) heap-seeding bounds "
                          "between steps (docs/DELTA.md)")
    exp.add_argument("--time-window", type=_parse_window, default=None,
                     metavar="T0,T1",
                     help="restrict every step to objects with "
                          "t in [T0, T1); requires a corpus generated "
                          "with --timestamps")
    exp.add_argument("--time-steps", type=int, default=0,
                     help="slide the time window this many times after "
                          "the spatial trace (docs/TEMPORAL.md)")
    exp.add_argument("--time-dt", type=float, default=None,
                     help="stride of each time-slider step "
                          "(default: half the window span)")
    exp.add_argument("--workers", type=_parse_workers, default=0,
                     help="worker pool size for selections and "
                          "prefetch precompute (integer or 'auto')")
    exp.add_argument("--batch-size", type=_parse_batch_size, default=None,
                     help="candidate block size for batched gain "
                          "evaluation (default 256, 1 = scalar)")
    exp.add_argument("--trace", default=None, metavar="PATH",
                     help="record a hierarchical span trace and write "
                          "it here as Chrome-trace JSON (open in "
                          "chrome://tracing or Perfetto)")
    exp.add_argument("--trace-summary", action="store_true",
                     help="print an ASCII span tree under every step")
    exp.add_argument("--tiles", default=None, metavar="STORE",
                     help="tile store (.npz from 'tiles build') to seed "
                          "navigation steps from")
    exp.add_argument("--metrics", action="store_true",
                     help="print the counter/timer registry afterwards")
    exp.set_defaults(func=_cmd_explore)

    srv = sub.add_parser(
        "serve", help="run the multi-user HTTP selection service"
    )
    srv.add_argument("corpus", nargs="+", metavar="[NAME=]CORPUS",
                     help="JSONL corpus path(s); prefix with NAME= to "
                          "choose the dataset name clients see")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8080,
                     help="TCP port (0 = pick a free one)")
    srv.add_argument("--k", type=int, default=20)
    srv.add_argument("--prefetch", action="store_true",
                     help="enable Sec. 5.2 prefetching in every session")
    srv.add_argument("--seed", type=int, default=2018)
    srv.add_argument("--deadline-ms", type=_parse_deadline_ms, default=250.0,
                     help="default per-request deadline budget "
                          "(queueing + handling; default 250)")
    srv.add_argument("--max-concurrency", type=int, default=8,
                     help="requests handled simultaneously")
    srv.add_argument("--max-queue", type=int, default=64,
                     help="requests allowed to wait for a slot; beyond "
                          "this arrivals are shed (429)")
    srv.add_argument("--queue-timeout-ms", type=_parse_deadline_ms,
                     default=500.0,
                     help="longest any request may queue before shedding")
    srv.add_argument("--max-sessions", type=int, default=256,
                     help="live session cap")
    srv.add_argument("--session-ttl", type=float, default=1800.0,
                     help="idle session lifetime in seconds "
                          "(0 disables TTL eviction)")
    srv.add_argument("--workers", type=_parse_workers, default=0,
                     help="per-session worker pool size")
    srv.add_argument("--fault", type=_parse_fault, action="append",
                     default=None, metavar="POINT[:PROB]",
                     help="arm a fault injection point "
                          f"({', '.join(ALL_POINTS)}); repeatable")
    srv.add_argument("--metrics", action="store_true",
                     help="print the counter/timer registry on shutdown")
    srv.add_argument("--tiles", default=None, metavar="STORE",
                     help="tile store (.npz from 'tiles build') shared "
                          "read-only across every session of the "
                          "matching corpus")
    srv.set_defaults(func=_cmd_serve)

    tiles = sub.add_parser(
        "tiles", help="precompute / inspect tile-grain selection stores"
    )
    tiles_sub = tiles.add_subparsers(dest="tiles_command", required=True)
    tb = tiles_sub.add_parser(
        "build", help="offline zoom-pyramid precompute (docs/TILES.md)"
    )
    tb.add_argument("corpus", help="JSONL corpus path")
    tb.add_argument("--out", required=True, help="output .npz store path")
    tb.add_argument("--max-zoom", type=int, default=4,
                    help="pyramid depth (level z has 4^z tiles)")
    tb.add_argument("--zooms", default=None,
                    help="comma-separated levels to build "
                         "(default: all of 0..max-zoom)")
    tb.add_argument("--k", type=int, default=32,
                    help="per-tile selection size")
    tb.add_argument("--theta-fraction", type=float, default=0.02,
                    help="per-tile visibility threshold "
                         "(fraction of tile side)")
    tb.add_argument("--byte-budget", type=int, default=None,
                    help="optional store byte budget (LRU eviction)")
    tb.add_argument("--workers", type=_parse_workers, default=0,
                    help="parallel tile builds (0=serial, or 'auto')")
    tb.set_defaults(func=_cmd_tiles_build)
    ti = tiles_sub.add_parser("info", help="summarize a tile store")
    ti.add_argument("store", help=".npz store path")
    ti.set_defaults(func=_cmd_tiles_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
