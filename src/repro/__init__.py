"""repro — reproduction of "Efficient Selection of Geospatial Data on
Maps for Interactive and Visualized Exploration" (Guo, Feng, Cong, Bao;
SIGMOD 2018).

The library selects a small set of *representative*, mutually
*visible* geospatial objects for a map viewport (the SOS problem) and
keeps the selection *consistent* as the user zooms and pans (the ISOS
problem), with the paper's lazy-forward greedy (1/8-approximate),
pre-fetching accelerator, and SaSS sampling extension.

Quickstart::

    import numpy as np
    from repro import GeoDataset, RegionQuery, greedy_select
    from repro.geo import BoundingBox

    rng = np.random.default_rng(7)
    xs, ys = rng.random(10_000), rng.random(10_000)
    dataset = GeoDataset.build(xs, ys)

    region = BoundingBox(0.2, 0.2, 0.4, 0.4)
    query = RegionQuery.with_theta_fraction(region, k=25)
    result = greedy_select(dataset, query)
    print(result.selected, result.score)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.cache import (
    EquivalenceViolation,
    SelectionCache,
    SimilarityCache,
)
from repro.core import (
    Aggregation,
    FrequencyPredictor,
    GeoDataset,
    IsosQuery,
    MapSession,
    NavigationPredictor,
    NavigationStep,
    PrefetchData,
    Prefetcher,
    RegionQuery,
    SelectionResult,
    StreamLengthMismatch,
    StreamingSelector,
    TemporalPrefetchData,
    TemporalPrefetcher,
    TimeWindowQuery,
    assign_representatives,
    exact_select,
    greedy_select,
    hoeffding_sample_size,
    isos_select,
    representative_score,
    represented_objects,
    sass_select,
    serfling_sample_size,
    similarity_to_set,
    theta_fraction_for_screen,
)
from repro.geo import BoundingBox, Point
from repro.metrics import MetricsRegistry
from repro.parallel import (
    DEFAULT_BATCH_SIZE,
    WorkerPool,
    resolve_backend,
    resolve_workers,
)
from repro.robustness import (
    Budget,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    InfeasibleSelection,
    PrefetchUnavailable,
    RobustnessError,
    Tier,
    select_with_ladder,
)
from repro.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    chrome_trace,
    format_span_tree,
    write_chrome_trace,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregation",
    "BoundingBox",
    "Budget",
    "CircuitBreaker",
    "DEFAULT_BATCH_SIZE",
    "Deadline",
    "DeadlineExceeded",
    "EquivalenceViolation",
    "FaultInjector",
    "FrequencyPredictor",
    "GeoDataset",
    "InfeasibleSelection",
    "IsosQuery",
    "MapSession",
    "MetricsRegistry",
    "NULL_TRACER",
    "NavigationPredictor",
    "NavigationStep",
    "NullTracer",
    "Point",
    "PrefetchData",
    "PrefetchUnavailable",
    "Prefetcher",
    "RegionQuery",
    "RobustnessError",
    "SelectionCache",
    "SelectionResult",
    "SimilarityCache",
    "Span",
    "StreamLengthMismatch",
    "StreamingSelector",
    "TemporalPrefetchData",
    "TemporalPrefetcher",
    "Tier",
    "TimeWindowQuery",
    "Tracer",
    "WorkerPool",
    "__version__",
    "assign_representatives",
    "chrome_trace",
    "exact_select",
    "format_span_tree",
    "greedy_select",
    "hoeffding_sample_size",
    "isos_select",
    "representative_score",
    "represented_objects",
    "resolve_backend",
    "resolve_workers",
    "sass_select",
    "select_with_ladder",
    "serfling_sample_size",
    "similarity_to_set",
    "theta_fraction_for_screen",
    "write_chrome_trace",
]
