"""Brute-force exact SOS solver for tiny instances.

The SOS problem is NP-hard (Theorem 3.2), so exact solving is only
feasible for very small populations — which is exactly what tests need
to validate the greedy's 1/8 approximation guarantee (Theorem 4.4)
empirically.  The search enumerates visibility-feasible subsets with
branch-and-bound pruning on the (monotone) score.

Note the optimum may select *fewer* than ``k`` objects when the
visibility constraint caps the feasible set size; the greedy behaves
the same way, so comparisons remain apples-to-apples.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.problem import Aggregation, RegionQuery, SelectionResult
from repro.core.scoring import representative_score

_MAX_EXACT_POPULATION = 64


def exact_select(
    dataset: GeoDataset,
    query: RegionQuery,
    aggregation: Aggregation = Aggregation.MAX,
    max_population: int = _MAX_EXACT_POPULATION,
) -> SelectionResult:
    """Optimal SOS solution by exhaustive search (tiny inputs only).

    Raises ``ValueError`` when the region population exceeds
    ``max_population`` — the runtime is exponential and the guard
    protects callers from accidental blowups.
    """
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    started = time.perf_counter()
    region_ids = dataset.objects_in(query.region)
    n = len(region_ids)
    if n > max_population:
        raise ValueError(
            f"exact solver limited to {max_population} objects, region has {n}"
        )

    # Precompute pairwise feasibility (visibility constraint).
    xs = dataset.xs[region_ids]
    ys = dataset.ys[region_ids]
    dx = xs[:, None] - xs[None, :]
    dy = ys[:, None] - ys[None, :]
    compatible = np.hypot(dx, dy) >= query.theta
    np.fill_diagonal(compatible, True)

    best_sel: list[int] = []
    best_score = -1.0
    order = list(range(n))

    def search(start: int, chosen: list[int]) -> None:
        nonlocal best_sel, best_score
        score = representative_score(
            dataset, region_ids, region_ids[chosen], aggregation
        )
        if score > best_score or (
            score == best_score and len(chosen) < len(best_sel)
        ):
            best_score = score
            best_sel = list(chosen)
        if len(chosen) == query.k:
            return
        for idx in order[start:]:
            if all(compatible[idx, c] for c in chosen):
                chosen.append(idx)
                search(idx + 1, chosen)
                chosen.pop()

    search(0, [])
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    elapsed = time.perf_counter() - started
    selected = region_ids[np.asarray(best_sel, dtype=np.int64)]
    return SelectionResult(
        selected=selected,
        score=max(best_score, 0.0),
        region_ids=region_ids,
        stats={"elapsed_s": elapsed, "population": n},
    )
