"""The lazy-forward max-heap (the engine of Algorithm 1).

The paper's "lazy forward" strategy rests on submodularity (Lemma 4.1):
a marginal gain computed in an earlier iteration upper-bounds the gain
now, so the heap can carry stale values and only recompute for objects
that actually reach the top.

:class:`LazyForwardHeap` packages that loop.  Entries are
``(gain, iteration_tag, object_id)``; :meth:`pop_best` keeps
re-evaluating the top entry with the caller's gain function until the
top is fresh, exactly as lines 5–10 of Algorithm 1.  Deactivation
(visibility conflicts) is lazy too: dead ids are skipped when popped.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable

_STALE = -1


class LazyForwardHeap:
    """Max-heap over (gain, object id) with lazy re-evaluation.

    Iteration tags follow Algorithm 1: an entry whose tag equals the
    current iteration is exact; anything older is an upper bound to be
    refreshed on pop.  Pushing an id again supersedes prior entries
    (version counters make stale duplicates skippable in O(1)).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, int]] = []
        self._version: dict[int, int] = {}
        self._alive: set[int] = set()
        self.pushes = 0
        self.pops = 0

    def __len__(self) -> int:
        return len(self._alive)

    def push(self, obj_id: int, gain: float, iteration: int = _STALE) -> None:
        """Insert/update ``obj_id`` with the given gain (or upper bound).

        ``iteration`` is the iteration the gain was computed in;
        the default marks it stale so it will be re-evaluated before it
        can win (use this for prefetched upper bounds).
        """
        version = self._version.get(obj_id, 0) + 1
        self._version[obj_id] = version
        self._alive.add(obj_id)
        # Negate gain for heapq's min-heap; version disambiguates stale
        # duplicates of the same id.
        heapq.heappush(self._heap, (-gain, obj_id, version, iteration))
        self.pushes += 1

    def push_many(
        self,
        obj_ids: Iterable[int],
        gains: Iterable[float],
        iteration: int = _STALE,
    ) -> None:
        """Bulk :meth:`push` of aligned ids and gains, then one heapify.

        ``O(m + h)`` for ``m`` new entries over a heap of size ``h``
        instead of ``O(m log h)`` sifts — the win for heap
        initialization, where the whole candidate set arrives at once.
        Pop order is a function of the entry multiset alone (entries
        are unique tuples), so bulk insertion is indistinguishable from
        ``m`` individual pushes.
        """
        appended = 0
        for obj_id, gain in zip(obj_ids, gains):
            obj_id = int(obj_id)
            version = self._version.get(obj_id, 0) + 1
            self._version[obj_id] = version
            self._alive.add(obj_id)
            self._heap.append((-float(gain), obj_id, version, iteration))
            appended += 1
        if appended:
            heapq.heapify(self._heap)
            self.pushes += appended

    def deactivate(self, obj_id: int) -> None:
        """Remove ``obj_id`` from consideration (lazy deletion)."""
        self._alive.discard(obj_id)

    def deactivate_many(self, obj_ids: Iterable[int]) -> None:
        """Remove several ids at once."""
        self._alive.difference_update(int(i) for i in obj_ids)

    def is_active(self, obj_id: int) -> bool:
        """Whether ``obj_id`` is still selectable."""
        return obj_id in self._alive

    def active_ids(self) -> list[int]:
        """Snapshot of currently active ids (unordered)."""
        return list(self._alive)

    def pop_best(
        self, iteration: int, gain_fn: Callable[[int], float]
    ) -> tuple[int, float] | None:
        """Pop the object with the maximum *fresh* gain.

        Repeatedly takes the heap top; if its gain was computed before
        ``iteration``, recomputes it with ``gain_fn`` and pushes it
        back (lazy forward).  Returns ``(obj_id, gain)`` or ``None``
        when no active entries remain.  The returned id is removed
        from the heap.
        """
        while self._heap:
            neg_gain, obj_id, version, tag = heapq.heappop(self._heap)
            if obj_id not in self._alive or version != self._version[obj_id]:
                continue  # dead or superseded entry
            if tag == iteration:
                self._alive.discard(obj_id)
                self.pops += 1
                return obj_id, -neg_gain
            # Stale: its value is an upper bound (Lemma 4.1).  Refresh it.
            fresh = gain_fn(obj_id)
            # CELF shortcut: a fresh gain strictly above every other
            # entry's upper bound is a true unique maximum, selectable
            # without reinserting.  The comparison must be strict: on a
            # tie the entry goes back with a fresh tag, and because the
            # heap orders equal gains by object id the smallest-id
            # member of a tied group is always the one accepted.  That
            # makes every pick canonical — argmax with min-id
            # tie-break — independent of the stale values the heap was
            # seeded with, which is what keeps prefetched and
            # warm-started selections bit-identical to cold ones.
            # (Ties cost one extra heap push/pop, not a group
            # recompute: the reinserted fresh entry re-pops ahead of
            # its equal-gain peers and is accepted by tag.)
            bound = self._peek_bound()
            if bound is None or fresh > bound:
                self._alive.discard(obj_id)
                self.pops += 1
                return obj_id, fresh
            self.push(obj_id, fresh, iteration)
        return None

    def _peek_bound(self) -> float | None:
        """Largest live upper bound in the heap (skims dead entries)."""
        while self._heap:
            neg_gain, obj_id, version, _tag = self._heap[0]
            if obj_id in self._alive and version == self._version[obj_id]:
                return -neg_gain
            heapq.heappop(self._heap)
        return None
