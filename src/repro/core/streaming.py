"""Streaming selection maintenance (extension).

The paper's related work includes viewing *streaming*
spatially-referenced data at interactive rates (Peng et al. [39]).
This module extends the SOS machinery to that setting: a
:class:`StreamingSelector` watches a viewport while objects arrive one
by one and maintains a θ-feasible selection of at most ``k`` objects
with a swap-based heuristic:

* an arrival outside the viewport is only indexed;
* an arrival inside joins the population and is considered for the
  selection: if there is budget and no visibility conflict, it is
  added when its marginal gain is positive; otherwise it may *replace*
  the conflicting/weakest members when doing so raises the score by at
  least ``swap_margin`` (a hysteresis factor that prevents thrashing
  on near-ties — the paper's AQP discussion notes users are annoyed by
  results that keep changing).

Live feeds also *lose* objects — retractions, expiring content — so
the selector supports :meth:`StreamingSelector.remove` and a bulk
:meth:`StreamingSelector.expire_before` over per-object timestamps.
Deleting a selected member triggers a greedy refill of the freed
budget over the surviving population, so the selection stays
θ-feasible and near-maximal under churn.

Index maintenance is incremental: the visibility conflicts of every
arrival are answered from a uniform grid over the *selected* members
(cell size θ, updated in O(1) per selection change) instead of a scan,
and the materialized dataset/index handle used by
:meth:`StreamingSelector.reoptimize` is rebuilt only when the stream
actually mutated since the last build.

The maintained score provably tracks the from-scratch greedy within
the swap slack on every prefix (tested); a full re-optimization is one
:meth:`StreamingSelector.reoptimize` call away.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.greedy import greedy_core
from repro.core.problem import Aggregation, RegionQuery
from repro.geo.bbox import BoundingBox
from repro.index.rtree import RTreeIndex
from repro.similarity import SimilarityModel


class StreamLengthMismatch(ValueError):
    """Batch arrays of unequal length passed to :meth:`StreamingSelector.extend`.

    Raised *before* any object is ingested, so a rejected batch never
    partially applies.
    """


class StreamingSelector:
    """Maintain a k-selection over a viewport as objects stream in.

    Parameters
    ----------
    similarity:
        Model over the *full* stream universe (ids are arrival order;
        models like :class:`MatrixSimilarity` or a pre-fitted
        :class:`CosineTextSimilarity` over the expected stream work).
        Text models can also be fitted incrementally outside and
        re-supplied via :meth:`reoptimize`.
    region:
        The watched viewport.
    k, theta:
        Budget and visibility threshold, as in SOS.
    swap_margin:
        Improvement a swap must achieve to be applied, measured
        relative to one member's average contribution
        (``current_score / k``): the default 0.1 means a swap must be
        worth at least 10% of a typical marker.  0 swaps on any
        improvement; larger values trade score for marker stability.
    aggregation:
        ``MAX`` (paper default) or ``SUM``.  ``AVG`` is rejected: it is
        evaluation-only (not monotone submodular), so neither the swap
        maintenance nor :meth:`reoptimize`'s greedy guarantee applies
        — matching :func:`~repro.core.greedy.greedy_core`'s contract.
    """

    def __init__(
        self,
        similarity: SimilarityModel,
        region: BoundingBox,
        k: int,
        theta: float,
        swap_margin: float = 0.1,
        aggregation: Aggregation = Aggregation.MAX,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        if swap_margin < 0:
            raise ValueError("swap_margin must be non-negative")
        if aggregation is Aggregation.AVG:
            raise ValueError(
                "AVG aggregation is evaluation-only; streaming maintenance "
                "(and reoptimize) requires a monotone submodular objective "
                "(use MAX or SUM)"
            )
        self.similarity = similarity
        self.region = region
        self.k = k
        self.theta = theta
        self.swap_margin = swap_margin
        self.aggregation = aggregation

        self._xs: list[float] = []
        self._ys: list[float] = []
        self._weights: list[float] = []
        self._ts: list[float | None] = []
        self._alive: list[bool] = []
        self._inside: list[int] = []  # live ids inside the viewport
        self.selected: list[int] = []
        self.arrivals = 0
        self.swaps = 0
        self.removals = 0
        self.expired = 0
        # Incremental conflict index over the *selected* members and a
        # mutation counter gating dataset/index rematerialization.
        self._grid = _SelectionGrid(theta)
        self._mutations = 0
        self._cached_dataset: GeoDataset | None = None
        self._cached_at = -1

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------

    def add(
        self,
        x: float,
        y: float,
        weight: float = 1.0,
        ts: float | None = None,
    ) -> int:
        """Ingest one object; returns its id (arrival order).

        The object's similarity row must already be defined by the
        model handed to the constructor (``len(similarity)`` bounds the
        stream length).  ``ts`` is an optional event timestamp consumed
        by :meth:`expire_before`.
        """
        obj_id = len(self._xs)
        if obj_id >= len(self.similarity):
            raise ValueError(
                "stream exceeded the similarity model's universe "
                f"({len(self.similarity)} objects)"
            )
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must be in [0, 1]")
        self._xs.append(float(x))
        self._ys.append(float(y))
        self._weights.append(float(weight))
        self._ts.append(float(ts) if ts is not None else None)
        self._alive.append(True)
        self.arrivals += 1
        self._mutations += 1
        if self.region.contains_point(x, y):
            self._inside.append(obj_id)
            self._consider(obj_id)
        return obj_id

    def extend(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        weights: np.ndarray | None = None,
        ts: np.ndarray | None = None,
    ) -> None:
        """Ingest a batch (convenience wrapper over :meth:`add`).

        All arrays must have the same length; a mismatch raises
        :class:`StreamLengthMismatch` before anything is ingested
        (``zip`` truncation would silently drop the tail of the longer
        arrays).
        """
        n = len(xs)
        lengths = {"xs": n, "ys": len(ys)}
        if weights is not None:
            lengths["weights"] = len(weights)
        if ts is not None:
            lengths["ts"] = len(ts)
        if len(set(lengths.values())) > 1:
            raise StreamLengthMismatch(
                "extend() arrays must have equal lengths, got "
                + ", ".join(f"{k}={v}" for k, v in lengths.items())
            )
        weights = weights if weights is not None else np.ones(n)
        for i in range(n):
            self.add(
                float(xs[i]),
                float(ys[i]),
                float(weights[i]),
                ts=None if ts is None else float(ts[i]),
            )

    def remove(self, obj_id: int) -> None:
        """Delete an ingested object (retraction).

        The object leaves the population immediately; if it was
        selected, the freed budget is greedily refilled from the
        surviving population so the selection stays θ-feasible and
        near-maximal.  Removing an unknown or already-removed id
        raises ``ValueError``.
        """
        if not 0 <= obj_id < len(self._xs):
            raise ValueError(
                f"unknown stream id {obj_id} "
                f"(ids 0..{len(self._xs) - 1} have arrived)"
            )
        if not self._alive[obj_id]:
            raise ValueError(f"stream id {obj_id} was already removed")
        self._drop(obj_id)
        self.removals += 1
        self._refill()

    def expire_before(self, cutoff: float) -> int:
        """Remove every live object with ``ts < cutoff``; returns the count.

        Objects ingested without a timestamp never expire.  One greedy
        refill runs after the whole sweep, not per object.
        """
        doomed = [
            i
            for i, (alive, ts) in enumerate(zip(self._alive, self._ts))
            if alive and ts is not None and ts < cutoff
        ]
        for obj_id in doomed:
            self._drop(obj_id)
        self.expired += len(doomed)
        if doomed:
            self._refill()
        return len(doomed)

    def _drop(self, obj_id: int) -> None:
        """Mark one object dead and detach it from population/selection."""
        self._alive[obj_id] = False
        self._mutations += 1
        try:
            self._inside.remove(obj_id)
        except ValueError:
            pass  # was outside the viewport
        if obj_id in self.selected:
            self.selected.remove(obj_id)
            self._grid.remove(obj_id, self._xs[obj_id], self._ys[obj_id])

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _dataset(self) -> GeoDataset:
        """Materialize the current state for scoring/greedy reuse.

        The handle (including its R-tree) is cached and rebuilt only
        when the stream mutated since the last build — repeated
        :meth:`reoptimize`/:meth:`score` calls on a quiet stream pay
        no index construction.
        """
        if (
            self._cached_dataset is not None
            and self._cached_at == self._mutations
        ):
            return self._cached_dataset
        xs = np.asarray(self._xs)
        ys = np.asarray(self._ys)
        self._cached_dataset = GeoDataset(
            xs=xs,
            ys=ys,
            weights=np.asarray(self._weights),
            similarity=_UniversePrefix(self.similarity, len(xs)),
            index=RTreeIndex(xs, ys),
        )
        self._cached_at = self._mutations
        return self._cached_dataset

    def score(self) -> float:
        """Current ``Sim(O, S)`` over the viewport population."""
        return self._score_of(self.selected)

    def _sims_matrix(self, selection: list[int]) -> np.ndarray:
        """``(len(selection), |inside|)`` similarity matrix."""
        inside = np.asarray(self._inside, dtype=np.int64)
        rows = np.empty((len(selection), len(inside)), dtype=np.float64)
        for row, s in enumerate(selection):
            rows[row] = self.similarity.sims_to(int(s), inside)
        return rows

    def _score_of(self, selection: list[int]) -> float:
        """Eq. 2 over the viewport population, computed directly.

        Avoids materializing a dataset/index per arrival; the stream's
        hot path only touches the similarity model.
        """
        if not selection or not self._inside:
            return 0.0
        sims = self._sims_matrix(selection)
        weights = np.asarray(self._weights)[np.asarray(self._inside)]
        return float(
            np.dot(weights, self._aggregate(sims)) / len(self._inside)
        )

    def _aggregate(self, sims: np.ndarray) -> np.ndarray:
        if len(sims) == 0:
            return np.zeros(sims.shape[1])
        if self.aggregation is Aggregation.MAX:
            return sims.max(axis=0)
        if self.aggregation is Aggregation.SUM:
            return sims.sum(axis=0)
        # AVG is rejected at construction; reaching here is a bug.
        raise AssertionError(f"unreachable aggregation {self.aggregation}")

    def _conflicts(self, obj_id: int, selection: list[int]) -> list[int]:
        """Selected members within θ of ``obj_id`` (incrementally indexed).

        Served from the selection grid: only members in the 3x3 cell
        neighbourhood of the query point are distance-tested, and the
        grid is updated in O(1) as the selection changes — no per-
        arrival rebuild, no full scan.
        """
        x, y = self._xs[obj_id], self._ys[obj_id]
        return [
            s
            for s in self._grid.near(x, y)
            if np.hypot(self._xs[s] - x, self._ys[s] - y) < self.theta
        ]

    def _select(self, obj_id: int) -> None:
        self.selected.append(obj_id)
        self._grid.insert(obj_id, self._xs[obj_id], self._ys[obj_id])

    def _set_selection(self, selection: list[int]) -> None:
        """Wholesale replacement (reoptimize/swap), grid resynced."""
        self.selected = list(selection)
        self._grid.rebuild(
            ((s, self._xs[s], self._ys[s]) for s in self.selected)
        )

    def _consider(self, obj_id: int) -> None:
        conflicts = self._conflicts(obj_id, self.selected)
        if not conflicts and len(self.selected) < self.k:
            self._select(obj_id)
            return

        # Candidate swap: displace conflicts (or, at full budget, the
        # weakest member) and insert the newcomer if the score improves
        # by the margin.  One similarity matrix serves all the score
        # variants below.
        weights = np.asarray(self._weights)[np.asarray(self._inside)]
        sims = self._sims_matrix(self.selected)
        norm = max(len(self._inside), 1)
        current_score = float(np.dot(weights, self._aggregate(sims)) / norm)

        displaced = set(conflicts)
        if not displaced and len(self.selected) >= self.k:
            # Weakest member = the one whose removal hurts least, i.e.
            # the HIGHEST leave-one-out score, computed from the shared
            # matrix without re-querying the model.
            loo_scores = []
            for row in range(len(self.selected)):
                rest = np.delete(sims, row, axis=0)
                loo_scores.append(
                    float(np.dot(weights, self._aggregate(rest)) / norm)
                )
            displaced = {self.selected[int(np.argmax(loo_scores))]}

        trial = [s for s in self.selected if s not in displaced] + [obj_id]
        if len(trial) > self.k:
            return
        keep_rows = [
            row for row, s in enumerate(self.selected) if s not in displaced
        ]
        new_row = self.similarity.sims_to(
            int(obj_id), np.asarray(self._inside, dtype=np.int64)
        )
        trial_sims = np.vstack([sims[keep_rows], new_row[None, :]])
        trial_score = float(np.dot(weights, self._aggregate(trial_sims)) / norm)
        hysteresis = self.swap_margin * current_score / max(self.k, 1)
        if trial_score > current_score + hysteresis:
            self._set_selection(trial)
            self.swaps += 1

    def _refill(self) -> None:
        """Greedily refill freed budget after deletions.

        Standard greedy over the surviving population: repeatedly add
        the θ-feasible candidate with the best score improvement until
        the budget is full or no candidate improves.  Deterministic:
        ties keep the earliest arrival.
        """
        if not self._inside:
            return
        inside = np.asarray(self._inside, dtype=np.int64)
        weights = np.asarray(self._weights)[inside]
        norm = max(len(self._inside), 1)
        while len(self.selected) < self.k:
            sims = self._sims_matrix(self.selected)
            base = self._aggregate(sims)
            current = float(np.dot(weights, base) / norm)
            chosen = None
            chosen_score = current
            taken = set(self.selected)
            for cand in self._inside:
                if cand in taken or self._conflicts(cand, self.selected):
                    continue
                row = self.similarity.sims_to(int(cand), inside)
                if self.aggregation is Aggregation.MAX:
                    agg = np.maximum(base, row) if len(sims) else row
                else:
                    agg = base + row if len(sims) else row
                trial = float(np.dot(weights, agg) / norm)
                if trial > chosen_score + 1e-12:
                    chosen = cand
                    chosen_score = trial
            if chosen is None:
                return
            self._select(chosen)

    def reoptimize(self) -> None:
        """Replace the maintained selection with a fresh greedy run."""
        if not self._inside:
            self._set_selection([])
            return
        dataset = self._dataset()
        result = greedy_core(
            dataset,
            region_ids=np.asarray(self._inside),
            candidate_ids=np.asarray(self._inside),
            mandatory_ids=np.empty(0, dtype=np.int64),
            k=self.k,
            theta=self.theta,
            aggregation=self.aggregation,
        )
        self._set_selection([int(i) for i in result.selected])

    def as_query(self) -> RegionQuery:
        """The equivalent one-shot SOS query over the current state."""
        return RegionQuery(region=self.region, k=self.k, theta=self.theta)


class _SelectionGrid:
    """Uniform grid over the selected members, cell size θ.

    Any point within θ of a query location lies in the 3x3 cell
    neighbourhood around it, so conflict checks touch O(1) cells.
    Insert/remove are O(1); the grid never rebuilds on arrivals, only
    on wholesale selection replacement (:meth:`rebuild`, O(k)).
    With θ = 0 conflicts are impossible (strict ``dist < θ``) and the
    grid stays empty.
    """

    def __init__(self, cell: float) -> None:
        self._cell = cell
        self._cells: dict[tuple[int, int], list[int]] = {}

    def _key(self, x: float, y: float) -> tuple[int, int]:
        return (
            int(math.floor(x / self._cell)),
            int(math.floor(y / self._cell)),
        )

    def insert(self, obj_id: int, x: float, y: float) -> None:
        if self._cell <= 0:
            return
        self._cells.setdefault(self._key(x, y), []).append(obj_id)

    def remove(self, obj_id: int, x: float, y: float) -> None:
        if self._cell <= 0:
            return
        key = self._key(x, y)
        bucket = self._cells.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(obj_id)
        except ValueError:
            return
        if not bucket:
            del self._cells[key]

    def rebuild(self, members) -> None:
        """Resync from ``(id, x, y)`` triples (wholesale replacement)."""
        self._cells.clear()
        for obj_id, x, y in members:
            self.insert(obj_id, x, y)

    def near(self, x: float, y: float) -> list[int]:
        """Members in the 3x3 neighbourhood of ``(x, y)`` (arrival order)."""
        if self._cell <= 0 or not self._cells:
            return []
        cx, cy = self._key(x, y)
        found: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                found.extend(self._cells.get((cx + dx, cy + dy), ()))
        found.sort()
        return found


class _UniversePrefix(SimilarityModel):
    """View of the first ``n`` objects of a larger similarity model.

    Ids at or beyond the prefix bound raise ``IndexError``: the prefix
    advertises ``len(view) == n``, and silently reading the base
    model's later rows would leak objects that have not arrived yet.
    """

    def __init__(self, base: SimilarityModel, n: int) -> None:
        if n > len(base):
            raise ValueError("prefix larger than the base model")
        self._base = base
        self._n = n

    def __len__(self) -> int:
        return self._n

    def sim(self, i: int, j: int) -> float:
        if not (0 <= i < self._n and 0 <= j < self._n):
            raise IndexError(
                f"object id out of the {self._n}-prefix universe: "
                f"sim({i}, {j})"
            )
        return self._base.sim(i, j)

    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(ids, dtype=np.int64)
        if not 0 <= i < self._n or (
            len(ids) and (int(ids.min()) < 0 or int(ids.max()) >= self._n)
        ):
            raise IndexError(
                f"object id out of the {self._n}-prefix universe: "
                f"sims_to({i}, ...)"
            )
        return self._base.sims_to(i, ids)
