"""Streaming selection maintenance (extension).

The paper's related work includes viewing *streaming*
spatially-referenced data at interactive rates (Peng et al. [39]).
This module extends the SOS machinery to that setting: a
:class:`StreamingSelector` watches a viewport while objects arrive one
by one and maintains a θ-feasible selection of at most ``k`` objects
with a swap-based heuristic:

* an arrival outside the viewport is only indexed;
* an arrival inside joins the population and is considered for the
  selection: if there is budget and no visibility conflict, it is
  added when its marginal gain is positive; otherwise it may *replace*
  the conflicting/weakest members when doing so raises the score by at
  least ``swap_margin`` (a hysteresis factor that prevents thrashing
  on near-ties — the paper's AQP discussion notes users are annoyed by
  results that keep changing).

The maintained score provably tracks the from-scratch greedy within
the swap slack on every prefix (tested); a full re-optimization is one
:meth:`StreamingSelector.reoptimize` call away.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.greedy import greedy_core
from repro.core.problem import Aggregation, RegionQuery
from repro.geo.bbox import BoundingBox
from repro.index.rtree import RTreeIndex
from repro.similarity import SimilarityModel


class StreamingSelector:
    """Maintain a k-selection over a viewport as objects stream in.

    Parameters
    ----------
    similarity:
        Model over the *full* stream universe (ids are arrival order;
        models like :class:`MatrixSimilarity` or a pre-fitted
        :class:`CosineTextSimilarity` over the expected stream work).
        Text models can also be fitted incrementally outside and
        re-supplied via :meth:`reoptimize`.
    region:
        The watched viewport.
    k, theta:
        Budget and visibility threshold, as in SOS.
    swap_margin:
        Improvement a swap must achieve to be applied, measured
        relative to one member's average contribution
        (``current_score / k``): the default 0.1 means a swap must be
        worth at least 10% of a typical marker.  0 swaps on any
        improvement; larger values trade score for marker stability.
    """

    def __init__(
        self,
        similarity: SimilarityModel,
        region: BoundingBox,
        k: int,
        theta: float,
        swap_margin: float = 0.1,
        aggregation: Aggregation = Aggregation.MAX,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        if swap_margin < 0:
            raise ValueError("swap_margin must be non-negative")
        self.similarity = similarity
        self.region = region
        self.k = k
        self.theta = theta
        self.swap_margin = swap_margin
        self.aggregation = aggregation

        self._xs: list[float] = []
        self._ys: list[float] = []
        self._weights: list[float] = []
        self._inside: list[int] = []  # ids inside the viewport
        self.selected: list[int] = []
        self.arrivals = 0
        self.swaps = 0

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------

    def add(self, x: float, y: float, weight: float = 1.0) -> int:
        """Ingest one object; returns its id (arrival order).

        The object's similarity row must already be defined by the
        model handed to the constructor (``len(similarity)`` bounds the
        stream length).
        """
        obj_id = len(self._xs)
        if obj_id >= len(self.similarity):
            raise ValueError(
                "stream exceeded the similarity model's universe "
                f"({len(self.similarity)} objects)"
            )
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must be in [0, 1]")
        self._xs.append(float(x))
        self._ys.append(float(y))
        self._weights.append(float(weight))
        self.arrivals += 1
        if self.region.contains_point(x, y):
            self._inside.append(obj_id)
            self._consider(obj_id)
        return obj_id

    def extend(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Ingest a batch (convenience wrapper over :meth:`add`)."""
        weights = weights if weights is not None else np.ones(len(xs))
        for x, y, w in zip(xs, ys, weights):
            self.add(float(x), float(y), float(w))

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _dataset(self) -> GeoDataset:
        """Materialize the current state for scoring/greedy reuse."""
        xs = np.asarray(self._xs)
        ys = np.asarray(self._ys)
        return GeoDataset(
            xs=xs,
            ys=ys,
            weights=np.asarray(self._weights),
            similarity=_UniversePrefix(self.similarity, len(xs)),
            index=RTreeIndex(xs, ys),
        )

    def score(self) -> float:
        """Current ``Sim(O, S)`` over the viewport population."""
        return self._score_of(self.selected)

    def _sims_matrix(self, selection: list[int]) -> np.ndarray:
        """``(len(selection), |inside|)`` similarity matrix."""
        inside = np.asarray(self._inside, dtype=np.int64)
        rows = np.empty((len(selection), len(inside)), dtype=np.float64)
        for row, s in enumerate(selection):
            rows[row] = self.similarity.sims_to(int(s), inside)
        return rows

    def _score_of(self, selection: list[int]) -> float:
        """Eq. 2 over the viewport population, computed directly.

        Avoids materializing a dataset/index per arrival; the stream's
        hot path only touches the similarity model.
        """
        if not selection or not self._inside:
            return 0.0
        sims = self._sims_matrix(selection)
        weights = np.asarray(self._weights)[np.asarray(self._inside)]
        return float(
            np.dot(weights, self._aggregate(sims)) / len(self._inside)
        )

    def _aggregate(self, sims: np.ndarray) -> np.ndarray:
        if len(sims) == 0:
            return np.zeros(sims.shape[1])
        if self.aggregation is Aggregation.MAX:
            return sims.max(axis=0)
        if self.aggregation is Aggregation.SUM:
            return sims.sum(axis=0)
        return sims.mean(axis=0)

    def _conflicts(self, obj_id: int, selection: list[int]) -> list[int]:
        x, y = self._xs[obj_id], self._ys[obj_id]
        return [
            s
            for s in selection
            if np.hypot(self._xs[s] - x, self._ys[s] - y) < self.theta
        ]

    def _consider(self, obj_id: int) -> None:
        conflicts = self._conflicts(obj_id, self.selected)
        if not conflicts and len(self.selected) < self.k:
            self.selected.append(obj_id)
            return

        # Candidate swap: displace conflicts (or, at full budget, the
        # weakest member) and insert the newcomer if the score improves
        # by the margin.  One similarity matrix serves all the score
        # variants below.
        weights = np.asarray(self._weights)[np.asarray(self._inside)]
        sims = self._sims_matrix(self.selected)
        norm = max(len(self._inside), 1)
        current_score = float(np.dot(weights, self._aggregate(sims)) / norm)

        displaced = set(conflicts)
        if not displaced and len(self.selected) >= self.k:
            # Weakest member = the one whose removal hurts least, i.e.
            # the HIGHEST leave-one-out score, computed from the shared
            # matrix without re-querying the model.
            loo_scores = []
            for row in range(len(self.selected)):
                rest = np.delete(sims, row, axis=0)
                loo_scores.append(
                    float(np.dot(weights, self._aggregate(rest)) / norm)
                )
            displaced = {self.selected[int(np.argmax(loo_scores))]}

        trial = [s for s in self.selected if s not in displaced] + [obj_id]
        if len(trial) > self.k:
            return
        keep_rows = [
            row for row, s in enumerate(self.selected) if s not in displaced
        ]
        new_row = self.similarity.sims_to(
            int(obj_id), np.asarray(self._inside, dtype=np.int64)
        )
        trial_sims = np.vstack([sims[keep_rows], new_row[None, :]])
        trial_score = float(np.dot(weights, self._aggregate(trial_sims)) / norm)
        hysteresis = self.swap_margin * current_score / max(self.k, 1)
        if trial_score > current_score + hysteresis:
            self.selected = trial
            self.swaps += 1

    def reoptimize(self) -> None:
        """Replace the maintained selection with a fresh greedy run."""
        if not self._inside:
            self.selected = []
            return
        dataset = self._dataset()
        result = greedy_core(
            dataset,
            region_ids=np.asarray(self._inside),
            candidate_ids=np.asarray(self._inside),
            mandatory_ids=np.empty(0, dtype=np.int64),
            k=self.k,
            theta=self.theta,
            aggregation=self.aggregation,
        )
        self.selected = [int(i) for i in result.selected]

    def as_query(self) -> RegionQuery:
        """The equivalent one-shot SOS query over the current state."""
        return RegionQuery(region=self.region, k=self.k, theta=self.theta)


class _UniversePrefix(SimilarityModel):
    """View of the first ``n`` objects of a larger similarity model."""

    def __init__(self, base: SimilarityModel, n: int) -> None:
        if n > len(base):
            raise ValueError("prefix larger than the base model")
        self._base = base
        self._n = n

    def __len__(self) -> int:
        return self._n

    def sim(self, i: int, j: int) -> float:
        return self._base.sim(i, j)

    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        return self._base.sims_to(i, ids)
