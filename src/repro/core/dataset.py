"""The dataset handle bundling objects, spatial index, and similarity.

A geospatial object in the paper is ``o = ⟨λ, ω, A⟩`` (Sec. 3.1):
location, weight in ``[0, 1]``, attributes.  :class:`GeoDataset` stores
these struct-of-arrays style — coordinate arrays, a weight array, and
optional per-object payloads (texts, keywords) — because every hot path
in the library is a vectorized sweep over ids.

The dataset owns a :class:`~repro.index.SpatialIndex` for region
queries and a :class:`~repro.similarity.SimilarityModel` for the
representative score.  Both are pluggable; the builders cover the
common combinations.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.index import SpatialIndex, build_index
from repro.similarity import (
    CombinedSimilarity,
    CosineTextSimilarity,
    EuclideanSimilarity,
    GaussianSpatialSimilarity,
    SimilarityModel,
)


@dataclass
class GeoDataset:
    """A collection of geospatial objects ready for selection queries.

    Attributes
    ----------
    xs, ys:
        Object coordinates (float64 arrays; row number = object id).
    weights:
        Object weights ``ω`` in ``[0, 1]`` (Eq. 2's utility factor).
    similarity:
        The ``Sim(·, ·)`` model over the same ids.
    index:
        Spatial index for region/radius queries over the same ids.
    texts:
        Optional raw text per object (kept for display/examples).
    ts:
        Optional per-object event timestamps (float64, any monotone
        unit — epoch seconds, normalized [0, 1], frame numbers).  The
        temporal layer (:class:`~repro.core.problem.TimeWindowQuery`,
        :meth:`MapSession.time_step`) requires it; everything else
        ignores it.
    """

    xs: np.ndarray
    ys: np.ndarray
    weights: np.ndarray
    similarity: SimilarityModel
    index: SpatialIndex
    texts: list[str] | None = None
    meta: dict = field(default_factory=dict)
    ts: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.xs = np.asarray(self.xs, dtype=np.float64)
        self.ys = np.asarray(self.ys, dtype=np.float64)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        n = len(self.xs)
        if len(self.ys) != n or len(self.weights) != n:
            raise ValueError("xs, ys and weights must have equal length")
        if len(self.similarity) != n:
            raise ValueError(
                f"similarity model covers {len(self.similarity)} objects, "
                f"dataset has {n}"
            )
        if len(self.index) != n:
            raise ValueError(
                f"spatial index covers {len(self.index)} objects, "
                f"dataset has {n}"
            )
        if n and (self.weights.min() < 0.0 or self.weights.max() > 1.0):
            raise ValueError("weights must lie in [0, 1]")
        if self.texts is not None and len(self.texts) != n:
            raise ValueError("texts must have one entry per object")
        if self.ts is not None:
            self.ts = np.asarray(self.ts, dtype=np.float64)
            if len(self.ts) != n:
                raise ValueError("ts must have one entry per object")
            if n and not np.isfinite(self.ts).all():
                raise ValueError("timestamps must be finite")

    def __len__(self) -> int:
        return len(self.xs)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        xs: np.ndarray,
        ys: np.ndarray,
        weights: np.ndarray | None = None,
        similarity: SimilarityModel | None = None,
        texts: Sequence[str] | None = None,
        index_kind: str = "rtree",
        meta: dict | None = None,
        ts: np.ndarray | None = None,
    ) -> "GeoDataset":
        """Assemble a dataset, defaulting the pieces sensibly.

        * ``weights`` default to all ones (unit weight, as the paper
          allows).
        * ``similarity`` defaults to TF-IDF cosine when ``texts`` are
          given, Euclidean-distance similarity otherwise.
        * the spatial index defaults to the R-tree.
        * ``ts`` attaches optional per-object timestamps.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if texts is not None and len(texts) != len(xs):
            raise ValueError(
                f"texts must have one entry per object "
                f"({len(texts)} texts, {len(xs)} objects)"
            )
        if weights is None:
            weights = np.ones(len(xs), dtype=np.float64)
        if similarity is None:
            if texts is not None:
                similarity = CosineTextSimilarity.from_texts(list(texts))
            else:
                similarity = EuclideanSimilarity(xs, ys)
        index = build_index(index_kind, xs, ys)
        return cls(
            xs=xs,
            ys=ys,
            weights=np.asarray(weights, dtype=np.float64),
            similarity=similarity,
            index=index,
            texts=list(texts) if texts is not None else None,
            meta=meta or {},
            ts=ts,
        )

    @classmethod
    def from_tweets(
        cls,
        xs: np.ndarray,
        ys: np.ndarray,
        texts: Sequence[str],
        weights: np.ndarray | None = None,
        text_weight: float = 0.7,
        spatial_sigma: float = 0.05,
        index_kind: str = "rtree",
    ) -> "GeoDataset":
        """The paper's geo-tagged-tweet setup.

        Similarity is a convex mix of TF-IDF cosine over the tweet text
        and a Gaussian kernel over locations, reflecting the intro's
        "textual similarity and geospatial distance" suggestion.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        text_model = CosineTextSimilarity.from_texts(list(texts))
        space_model = GaussianSpatialSimilarity(xs, ys, sigma=spatial_sigma)
        similarity = CombinedSimilarity(
            [text_model, space_model], [text_weight, 1.0 - text_weight]
        )
        return cls.build(
            xs, ys,
            weights=weights,
            similarity=similarity,
            texts=texts,
            index_kind=index_kind,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def frame(self) -> BoundingBox:
        """Bounding box of the whole dataset."""
        if len(self) == 0:
            return BoundingBox.unit()
        return BoundingBox.from_points(self.xs, self.ys)

    def objects_in(self, region: BoundingBox) -> np.ndarray:
        """Ids of objects inside ``region`` (sorted)."""
        return self.index.query_region(region)

    def time_mask(self, t_start: float, t_end: float) -> np.ndarray:
        """Boolean mask of objects with ``t_start <= ts < t_end``.

        Half-open on the right, so adjacent windows tile the timeline
        without double-counting.  Requires timestamps.
        """
        if self.ts is None:
            raise ValueError("dataset has no timestamps (ts is None)")
        return (self.ts >= t_start) & (self.ts < t_end)

    def objects_in_window(
        self, region: BoundingBox, t_start: float, t_end: float
    ) -> np.ndarray:
        """Ids inside ``region`` whose timestamp falls in the window.

        The spatio-temporal population: spatial index query first, then
        the vectorized time filter (sorted ids, like ``objects_in``).
        """
        ids = self.objects_in(region)
        if len(ids) == 0:
            return ids
        return ids[self.time_mask(t_start, t_end)[ids]]

    def conflicts_with(self, obj_id: int, theta: float) -> np.ndarray:
        """Ids within distance ``theta`` of object ``obj_id`` (incl. itself).

        The visibility constraint is ``dist >= theta`` (Def. 3.1), so a
        conflict is strict: ``dist < theta``.
        """
        x = float(self.xs[obj_id])
        y = float(self.ys[obj_id])
        within = self.index.query_radius(x, y, theta)
        if len(within) == 0:
            return within
        dist = np.hypot(self.xs[within] - x, self.ys[within] - y)
        return within[dist < theta]

    def conflicts_with_many(
        self, obj_ids: np.ndarray, theta: float
    ) -> np.ndarray:
        """Union of :meth:`conflicts_with` over ``obj_ids`` (sorted ids).

        One region query over the sources' θ-expanded bounding box plus
        a vectorized distance test, instead of one radius query per
        source — the batched form the greedy engine uses to suppress
        candidates conflicting with a mandatory set.
        """
        obj_ids = np.asarray(obj_ids, dtype=np.int64)
        if len(obj_ids) == 0 or theta <= 0.0:
            # A conflict is strict (dist < theta), so theta == 0 has none.
            return np.empty(0, dtype=np.int64)
        sx = self.xs[obj_ids]
        sy = self.ys[obj_ids]
        region = BoundingBox(
            float(sx.min()) - theta,
            float(sy.min()) - theta,
            float(sx.max()) + theta,
            float(sy.max()) + theta,
        )
        within = self.index.query_region(region)
        if len(within) == 0:
            return within
        # (sources x candidates) distance test, chunked over candidates
        # to bound the temporary at ~|sources| * chunk floats.
        chunk = max(1, 262_144 // max(1, len(obj_ids)))
        hits: list[np.ndarray] = []
        for start in range(0, len(within), chunk):
            cand = within[start:start + chunk]
            dx = self.xs[cand][None, :] - sx[:, None]
            dy = self.ys[cand][None, :] - sy[:, None]
            conflicted = (np.hypot(dx, dy) < theta).any(axis=0)
            hits.append(cand[conflicted])
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))

    def subset_texts(self, ids: np.ndarray) -> list[str]:
        """Texts of the given objects (empty strings when absent)."""
        if self.texts is None:
            return ["" for _ in ids]
        return [self.texts[int(i)] for i in ids]

    def keyword_filter(self, keyword: str) -> np.ndarray:
        """Ids of objects whose text contains ``keyword`` (case-insensitive).

        The paper's filtering condition ("objects should contain
        keyword 'president election'", Sec. 3.3): the result plugs into
        :func:`repro.core.greedy.greedy_select` via ``candidates`` to
        select representatives among matching objects only.  Requires
        the dataset to carry texts.
        """
        if self.texts is None:
            raise ValueError("dataset has no texts to filter on")
        needle = keyword.lower()
        if not needle:
            raise ValueError("keyword must be non-empty")
        mask = np.fromiter(
            (needle in text.lower() for text in self.texts),
            dtype=bool,
            count=len(self.texts),
        )
        return np.flatnonzero(mask).astype(np.int64)
