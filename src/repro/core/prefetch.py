"""Pre-fetching for ISOS (Sec. 5.2).

The bottleneck of the ISOS greedy is heap initialization: one exact
marginal gain per candidate, ``O(n · |G|)`` similarity work on the
user-facing response path.  The paper's fix: while the user studies the
*current* view, precompute for every object that could appear in the
*next* view an upper bound on its first-iteration marginal gain
(Lemmas 5.1–5.3).  When the navigation lands, the heap starts from
those bounds as stale entries and the lazy-forward loop computes exact
gains only for objects that surface at the top.

The precomputed quantity is the same for all three operations — the
weighted similarity mass ``raw(v) = Σ_{o'∈P} ω_{o'} · Sim(o', v)``
over a superset ``P`` of any possible next population ``On``:

* zoom-in (Lemma 5.1): ``P = Op``, the current region's objects;
* zoom-out (Lemma 5.2): ``P = OA``, objects in the union of all
  possible zoom-out viewports up to the maximum scale;
* panning (Lemma 5.3): ``P = OA`` for the pan union; optionally
  tightened per object to ``Or = OA ∩ ro(v)`` (the square of twice the
  viewport width centered on ``v``), which is the lemma's refinement.

At operation time the bound for candidate ``v`` is ``raw(v) / |On|``
(the score carries a ``1/|On|`` normalization that is only known once
the new region is fixed).  Monotonicity in the population
(``On ⊆ P``) and submodularity (gain ≤ first-iteration gain) make the
bound valid; tests verify dominance directly.

When the dataset's similarity model is a
:class:`~repro.cache.SimilarityCache` (a session constructed with
``similarity_cache=True``), the prefetch sweep doubles as a cache
warmer: ``weighted_sims_sum`` reduces row by row through the cache, so
every precomputed object leaves its similarity row behind and the next
operation's gain evaluations become gathers instead of model calls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import GeoDataset
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point
from repro.robustness.errors import PrefetchUnavailable
from repro.robustness.faults import PREFETCH_COMPUTE, FaultInjector
from repro.trace.tracer import NULL_TRACER, TracerLike


@dataclass
class PrefetchData:
    """Precomputed upper-bound material for one navigation kind.

    ``ids`` are the objects covered (all objects of the prefetched
    area); ``raw_sums`` aligns with ``ids`` and holds
    ``Σ_{o'∈P(v)} ω_{o'} · Sim(o', v)``.
    """

    kind: str
    source_region: BoundingBox
    ids: np.ndarray
    raw_sums: np.ndarray
    elapsed_s: float

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.raw_sums = np.asarray(self.raw_sums, dtype=np.float64)
        if len(self.ids) != len(self.raw_sums):
            raise ValueError("ids and raw_sums must align")
        self._pos = {int(i): row for row, i in enumerate(self.ids)}

    def covers(self, candidate_ids: np.ndarray) -> bool:
        """Whether every candidate has a precomputed bound.

        One vectorized membership sweep (``np.isin``) — this runs on
        the response path for every prefetch-served operation, so the
        per-id Python loop it replaces was pure overhead.
        """
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        if len(candidate_ids) == 0:
            return True
        return bool(np.isin(candidate_ids, self.ids).all())

    def is_stale(self, current_region: BoundingBox) -> bool:
        """Whether the bounds were computed from a different viewport.

        Stale bounds are *not* valid upper bounds for navigations out
        of ``current_region``; the session discards them and serves the
        operation cold (:class:`~repro.robustness.PrefetchUnavailable`
        internally).
        """
        return self.source_region != current_region

    def bounds_for(
        self, candidate_ids: np.ndarray, population_size: int
    ) -> np.ndarray:
        """Upper bounds on first-iteration gains, aligned with candidates.

        ``population_size`` is ``|On|``, the number of objects in the
        realized new region (the score's normalizer).

        Raises :class:`~repro.robustness.PrefetchUnavailable` when a
        candidate has no precomputed bound (a coverage race, e.g.
        after a dataset swap) so the session's documented cold-serve
        fallback engages instead of a bare ``KeyError`` escaping the
        response path.
        """
        if population_size <= 0:
            raise ValueError("population_size must be positive")
        try:
            rows = np.fromiter(
                (self._pos[int(i)] for i in candidate_ids),
                dtype=np.int64,
                count=len(candidate_ids),
            )
        except KeyError as exc:
            raise PrefetchUnavailable(
                f"prefetch data ({self.kind!r}) has no bound for "
                f"candidate {exc.args[0]!r}"
            ) from None
        return self.raw_sums[rows] / float(population_size)


class Prefetcher:
    """Computes :class:`PrefetchData` for the three navigation kinds.

    ``fault_injector``, when given, is traversed at the
    ``prefetch.compute`` point on every precomputation — the hook the
    fault-injection harness uses to prove prefetch failures stay off
    the response path (:class:`~repro.core.session.MapSession` wraps
    these calls in a circuit breaker and serves operations cold).

    ``tracer``, when given, wraps every sweep in a
    ``prefetch.<kind>`` span annotated with the covered object count
    (see ``docs/OBSERVABILITY.md``).
    """

    def __init__(
        self,
        dataset: GeoDataset,
        fault_injector: FaultInjector | None = None,
        tracer: TracerLike | None = None,
    ) -> None:
        self.dataset = dataset
        self.fault_injector = fault_injector
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def _check(self) -> None:
        if self.fault_injector is not None:
            self.fault_injector.check(PREFETCH_COMPUTE)

    def _raw_sums(self, ids: np.ndarray) -> np.ndarray:
        weights = self.dataset.weights[ids]
        return self.dataset.similarity.weighted_sims_sum(ids, ids, weights)

    def prefetch_zoom_in(self, region: BoundingBox) -> PrefetchData:
        """Bounds for any zoom-in from ``region`` (Lemma 5.1).

        Any zoomed-in viewport lies inside the current one, so the
        superset population is simply the current region's objects.
        """
        with self.tracer.span("prefetch.zoom_in") as span:
            self._check()
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            started = time.perf_counter()
            ids = self.dataset.objects_in(region)
            raw = self._raw_sums(ids)
            span.annotate(objects=len(ids))
        return PrefetchData(
            kind="zoom_in",
            source_region=region,
            ids=ids,
            raw_sums=raw,
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            elapsed_s=time.perf_counter() - started,
        )

    def prefetch_zoom_out(
        self, region: BoundingBox, max_scale: float = 4.0
    ) -> PrefetchData:
        """Bounds for any zoom-out up to ``max_scale`` (Lemma 5.2).

        Zoom-out keeps the center, so the union of possible viewports
        is the largest one; objects beyond ``max_scale`` cannot appear.
        """
        with self.tracer.span("prefetch.zoom_out") as span:
            self._check()
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            started = time.perf_counter()
            area = region.zoom_out_union(max_scale)
            ids = self.dataset.objects_in(area)
            raw = self._raw_sums(ids)
            span.annotate(objects=len(ids))
        return PrefetchData(
            kind="zoom_out",
            source_region=region,
            ids=ids,
            raw_sums=raw,
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            elapsed_s=time.perf_counter() - started,
        )

    def prefetch_pan(
        self, region: BoundingBox, tight: bool = False
    ) -> PrefetchData:
        """Bounds for any pan of ``region`` (Lemma 5.3).

        A panned viewport of the same size overlapping the current one
        stays inside the 3x3-viewport union ``rA``.  With
        ``tight=True`` the per-object refinement of Lemma 5.3 is
        applied: the sum for ``v`` only ranges over ``rA ∩ ro(v)``
        where ``ro(v)`` is the square of twice the viewport width
        centered on ``v`` — slower to precompute, tighter at query
        time.
        """
        with self.tracer.span("prefetch.pan", tight=tight) as span:
            return self._prefetch_pan(region, tight, span)

    def _prefetch_pan(
        self, region: BoundingBox, tight: bool, span
    ) -> PrefetchData:
        self._check()
        # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
        started = time.perf_counter()
        area = region.pan_union()
        ids = self.dataset.objects_in(area)
        span.annotate(objects=len(ids))
        if not tight:
            raw = self._raw_sums(ids)
        else:
            raw = np.empty(len(ids), dtype=np.float64)
            sim = self.dataset.similarity
            for row, v in enumerate(ids):
                center = Point(
                    float(self.dataset.xs[int(v)]),
                    float(self.dataset.ys[int(v)]),
                )
                ro = BoundingBox.from_center(
                    center,
                    width=2.0 * region.width,
                    height=2.0 * region.height,
                )
                window = ro.intersection(area)
                near = self.dataset.objects_in(window) if window else ids[:0]
                raw[row] = float(
                    np.dot(
                        self.dataset.weights[near],
                        sim.sims_to(int(v), near),
                    )
                )
        return PrefetchData(
            kind="pan",
            source_region=region,
            ids=ids,
            raw_sums=raw,
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            elapsed_s=time.perf_counter() - started,
        )
