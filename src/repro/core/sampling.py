"""SaSS — Sampling for Spatial Object Selection (Algorithm 2, Sec. 6).

When the region population is large, even the lazy greedy pays
``O(n)`` per gain evaluation.  SaSS draws a uniform random sample
``O'`` of the population, sized so that for *any* fixed selection the
sample mean of ``ω · Sim(o, S)`` deviates from the population mean by
at most ``ε`` with probability ``1 − δ`` (Hoeffding; Serfling gives the
tighter finite-population size), then runs the greedy on the sample.
Theorem 6.3: the returned selection is ``(1 − ε)``-approximate w.r.t.
whatever the underlying solver would return, with probability
``≥ 1 − δ``.

The sample size is independent of ``|O|`` (Hoeffding) or shrinks with
it (Serfling) — this is why the paper needs under 2% of a 100M-object
dataset (Sec. 7.3.2) and why SaSS runtime is flat in the scalability
experiment (Fig. 12(b)).
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.greedy import greedy_core
from repro.core.problem import Aggregation, RegionQuery, SelectionResult
from repro.core.scoring import representative_score
from repro.robustness.budget import Budget
from repro.robustness.faults import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.pool import WorkerPool


def hoeffding_sample_size(epsilon: float, delta: float) -> int:
    """Sample size from Hoeffding's inequality (paper Eq. 6, infinite part).

    ``m = ⌈ ln(2/δ) / (2 ε²) ⌉``.
    """
    _validate(epsilon, delta)
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def serfling_sample_size(epsilon: float, delta: float, population: int) -> int:
    """Finite-population sample size from Serfling's inequality (Eq. 7).

    ``m = ⌈ 1 / (2ε² / ln(2/δ) + 1/|O|) ⌉`` — tighter than Hoeffding
    for finite ``|O|`` and converging to it as ``|O| → ∞``.
    """
    _validate(epsilon, delta)
    if population <= 0:
        raise ValueError(f"population must be positive, got {population}")
    denom = 2.0 * epsilon * epsilon / math.log(2.0 / delta) + 1.0 / population
    return min(population, math.ceil(1.0 / denom))


def _validate(epsilon: float, delta: float) -> None:
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


def draw_sample(
    region_ids: np.ndarray,
    epsilon: float,
    delta: float,
    rng: np.random.Generator,
    bound: str = "serfling",
) -> np.ndarray:
    """Uniform sample of ``region_ids`` at the SaSS-mandated size.

    The sampling step of Algorithm 2, reusable on its own (the
    degradation ladder samples the population this way before running
    a budgeted greedy on the sample).  Returns sorted ids.
    """
    population = len(region_ids)
    if population == 0:
        return np.asarray(region_ids, dtype=np.int64)
    if bound == "serfling":
        m = serfling_sample_size(epsilon, delta, population)
    elif bound == "hoeffding":
        m = min(population, hoeffding_sample_size(epsilon, delta))
    else:
        raise ValueError(f"bound must be 'serfling' or 'hoeffding', got {bound!r}")
    return np.sort(rng.choice(region_ids, size=m, replace=False))


def sass_select(
    dataset: GeoDataset,
    query: RegionQuery,
    epsilon: float = 0.05,
    delta: float = 0.1,
    aggregation: Aggregation = Aggregation.MAX,
    bound: str = "serfling",
    rng: np.random.Generator | None = None,
    evaluate_full_score: bool = False,
    budget: Budget | None = None,
    fault_injector: FaultInjector | None = None,
    batch_size: int | None = None,
    pool: WorkerPool | None = None,
) -> SelectionResult:
    """Algorithm 2: sample the region, run the greedy on the sample.

    Parameters
    ----------
    epsilon, delta:
        Error tolerance and confidence error (paper defaults 0.05/0.1).
    bound:
        ``"serfling"`` (Eq. 7, default — the paper notes it gives the
        smaller size) or ``"hoeffding"`` (Eq. 6).
    evaluate_full_score:
        Also compute the representative score of the selection against
        the *full* region population and record both scores in
        ``stats`` (used by the Fig. 9/10 score-difference panels).
        Costs ``O(k · n)`` extra similarity work.
    budget, fault_injector:
        Passed through to the underlying greedy: the sampled selection
        is anytime too, and traverses the same fault points.
    batch_size, pool:
        Passed through to the underlying greedy: the sample's heap
        initialization evaluates candidate blocks through the batched
        kernels and, with a :class:`~repro.parallel.WorkerPool`,
        shards them across workers.

    The result's ``score``/``region_ids`` refer to the sample (that is
    what the algorithm optimizes); ``stats['sample_size']`` and
    ``stats['sampling_ratio']`` record how much data was used.
    """
    # Seeded default: an omitted rng must still give run-to-run
    # reproducible selections (the paper's evaluation contract).
    rng = rng or np.random.default_rng(0)
    region_ids = dataset.objects_in(query.region)
    population = len(region_ids)
    # Timed after the region fetch, matching the paper's convention.
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    started = time.perf_counter()
    if population == 0:
        return SelectionResult(
            selected=np.empty(0, dtype=np.int64),
            score=0.0,
            region_ids=region_ids,
            stats={"sample_size": 0, "sampling_ratio": 0.0, "elapsed_s": 0.0},
        )

    sample_ids = draw_sample(region_ids, epsilon, delta, rng, bound=bound)
    m = len(sample_ids)
    result = greedy_core(
        dataset,
        region_ids=sample_ids,
        candidate_ids=sample_ids,
        mandatory_ids=np.empty(0, dtype=np.int64),
        k=query.k,
        theta=query.theta,
        aggregation=aggregation,
        budget=budget,
        fault_injector=fault_injector,
        batch_size=batch_size,
        pool=pool,
    )
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    elapsed = time.perf_counter() - started

    stats = dict(result.stats)
    stats.update(
        sample_size=int(m),
        population=population,
        sampling_ratio=m / population,
        elapsed_s=elapsed,
        bound=bound,
        epsilon=epsilon,
        delta=delta,
    )
    if evaluate_full_score:
        full = representative_score(
            dataset, region_ids, result.selected, aggregation
        )
        stats["full_score"] = full
        stats["score_difference"] = abs(full - result.score)
    return SelectionResult(
        selected=result.selected,
        score=result.score,
        region_ids=sample_ids,
        stats=stats,
        degraded=result.degraded,
    )
