"""Navigation prediction for selective pre-fetching (extension).

The paper notes that predicting the user's next region of interest
(Battle et al. [5]) is complementary: "this work ... can be employed
to predict what region of data to pre-fetch".  This module provides
that hook.  :class:`NavigationPredictor` is the protocol;
:class:`FrequencyPredictor` is a simple first-order model: it ranks
the three operations by a smoothed mix of their overall frequency and
a first-order transition count from the last operation — users who
keep panning tend to pan again.

:class:`~repro.core.session.MapSession` accepts a predictor via
``prefetch_policy="predicted"``; the session then precomputes bounds
only for the top-ranked operations, cutting off-path precompute cost
at the risk of a cache miss (the operation then falls back to the
exact heap initialization, losing speed but never correctness).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter

OPERATIONS = ("zoom_in", "zoom_out", "pan")


class NavigationPredictor(ABC):
    """Predicts which navigation operations to prefetch for."""

    @abstractmethod
    def predict(self, history: list[str]) -> list[str]:
        """Operations ranked most-likely-first.

        ``history`` is the sequence of operations performed so far
        (excluding the initial selection).  Must return a non-empty
        subset of :data:`OPERATIONS`.
        """

    def observe(self, operation: str) -> None:
        """Optional online-learning hook; default is stateless."""


class FrequencyPredictor(NavigationPredictor):
    """Smoothed frequency + first-order transition ranking.

    ``top`` controls how many operations are prefetched (1 = cheapest
    precompute, most misses; 3 = always prefetch everything, which is
    the session's default behaviour).
    """

    def __init__(self, top: int = 2, smoothing: float = 1.0) -> None:
        if not 1 <= top <= len(OPERATIONS):
            raise ValueError(f"top must be in [1, {len(OPERATIONS)}]")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.top = top
        self.smoothing = smoothing
        self._counts: Counter[str] = Counter()
        self._transitions: dict[str, Counter[str]] = {
            op: Counter() for op in OPERATIONS
        }
        self._last: str | None = None

    def observe(self, operation: str) -> None:
        if operation not in OPERATIONS:
            return  # "initial" and anything exotic carries no signal
        self._counts[operation] += 1
        if self._last is not None:
            self._transitions[self._last][operation] += 1
        self._last = operation

    def predict(self, history: list[str]) -> list[str]:
        last = next(
            (op for op in reversed(history) if op in OPERATIONS), None
        )

        def score(op: str) -> float:
            base = self._counts[op] + self.smoothing
            if last is not None:
                base += 2.0 * self._transitions[last][op]
            return base

        ranked = sorted(OPERATIONS, key=score, reverse=True)
        return ranked[: self.top]
