"""The representative score (Eq. 1–2) and its incremental evaluation.

``Score(S) = Sim(O, S) = (1/|O|) Σ_{o∈O} o.ω · Sim(o, S)`` where
``Sim(o, S)`` aggregates pairwise similarities over ``S`` (``max`` by
default).

Two access patterns are served:

* :func:`representative_score` — one-shot evaluation, used to report
  results and by tests.
* :class:`MarginalGainState` — the incremental form driving the greedy
  algorithm: it carries ``best[o] = Sim(o, S)`` for the current ``S``
  so a marginal gain is one vectorized ``sims_to`` plus a clipped sum,
  and adding a pick is one ``maximum`` update.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.problem import Aggregation


def similarity_to_set(
    dataset: GeoDataset,
    obj_id: int,
    selected: np.ndarray,
    aggregation: Aggregation = Aggregation.MAX,
) -> float:
    """``Sim(o, S)`` for a single object (Eq. 1, or its sum/avg variant)."""
    selected = np.asarray(selected, dtype=np.int64)
    if len(selected) == 0:
        return 0.0
    sims = dataset.similarity.sims_to(int(obj_id), selected)
    if aggregation is Aggregation.MAX:
        return float(sims.max())
    if aggregation is Aggregation.SUM:
        return float(sims.sum())
    return float(sims.mean())


def representative_score(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
    aggregation: Aggregation = Aggregation.MAX,
) -> float:
    """``Sim(O, S)`` (Eq. 2) for population ``O = region_ids``.

    Empty population or empty selection scores 0.
    """
    region_ids = np.asarray(region_ids, dtype=np.int64)
    selected = np.asarray(selected, dtype=np.int64)
    if len(region_ids) == 0 or len(selected) == 0:
        return 0.0
    agg = _aggregate_matrix(dataset, region_ids, selected, aggregation)
    weights = dataset.weights[region_ids]
    return float(np.dot(weights, agg) / len(region_ids))


def _aggregate_matrix(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
    aggregation: Aggregation,
) -> np.ndarray:
    """``Sim(o, S)`` for every ``o`` in the region, vectorized over S.

    Iterates over the (small) selected set, calling the row kernel once
    per pick — ``O(k)`` kernel calls rather than ``O(|O|)``.
    """
    if aggregation is Aggregation.MAX:
        acc = np.zeros(len(region_ids), dtype=np.float64)
        for v in selected:
            np.maximum(acc, dataset.similarity.sims_to(int(v), region_ids), out=acc)
        return acc
    total = np.zeros(len(region_ids), dtype=np.float64)
    for v in selected:
        total += dataset.similarity.sims_to(int(v), region_ids)
    if aggregation is Aggregation.SUM:
        return total
    return total / len(selected)


def assign_representatives(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
) -> np.ndarray:
    """Representative (in ``selected``) of every region object.

    The paper's "map exploration extension" (Sec. 3.2, Fig. 1(c)):
    each hidden object is represented by the selected object most
    similar to it — clicking a marker highlights the objects it
    represents.  Returns, aligned with ``region_ids``, the selected
    object id that represents each region object (a selected object
    represents itself).  Raises on an empty selection.
    """
    region_ids = np.asarray(region_ids, dtype=np.int64)
    selected = np.asarray(selected, dtype=np.int64)
    if len(selected) == 0:
        raise ValueError("cannot assign representatives to an empty selection")
    best_sim = np.full(len(region_ids), -np.inf)
    best_rep = np.full(len(region_ids), selected[0], dtype=np.int64)
    for v in selected:
        sims = dataset.similarity.sims_to(int(v), region_ids)
        better = sims > best_sim
        best_sim[better] = sims[better]
        best_rep[better] = int(v)
    return best_rep


def represented_objects(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
    marker: int,
) -> np.ndarray:
    """Region objects whose representative is ``marker``.

    The click-to-expand interaction: given the whole selection and one
    clicked marker, return the hidden objects it stands for (excluding
    the marker itself).
    """
    reps = assign_representatives(dataset, region_ids, selected)
    region_ids = np.asarray(region_ids, dtype=np.int64)
    mine = region_ids[reps == int(marker)]
    return mine[mine != int(marker)]


class MarginalGainState:
    """Incremental ``Sim(O, ·)`` state for the greedy loop.

    Holds the region population (ids + weights) and, for ``MAX``
    aggregation, the per-object best similarity to the current
    selection.  For ``SUM`` the gain of an object is independent of the
    selection (the function is modular), so no per-object state is
    needed.

    ``AVG`` is not supported here: it is neither monotone nor
    submodular, so the greedy machinery (and its guarantee) does not
    apply.  Use :func:`representative_score` to *evaluate* AVG scores.
    """

    def __init__(
        self,
        dataset: GeoDataset,
        region_ids: np.ndarray,
        aggregation: Aggregation = Aggregation.MAX,
    ):
        if aggregation is Aggregation.AVG:
            raise ValueError(
                "AVG aggregation is evaluation-only; greedy requires a "
                "monotone submodular objective (use MAX or SUM)"
            )
        self.dataset = dataset
        self.region_ids = np.asarray(region_ids, dtype=np.int64)
        self.aggregation = aggregation
        self.weights = dataset.weights[self.region_ids]
        self._n = len(self.region_ids)
        self._best = np.zeros(self._n, dtype=np.float64)
        self._score = 0.0
        self.gain_evaluations = 0
        # Similarity rows pulled against the population — gains *and*
        # committed picks.  This is the unit the similarity cache turns
        # into gathers, so selectors report it next to gain_evaluations.
        self.kernel_rows = 0
        # Population-specialized row kernel: each gain evaluation is one
        # call against the same id set, so amortized setup pays off.
        self._kernel = dataset.similarity.row_kernel(self.region_ids)

    @property
    def score(self) -> float:
        """Current ``Sim(O, S)`` of everything added so far."""
        return self._score

    @property
    def population_size(self) -> int:
        """Number of objects in the scored population ``O``."""
        return self._n

    def gain(self, obj_id: int) -> float:
        """Marginal gain ``Sim(O, S ∪ {v}) − Sim(O, S)`` for ``v``."""
        if self._n == 0:
            return 0.0
        self.gain_evaluations += 1
        self.kernel_rows += 1
        sims = self._kernel(int(obj_id))
        if self.aggregation is Aggregation.MAX:
            improvement = np.maximum(sims - self._best, 0.0)
        else:  # SUM: modular — the contribution is the full row.
            improvement = sims
        return float(np.dot(self.weights, improvement) / self._n)

    def add(self, obj_id: int) -> float:
        """Commit ``v`` to the selection; returns the realized gain."""
        if self._n == 0:
            return 0.0
        self.kernel_rows += 1
        sims = self._kernel(int(obj_id))
        if self.aggregation is Aggregation.MAX:
            improvement = np.maximum(sims - self._best, 0.0)
            np.maximum(self._best, sims, out=self._best)
        else:
            improvement = sims
        gained = float(np.dot(self.weights, improvement) / self._n)
        self._score += gained
        return gained
