"""The representative score (Eq. 1–2) and its incremental evaluation.

``Score(S) = Sim(O, S) = (1/|O|) Σ_{o∈O} o.ω · Sim(o, S)`` where
``Sim(o, S)`` aggregates pairwise similarities over ``S`` (``max`` by
default).

Two access patterns are served:

* :func:`representative_score` — one-shot evaluation, used to report
  results and by tests.
* :class:`MarginalGainState` — the incremental form driving the greedy
  algorithm: it carries ``best[o] = Sim(o, S)`` for the current ``S``
  so a marginal gain is one vectorized ``sims_to`` plus a clipped sum,
  and adding a pick is one ``maximum`` update.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.problem import Aggregation
from repro.similarity.base import RowsKernel


def similarity_to_set(
    dataset: GeoDataset,
    obj_id: int,
    selected: np.ndarray,
    aggregation: Aggregation = Aggregation.MAX,
) -> float:
    """``Sim(o, S)`` for a single object (Eq. 1, or its sum/avg variant)."""
    selected = np.asarray(selected, dtype=np.int64)
    if len(selected) == 0:
        return 0.0
    sims = dataset.similarity.sims_to(int(obj_id), selected)
    if aggregation is Aggregation.MAX:
        return float(sims.max())
    if aggregation is Aggregation.SUM:
        return float(sims.sum())
    return float(sims.mean())


def representative_score(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
    aggregation: Aggregation = Aggregation.MAX,
) -> float:
    """``Sim(O, S)`` (Eq. 2) for population ``O = region_ids``.

    Empty population or empty selection scores 0.
    """
    region_ids = np.asarray(region_ids, dtype=np.int64)
    selected = np.asarray(selected, dtype=np.int64)
    if len(region_ids) == 0 or len(selected) == 0:
        return 0.0
    agg = _aggregate_matrix(dataset, region_ids, selected, aggregation)
    weights = dataset.weights[region_ids]
    return float(np.dot(weights, agg) / len(region_ids))


def _aggregate_matrix(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
    aggregation: Aggregation,
) -> np.ndarray:
    """``Sim(o, S)`` for every ``o`` in the region, vectorized over S.

    Iterates over the (small) selected set, calling the row kernel once
    per pick — ``O(k)`` kernel calls rather than ``O(|O|)``.
    """
    if aggregation is Aggregation.MAX:
        acc = np.zeros(len(region_ids), dtype=np.float64)
        for v in selected:
            np.maximum(acc, dataset.similarity.sims_to(int(v), region_ids), out=acc)
        return acc
    total = np.zeros(len(region_ids), dtype=np.float64)
    for v in selected:
        total += dataset.similarity.sims_to(int(v), region_ids)
    if aggregation is Aggregation.SUM:
        return total
    return total / len(selected)


def assign_representatives(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
) -> np.ndarray:
    """Representative (in ``selected``) of every region object.

    The paper's "map exploration extension" (Sec. 3.2, Fig. 1(c)):
    each hidden object is represented by the selected object most
    similar to it — clicking a marker highlights the objects it
    represents.  Returns, aligned with ``region_ids``, the selected
    object id that represents each region object (a selected object
    represents itself).  Raises on an empty selection.
    """
    region_ids = np.asarray(region_ids, dtype=np.int64)
    selected = np.asarray(selected, dtype=np.int64)
    if len(selected) == 0:
        raise ValueError("cannot assign representatives to an empty selection")
    best_sim = np.full(len(region_ids), -np.inf)
    best_rep = np.full(len(region_ids), selected[0], dtype=np.int64)
    for v in selected:
        sims = dataset.similarity.sims_to(int(v), region_ids)
        better = sims > best_sim
        best_sim[better] = sims[better]
        best_rep[better] = int(v)
    return best_rep


def represented_objects(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
    marker: int,
) -> np.ndarray:
    """Region objects whose representative is ``marker``.

    The click-to-expand interaction: given the whole selection and one
    clicked marker, return the hidden objects it stands for (excluding
    the marker itself).
    """
    reps = assign_representatives(dataset, region_ids, selected)
    region_ids = np.asarray(region_ids, dtype=np.int64)
    mine = region_ids[reps == int(marker)]
    return mine[mine != int(marker)]


#: Population size at or below which :func:`gains_kernel` uses the
#: fully vectorized multiply-and-pairwise-sum reduction.  Above it the
#: per-row 1-D ``np.dot`` is both faster (one fewer memory pass over
#: rows that no longer fit in cache) and preserves the float values the
#: engine has always produced on large workloads.  The switch depends
#: only on the population size — never on batch size, worker count, or
#: backend — so every execution path computes identical bits for the
#: same population.
GAINS_VECTOR_MAX_N = 2048

#: Elementwise working-buffer budget (float64 elements) for the
#: vectorized form: blocks are processed in row chunks whose buffer
#: stays cache-resident.  Chunking is invisible in the output — numpy's
#: pairwise ``sum`` reduces each row independently, so any chunk
#: geometry (including one row at a time) yields identical bits.
GAINS_CHUNK_ELEMS = 32_768


def gains_kernel(
    sims: np.ndarray,
    best: np.ndarray,
    weights: np.ndarray,
    aggregation: Aggregation,
) -> np.ndarray:
    """Marginal gains for a whole block of similarity rows in one call.

    The single canonical reduction behind *every* gain computation —
    the scalar :meth:`MarginalGainState.gain`, the batched
    :meth:`MarginalGainState.batch_gains`, :meth:`MarginalGainState.add`,
    and the process workers all route through it, so bit-identity
    across batch sizes, worker counts, and backends holds by
    construction rather than by parallel maintenance of matching
    loops.

    Two reduction forms, switched deterministically on the population
    size ``n`` (a pure function of the query, identical in every
    engine configuration):

    * ``n <= GAINS_VECTOR_MAX_N`` — vectorized: elementwise
      subtract/clip/multiply over a cache-resident row chunk, then
      numpy's pairwise ``sum`` per row.  Pairwise summation reduces
      each row independently, so a block result equals the same rows
      reduced one at a time, bit for bit.
    * larger ``n`` — one 1-D ``np.dot(weights, improvement)`` per row
      (the reduction the scalar engine has always used; a BLAS
      matrix-vector product would change accumulation order and break
      CELF tie-breaks, so it is never used here).
    """
    sims = np.asarray(sims, dtype=np.float64)
    n_rows, n = sims.shape
    out = np.empty(n_rows, dtype=np.float64)
    if n == 0 or n_rows == 0:
        out.fill(0.0)
        return out
    if n <= GAINS_VECTOR_MAX_N:
        chunk = max(1, min(n_rows, GAINS_CHUNK_ELEMS // n))
        buf = np.empty((chunk, n), dtype=np.float64)
        for start in range(0, n_rows, chunk):
            end = min(start + chunk, n_rows)
            view = buf[: end - start]
            if aggregation is Aggregation.MAX:
                np.subtract(sims[start:end], best, out=view)
                np.maximum(view, 0.0, out=view)
            else:  # SUM: modular — the contribution is the full row.
                view[:] = sims[start:end]
            np.multiply(view, weights, out=view)
            np.sum(view, axis=1, out=out[start:end])
    else:
        for b in range(n_rows):
            if aggregation is Aggregation.MAX:
                improvement = np.maximum(sims[b] - best, 0.0)
            else:
                improvement = sims[b]
            out[b] = np.dot(weights, improvement)
    out /= n
    return out


def _gain_of_row(improvement: np.ndarray, weights: np.ndarray, n: int) -> float:
    """One row through the same reduction :func:`gains_kernel` uses.

    ``improvement`` is the already-clipped MAX improvement (or the raw
    row for SUM).  Must mirror the kernel's population-size switch
    exactly — the CELF loop's refreshed gains and the batched init's
    gains meet in the same heap.
    """
    if n <= GAINS_VECTOR_MAX_N:
        return float(np.sum(improvement * weights) / n)
    return float(np.dot(weights, improvement) / n)


def weighted_gain_rows(
    sims: np.ndarray,
    best: np.ndarray,
    weights: np.ndarray,
    aggregation: Aggregation,
) -> np.ndarray:
    """Back-compat alias for :func:`gains_kernel` (the historical name)."""
    return gains_kernel(sims, best, weights, aggregation)


def weighted_mass_rows(sims: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """``out[t] = Σ_s weights[s] · sims[t, s]`` — the bulk-mass reduction.

    The unnormalized Lemma-5.1 mass of each target row, reduced with
    the same population-size switch as :func:`gains_kernel` (pairwise
    ``np.sum`` under :data:`GAINS_VECTOR_MAX_N` sources, per-row ddot
    above).  Similarity models' vectorized ``weighted_sims_sum``
    overrides route through this so bulk masses stay bit-identical to
    the gain kernel's zero-selection SUM gains (``gains_kernel`` of the
    same rows times ``n``) — which is what keeps ``init_mode="bulk"``
    selections equal to exact ones.
    """
    sims = np.asarray(sims, dtype=np.float64)
    n_rows, n = sims.shape
    out = np.empty(n_rows, dtype=np.float64)
    if n == 0 or n_rows == 0:
        out.fill(0.0)
        return out
    if n <= GAINS_VECTOR_MAX_N:
        chunk = max(1, min(n_rows, GAINS_CHUNK_ELEMS // n))
        buf = np.empty((chunk, n), dtype=np.float64)
        for start in range(0, n_rows, chunk):
            end = min(start + chunk, n_rows)
            view = buf[: end - start]
            np.multiply(sims[start:end], weights, out=view)
            np.sum(view, axis=1, out=out[start:end])
    else:
        for b in range(n_rows):
            out[b] = np.dot(weights, sims[b])
    return out


class MarginalGainState:
    """Incremental ``Sim(O, ·)`` state for the greedy loop.

    Holds the region population (ids + weights) and, for ``MAX``
    aggregation, the per-object best similarity to the current
    selection.  For ``SUM`` the gain of an object is independent of the
    selection (the function is modular), so no per-object state is
    needed.

    ``AVG`` is not supported here: it is neither monotone nor
    submodular, so the greedy machinery (and its guarantee) does not
    apply.  Use :func:`representative_score` to *evaluate* AVG scores.
    """

    def __init__(
        self,
        dataset: GeoDataset,
        region_ids: np.ndarray,
        aggregation: Aggregation = Aggregation.MAX,
    ) -> None:
        if aggregation is Aggregation.AVG:
            raise ValueError(
                "AVG aggregation is evaluation-only; greedy requires a "
                "monotone submodular objective (use MAX or SUM)"
            )
        self.dataset = dataset
        self.region_ids = np.asarray(region_ids, dtype=np.int64)
        self.aggregation = aggregation
        self.weights = dataset.weights[self.region_ids]
        self._n = len(self.region_ids)
        self._best = np.zeros(self._n, dtype=np.float64)
        self._score = 0.0
        self.gain_evaluations = 0
        # Similarity rows pulled against the population — gains *and*
        # committed picks.  This is the unit the similarity cache turns
        # into gathers, so selectors report it next to gain_evaluations.
        self.kernel_rows = 0
        # Kernel *invocations* — each scalar call is one, each batched
        # block is one.  The batching win (rows amortized per call) is
        # kernel_rows / kernel_calls.
        self.kernel_calls = 0
        # Population-specialized row kernel: each gain evaluation is one
        # call against the same id set, so amortized setup pays off.
        self._kernel = dataset.similarity.row_kernel(self.region_ids)
        self._rows_kernel = None  # block kernel, built on first use
        # SUM is modular: an object's gain never changes as S grows, so
        # it is computed once and memoized (repeated heap pops are O(1)).
        self._sum_gains: dict[int, float] = {}

    @property
    def score(self) -> float:
        """Current ``Sim(O, S)`` of everything added so far."""
        return self._score

    @property
    def population_size(self) -> int:
        """Number of objects in the scored population ``O``."""
        return self._n

    def gain(self, obj_id: int) -> float:
        """Marginal gain ``Sim(O, S ∪ {v}) − Sim(O, S)`` for ``v``."""
        if self._n == 0:
            return 0.0
        obj = int(obj_id)
        self.gain_evaluations += 1
        if self.aggregation is Aggregation.SUM:
            cached = self._sum_gains.get(obj)
            if cached is not None:
                return cached
        self.kernel_rows += 1
        self.kernel_calls += 1
        sims = self._kernel(obj)
        if self.aggregation is Aggregation.MAX:
            improvement = np.maximum(sims - self._best, 0.0)
        else:  # SUM: modular — the contribution is the full row.
            improvement = sims
        value = _gain_of_row(improvement, self.weights, self._n)
        if self.aggregation is Aggregation.SUM:
            self._sum_gains[obj] = value
        return value

    def batch_kernel(self) -> RowsKernel:
        """The population-specialized block kernel (built lazily).

        Callers that dispatch :meth:`batch_gains` across threads should
        touch this once first so the lazy build is not raced.
        """
        if self._rows_kernel is None:
            self._rows_kernel = self.dataset.similarity.rows_kernel(
                self.region_ids
            )
        return self._rows_kernel

    def batch_gains(self, obj_ids: np.ndarray, count: bool = True) -> np.ndarray:
        """Marginal gains for a whole candidate block (one kernel call).

        Bit-identical to calling :meth:`gain` per object — the block
        kernel reproduces the scalar kernel's rows and
        :func:`weighted_gain_rows` reproduces its reduction.  With
        ``count=False`` the counters are left untouched (a worker pool
        aggregates them once per sweep so concurrent tasks never race
        on them).
        """
        obj_ids = np.asarray(obj_ids, dtype=np.int64)
        if len(obj_ids) == 0:
            return np.zeros(0, dtype=np.float64)
        if self._n == 0:
            gains = np.zeros(len(obj_ids), dtype=np.float64)
        else:
            sims = self.batch_kernel()(obj_ids)
            gains = gains_kernel(
                sims, self._best, self.weights, self.aggregation
            )
            if self.aggregation is Aggregation.SUM:
                for obj, value in zip(obj_ids.tolist(), gains.tolist()):
                    self._sum_gains[obj] = value
        if count:
            self.note_batches(rows=len(obj_ids), calls=1)
        return gains

    def note_batches(self, rows: int, calls: int) -> None:
        """Record counter movement for ``rows`` gains over ``calls`` kernels."""
        self.gain_evaluations += rows
        self.kernel_rows += rows
        self.kernel_calls += calls

    def best_view(self) -> np.ndarray:
        """The internal ``best[o] = Sim(o, S)`` vector (not a copy).

        Exported to shared memory for process-parallel sweeps; callers
        must not mutate it or hold it across :meth:`add` calls.
        """
        return self._best

    def add(self, obj_id: int) -> float:
        """Commit ``v`` to the selection; returns the realized gain."""
        if self._n == 0:
            return 0.0
        obj = int(obj_id)
        if self.aggregation is Aggregation.SUM:
            gained = self._sum_gains.get(obj)
            if gained is None:
                self.kernel_rows += 1
                self.kernel_calls += 1
                sims = self._kernel(obj)
                gained = _gain_of_row(sims, self.weights, self._n)
                self._sum_gains[obj] = gained
            self._score += gained
            return gained
        self.kernel_rows += 1
        self.kernel_calls += 1
        sims = self._kernel(obj)
        improvement = np.maximum(sims - self._best, 0.0)
        np.maximum(self._best, sims, out=self._best)
        gained = _gain_of_row(improvement, self.weights, self._n)
        self._score += gained
        return gained
