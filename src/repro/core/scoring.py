"""The representative score (Eq. 1–2) and its incremental evaluation.

``Score(S) = Sim(O, S) = (1/|O|) Σ_{o∈O} o.ω · Sim(o, S)`` where
``Sim(o, S)`` aggregates pairwise similarities over ``S`` (``max`` by
default).

Two access patterns are served:

* :func:`representative_score` — one-shot evaluation, used to report
  results and by tests.
* :class:`MarginalGainState` — the incremental form driving the greedy
  algorithm: it carries ``best[o] = Sim(o, S)`` for the current ``S``
  so a marginal gain is one vectorized ``sims_to`` plus a clipped sum,
  and adding a pick is one ``maximum`` update.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.problem import Aggregation
from repro.similarity.base import RowsKernel


def similarity_to_set(
    dataset: GeoDataset,
    obj_id: int,
    selected: np.ndarray,
    aggregation: Aggregation = Aggregation.MAX,
) -> float:
    """``Sim(o, S)`` for a single object (Eq. 1, or its sum/avg variant)."""
    selected = np.asarray(selected, dtype=np.int64)
    if len(selected) == 0:
        return 0.0
    sims = dataset.similarity.sims_to(int(obj_id), selected)
    if aggregation is Aggregation.MAX:
        return float(sims.max())
    if aggregation is Aggregation.SUM:
        return float(sims.sum())
    return float(sims.mean())


def representative_score(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
    aggregation: Aggregation = Aggregation.MAX,
) -> float:
    """``Sim(O, S)`` (Eq. 2) for population ``O = region_ids``.

    Empty population or empty selection scores 0.
    """
    region_ids = np.asarray(region_ids, dtype=np.int64)
    selected = np.asarray(selected, dtype=np.int64)
    if len(region_ids) == 0 or len(selected) == 0:
        return 0.0
    agg = _aggregate_matrix(dataset, region_ids, selected, aggregation)
    weights = dataset.weights[region_ids]
    return float(np.dot(weights, agg) / len(region_ids))


def _aggregate_matrix(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
    aggregation: Aggregation,
) -> np.ndarray:
    """``Sim(o, S)`` for every ``o`` in the region, vectorized over S.

    Iterates over the (small) selected set, calling the row kernel once
    per pick — ``O(k)`` kernel calls rather than ``O(|O|)``.
    """
    if aggregation is Aggregation.MAX:
        acc = np.zeros(len(region_ids), dtype=np.float64)
        for v in selected:
            np.maximum(acc, dataset.similarity.sims_to(int(v), region_ids), out=acc)
        return acc
    total = np.zeros(len(region_ids), dtype=np.float64)
    for v in selected:
        total += dataset.similarity.sims_to(int(v), region_ids)
    if aggregation is Aggregation.SUM:
        return total
    return total / len(selected)


def assign_representatives(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
) -> np.ndarray:
    """Representative (in ``selected``) of every region object.

    The paper's "map exploration extension" (Sec. 3.2, Fig. 1(c)):
    each hidden object is represented by the selected object most
    similar to it — clicking a marker highlights the objects it
    represents.  Returns, aligned with ``region_ids``, the selected
    object id that represents each region object (a selected object
    represents itself).  Raises on an empty selection.
    """
    region_ids = np.asarray(region_ids, dtype=np.int64)
    selected = np.asarray(selected, dtype=np.int64)
    if len(selected) == 0:
        raise ValueError("cannot assign representatives to an empty selection")
    best_sim = np.full(len(region_ids), -np.inf)
    best_rep = np.full(len(region_ids), selected[0], dtype=np.int64)
    for v in selected:
        sims = dataset.similarity.sims_to(int(v), region_ids)
        better = sims > best_sim
        best_sim[better] = sims[better]
        best_rep[better] = int(v)
    return best_rep


def represented_objects(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    selected: np.ndarray,
    marker: int,
) -> np.ndarray:
    """Region objects whose representative is ``marker``.

    The click-to-expand interaction: given the whole selection and one
    clicked marker, return the hidden objects it stands for (excluding
    the marker itself).
    """
    reps = assign_representatives(dataset, region_ids, selected)
    region_ids = np.asarray(region_ids, dtype=np.int64)
    mine = region_ids[reps == int(marker)]
    return mine[mine != int(marker)]


def weighted_gain_rows(
    sims: np.ndarray,
    best: np.ndarray,
    weights: np.ndarray,
    aggregation: Aggregation,
) -> np.ndarray:
    """Marginal gains for a block of similarity rows.

    The batched twin of the reduction inside
    :meth:`MarginalGainState.gain`, shared with the process workers.
    Deliberately reduces row by row with the same 1-D ``np.dot`` — a
    single matrix-vector product could change BLAS accumulation order
    and break the bit-identity the CELF tie-break depends on.
    """
    n_rows, n = sims.shape
    out = np.empty(n_rows, dtype=np.float64)
    if n == 0:
        out.fill(0.0)
        return out
    for b in range(n_rows):
        if aggregation is Aggregation.MAX:
            improvement = np.maximum(sims[b] - best, 0.0)
        else:  # SUM: modular — the contribution is the full row.
            improvement = sims[b]
        out[b] = float(np.dot(weights, improvement) / n)
    return out


class MarginalGainState:
    """Incremental ``Sim(O, ·)`` state for the greedy loop.

    Holds the region population (ids + weights) and, for ``MAX``
    aggregation, the per-object best similarity to the current
    selection.  For ``SUM`` the gain of an object is independent of the
    selection (the function is modular), so no per-object state is
    needed.

    ``AVG`` is not supported here: it is neither monotone nor
    submodular, so the greedy machinery (and its guarantee) does not
    apply.  Use :func:`representative_score` to *evaluate* AVG scores.
    """

    def __init__(
        self,
        dataset: GeoDataset,
        region_ids: np.ndarray,
        aggregation: Aggregation = Aggregation.MAX,
    ) -> None:
        if aggregation is Aggregation.AVG:
            raise ValueError(
                "AVG aggregation is evaluation-only; greedy requires a "
                "monotone submodular objective (use MAX or SUM)"
            )
        self.dataset = dataset
        self.region_ids = np.asarray(region_ids, dtype=np.int64)
        self.aggregation = aggregation
        self.weights = dataset.weights[self.region_ids]
        self._n = len(self.region_ids)
        self._best = np.zeros(self._n, dtype=np.float64)
        self._score = 0.0
        self.gain_evaluations = 0
        # Similarity rows pulled against the population — gains *and*
        # committed picks.  This is the unit the similarity cache turns
        # into gathers, so selectors report it next to gain_evaluations.
        self.kernel_rows = 0
        # Kernel *invocations* — each scalar call is one, each batched
        # block is one.  The batching win (rows amortized per call) is
        # kernel_rows / kernel_calls.
        self.kernel_calls = 0
        # Population-specialized row kernel: each gain evaluation is one
        # call against the same id set, so amortized setup pays off.
        self._kernel = dataset.similarity.row_kernel(self.region_ids)
        self._rows_kernel = None  # block kernel, built on first use
        # SUM is modular: an object's gain never changes as S grows, so
        # it is computed once and memoized (repeated heap pops are O(1)).
        self._sum_gains: dict[int, float] = {}

    @property
    def score(self) -> float:
        """Current ``Sim(O, S)`` of everything added so far."""
        return self._score

    @property
    def population_size(self) -> int:
        """Number of objects in the scored population ``O``."""
        return self._n

    def gain(self, obj_id: int) -> float:
        """Marginal gain ``Sim(O, S ∪ {v}) − Sim(O, S)`` for ``v``."""
        if self._n == 0:
            return 0.0
        obj = int(obj_id)
        self.gain_evaluations += 1
        if self.aggregation is Aggregation.SUM:
            cached = self._sum_gains.get(obj)
            if cached is not None:
                return cached
        self.kernel_rows += 1
        self.kernel_calls += 1
        sims = self._kernel(obj)
        if self.aggregation is Aggregation.MAX:
            improvement = np.maximum(sims - self._best, 0.0)
        else:  # SUM: modular — the contribution is the full row.
            improvement = sims
        value = float(np.dot(self.weights, improvement) / self._n)
        if self.aggregation is Aggregation.SUM:
            self._sum_gains[obj] = value
        return value

    def batch_kernel(self) -> RowsKernel:
        """The population-specialized block kernel (built lazily).

        Callers that dispatch :meth:`batch_gains` across threads should
        touch this once first so the lazy build is not raced.
        """
        if self._rows_kernel is None:
            self._rows_kernel = self.dataset.similarity.rows_kernel(
                self.region_ids
            )
        return self._rows_kernel

    def batch_gains(self, obj_ids: np.ndarray, count: bool = True) -> np.ndarray:
        """Marginal gains for a whole candidate block (one kernel call).

        Bit-identical to calling :meth:`gain` per object — the block
        kernel reproduces the scalar kernel's rows and
        :func:`weighted_gain_rows` reproduces its reduction.  With
        ``count=False`` the counters are left untouched (a worker pool
        aggregates them once per sweep so concurrent tasks never race
        on them).
        """
        obj_ids = np.asarray(obj_ids, dtype=np.int64)
        if len(obj_ids) == 0:
            return np.zeros(0, dtype=np.float64)
        if self._n == 0:
            gains = np.zeros(len(obj_ids), dtype=np.float64)
        else:
            sims = self.batch_kernel()(obj_ids)
            gains = weighted_gain_rows(
                sims, self._best, self.weights, self.aggregation
            )
            if self.aggregation is Aggregation.SUM:
                for obj, value in zip(obj_ids.tolist(), gains.tolist()):
                    self._sum_gains[obj] = value
        if count:
            self.note_batches(rows=len(obj_ids), calls=1)
        return gains

    def note_batches(self, rows: int, calls: int) -> None:
        """Record counter movement for ``rows`` gains over ``calls`` kernels."""
        self.gain_evaluations += rows
        self.kernel_rows += rows
        self.kernel_calls += calls

    def best_view(self) -> np.ndarray:
        """The internal ``best[o] = Sim(o, S)`` vector (not a copy).

        Exported to shared memory for process-parallel sweeps; callers
        must not mutate it or hold it across :meth:`add` calls.
        """
        return self._best

    def add(self, obj_id: int) -> float:
        """Commit ``v`` to the selection; returns the realized gain."""
        if self._n == 0:
            return 0.0
        obj = int(obj_id)
        if self.aggregation is Aggregation.SUM:
            gained = self._sum_gains.get(obj)
            if gained is None:
                self.kernel_rows += 1
                self.kernel_calls += 1
                sims = self._kernel(obj)
                gained = float(np.dot(self.weights, sims) / self._n)
                self._sum_gains[obj] = gained
            self._score += gained
            return gained
        self.kernel_rows += 1
        self.kernel_calls += 1
        sims = self._kernel(obj)
        improvement = np.maximum(sims - self._best, 0.0)
        np.maximum(self._best, sims, out=self._best)
        gained = float(np.dot(self.weights, improvement) / self._n)
        self._score += gained
        return gained
