"""Incremental ISOS delta maintenance between navigation steps.

Every navigation step so far re-derived its heap-seeding material from
scratch (prefetch sweep, warm-start harvest, or tile composition) or
fell back to a cold ``O(|O|·|G|)`` initialization.  The
:class:`DeltaGainMaintainer` closes the remaining gap — *arbitrary*
overlapping navigation, including pans and zoom-outs that the
containment-only :class:`~repro.cache.SelectionCache` cannot serve —
by maintaining one memo across steps and updating it with the
viewport *diff* instead of recomputing it:

* The memo holds, for every object ``v`` of an **expanded** viewport
  (the committed region grown by a margin), the unnormalized Lemma-5.1
  mass ``M(v) = Σ_{o∈sources} ω_o · Sim(o, v)`` over a source set that
  always contains the expanded population.
* On commit, the new expanded population is **diffed** against the
  memo: retained objects keep their memoized mass plus one bulk
  ``weighted_sims_sum`` over the *entering* sources; entering objects
  get one bulk mass over the source union.  Cost is ``O(delta)`` per
  step — nothing is recomputed for the overlap.
* Sources are only ever **added**, never subtracted: for any current
  population ``P ⊆ sources``, the memoized mass upper-bounds the true
  mass over ``P`` term-by-term (similarities and weights are
  non-negative), so ``M(v)/|O_new|`` remains a valid Lemma-5.1 upper
  bound on any first-iteration gain — no cancellation, no error
  accumulation.  Leavers make the bounds *looser*, not wrong; when the
  stale-source excess passes ``refresh_fraction`` the memo is rebuilt
  exactly.
* Serving multiplies by ``1 + BOUND_SAFETY`` (the tile store's
  guard): the greedy's CELF shortcut needs strictly-valid bounds, and
  the inflation absorbs the last-ulp differences between the bulk
  reduction and the scalar gain path.

Selections seeded this way are bit-identical to cold starts for the
same reason prefetch/warm/tile seeding is: the heap refreshes every
stale bound that reaches the top, and the strict CELF tie-break makes
each pick canonical (see :mod:`repro.core.lazy_heap`).

The maintainer mirrors the :class:`~repro.cache.SelectionCache` API
shape: ``bounds_for`` on the response path (cheap id matching),
``update`` off the response path after each commit, explicit
``delta.skipped.<reason>`` metrics for every fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import GeoDataset
from repro.geo.bbox import BoundingBox
from repro.metrics import MetricsRegistry

# Matches repro.tiles.store.BOUND_SAFETY: relative inflation applied to
# served bounds so reduction-order ulps can never produce an invalid
# (too small) upper bound.
BOUND_SAFETY = 1e-9

# How far beyond the committed viewport the memo reaches, as a fraction
# of the larger viewport side added on every edge.  0.5 means the memo
# covers a region 2x the viewport's linear size — every pan up to half
# a screen and every zoom-out up to 2x is served from the memo.
DEFAULT_MARGIN = 0.5

# Populations larger than this are not maintained: the initial
# O(|P|^2) mass build (and the per-step O(delta·|P|) updates) would
# dominate the steps they accelerate.
DEFAULT_MAX_POPULATION = 50_000

# Full-rebuild trigger: when stale sources (accumulated leavers still
# summed into the masses) exceed this fraction of the live population,
# the bounds have loosened enough that a fresh exact memo pays for
# itself.
DEFAULT_REFRESH_FRACTION = 0.5


@dataclass
class DeltaMemo:
    """The maintained state for one expanded viewport."""

    region: BoundingBox  # expanded region the memo covers
    ids: np.ndarray  # sorted population of the expanded region
    masses: np.ndarray  # aligned unnormalized masses over `sources`
    sources: np.ndarray  # sorted source set the masses sum over (⊇ ids)


class DeltaGainMaintainer:
    """O(delta) heap-seeding bounds for overlapping navigation steps.

    Parameters
    ----------
    margin:
        Expansion of the maintained region beyond the committed
        viewport (fraction of the larger side, added per edge).
        Larger margins serve bigger pans/zoom-outs from the memo but
        grow the maintained population.
    max_population:
        Guard on the expanded population size; above it the maintainer
        steps aside entirely (``delta.skipped.population``).
    refresh_fraction:
        Stale-source excess (``(|sources| - |P|) / |P|``) that triggers
        an exact rebuild instead of an incremental update.
    metrics:
        Optional shared :class:`~repro.metrics.MetricsRegistry`.
    """

    def __init__(
        self,
        margin: float = DEFAULT_MARGIN,
        max_population: int = DEFAULT_MAX_POPULATION,
        refresh_fraction: float = DEFAULT_REFRESH_FRACTION,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        if max_population < 1:
            raise ValueError(
                f"max_population must be positive, got {max_population}"
            )
        if refresh_fraction <= 0:
            raise ValueError(
                f"refresh_fraction must be positive, got {refresh_fraction}"
            )
        self.margin = margin
        self.max_population = max_population
        self.refresh_fraction = refresh_fraction
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._memo: DeltaMemo | None = None

    @property
    def memo(self) -> DeltaMemo | None:
        """The maintained state (``None`` when cold)."""
        return self._memo

    def invalidate(self) -> None:
        """Drop the memo (dataset swap, session reset)."""
        self._memo = None

    # ------------------------------------------------------------------
    # Response path
    # ------------------------------------------------------------------

    def bounds_for(
        self,
        new_region: BoundingBox,
        new_ids: np.ndarray,
        candidate_ids: np.ndarray,
    ) -> np.ndarray | None:
        """Upper bounds aligned with ``candidate_ids``, or ``None``.

        Serves only when the new viewport lies inside the memo's
        expanded region **and** the new population is contained in the
        memo's source set (checked explicitly — an index fallback or a
        boundary disagreement must degrade to a cold start, never to a
        wrong bound).  Candidates without a memoized mass get ``NaN``
        (the greedy fills them exactly); pure id matching, no
        similarity work on the response path.
        """
        memo = self._memo
        if memo is None:
            return self._skip("no_memo")
        if len(new_ids) == 0 or len(candidate_ids) == 0:
            return self._skip("empty")
        if not memo.region.contains_box(new_region):
            return self._skip("not_contained")
        new_ids = np.asarray(new_ids, dtype=np.int64)
        if not self._all_members(memo.sources, new_ids):
            # Population ⊄ sources would break the Lemma 5.1 argument:
            # an object outside the source set contributes mass the
            # memo never summed.
            return self._skip("population_mismatch")
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        pos = np.searchsorted(memo.ids, candidate_ids)
        pos_safe = np.minimum(pos, len(memo.ids) - 1)
        found = memo.ids[pos_safe] == candidate_ids
        if not found.any():
            return self._skip("no_coverage")
        bounds = np.full(len(candidate_ids), np.nan, dtype=np.float64)
        bounds[found] = (
            memo.masses[pos_safe[found]]
            * (1.0 + BOUND_SAFETY)
            / float(len(new_ids))
        )
        self.metrics.incr("delta.serves")
        self.metrics.incr("delta.seeded_bounds", int(found.sum()))
        self.metrics.incr("delta.exact_fallbacks", int((~found).sum()))
        return bounds

    # ------------------------------------------------------------------
    # Off the response path
    # ------------------------------------------------------------------

    def update(
        self,
        dataset: GeoDataset,
        region: BoundingBox,
        population: np.ndarray | None = None,
    ) -> None:
        """Maintain the memo for the just-committed ``region``.

        Runs after each navigation commit, off the response path.  The
        incremental case touches only the diff: entering sources are
        added into every retained mass with one bulk kernel, entering
        targets get one bulk mass over the source union.

        ``population`` overrides the maintained population (sorted
        ids); callers with a non-spatial filter — the time-slider's
        window — pass the filtered population of the *expanded* region
        so the memo diffs along their axis too.  Without it the
        population is the expanded region's spatial query.
        """
        expanded = region.expanded(
            self.margin * max(region.width, region.height)
        )
        if population is None:
            population = np.sort(
                np.asarray(dataset.objects_in(expanded), dtype=np.int64)
            )
        else:
            population = np.sort(
                np.asarray(population, dtype=np.int64)
            )
        if len(population) == 0 or len(population) > self.max_population:
            self._memo = None
            self.metrics.incr("delta.skipped.population")
            return
        memo = self._memo
        if memo is None:
            self._rebuild(dataset, expanded, population)
            return
        # Stale sources are live sources that left the population but
        # stay summed into the masses (looser bounds); past the
        # threshold a fresh memo pays for itself.
        stale_excess = (len(memo.sources) - len(population)) / len(population)
        if stale_excess > self.refresh_fraction:
            self._rebuild(dataset, expanded, population)
            return

        retained_mask = self._membership(memo.ids, population)
        retained = population[retained_mask]
        entering = population[~retained_mask]
        if len(retained) * 2 < len(population):
            # Mostly-disjoint step (teleport-style): the incremental
            # update would do near-full work over an inflated source
            # union — rebuild exactly instead.
            self._rebuild(dataset, expanded, population)
            return

        weights = dataset.weights
        enter_sources = population[
            ~self._membership(memo.sources, population)
        ]
        sources = memo.sources
        if len(enter_sources):
            sources = np.union1d(memo.sources, enter_sources)
        masses = np.empty(len(population), dtype=np.float64)
        pos = np.searchsorted(memo.ids, retained)
        base = memo.masses[pos]
        if len(enter_sources) and len(retained):
            base = base + dataset.similarity.weighted_sims_sum(
                retained, enter_sources, weights[enter_sources]
            )
        masses[retained_mask] = base
        if len(entering):
            masses[~retained_mask] = dataset.similarity.weighted_sims_sum(
                entering, sources, weights[sources]
            )
        self._memo = DeltaMemo(
            region=expanded, ids=population, masses=masses, sources=sources
        )
        self.metrics.incr("delta.updates")
        self.metrics.incr("delta.entered_targets", len(entering))
        self.metrics.incr("delta.entered_sources", len(enter_sources))
        self.metrics.incr("delta.retained_targets", len(retained))

    def _rebuild(
        self,
        dataset: GeoDataset,
        expanded: BoundingBox,
        population: np.ndarray,
    ) -> None:
        masses = dataset.similarity.weighted_sims_sum(
            population, population, dataset.weights[population]
        )
        self._memo = DeltaMemo(
            region=expanded,
            ids=population,
            masses=np.asarray(masses, dtype=np.float64),
            sources=population,
        )
        self.metrics.incr("delta.rebuilds")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _membership(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
        """Boolean mask: which ``needles`` appear in sorted ``haystack``."""
        if len(haystack) == 0:
            return np.zeros(len(needles), dtype=bool)
        pos = np.searchsorted(haystack, needles)
        pos_safe = np.minimum(pos, len(haystack) - 1)
        return haystack[pos_safe] == needles

    @classmethod
    def _all_members(
        cls, haystack: np.ndarray, needles: np.ndarray
    ) -> bool:
        return bool(cls._membership(haystack, needles).all())

    def _skip(self, reason: str) -> None:
        self.metrics.incr(f"delta.skipped.{reason}")
        return None
