"""Problem and result types for SOS and ISOS queries.

These are the I/O value objects shared by every selector (greedy,
baselines, sampling, exact), so results are directly comparable in the
experiment harness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.geo.bbox import BoundingBox


class Aggregation(enum.Enum):
    """How ``Sim(o, S)`` aggregates over the selected set.

    The paper defines ``max`` (Eq. 1) and notes the solution "can also
    be extended to handle other aggregation metrics, such as sum or
    avg".  ``MAX`` and ``SUM`` are both monotone submodular (``SUM`` is
    modular), so the greedy guarantee applies; ``AVG`` is provided for
    score *evaluation* only.
    """

    MAX = "max"
    SUM = "sum"
    AVG = "avg"


@dataclass(frozen=True)
class RegionQuery:
    """An SOS query: region of interest, result size ``k``, threshold ``θ``.

    ``theta`` is a world-frame distance.  The paper's convention is
    ``θ = 0.003`` of the query-region side length (Table 2);
    :meth:`theta_for` computes that.
    """

    region: BoundingBox
    k: int
    theta: float

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.theta < 0:
            raise ValueError(f"theta must be non-negative, got {self.theta}")

    @staticmethod
    def theta_for(region: BoundingBox, fraction: float = 0.003) -> float:
        """Visibility threshold as a fraction of the region side length."""
        return fraction * max(region.width, region.height)

    @classmethod
    def with_theta_fraction(
        cls, region: BoundingBox, k: int, theta_fraction: float = 0.003
    ) -> "RegionQuery":
        """Query whose ``θ`` follows the paper's region-relative rule."""
        return cls(region=region, k=k, theta=cls.theta_for(region, theta_fraction))


@dataclass(frozen=True)
class TimeWindowQuery:
    """An SOS query restricted to a half-open time window.

    Composes the spatial :class:`RegionQuery` with a time interval
    ``[t_start, t_end)``: the population is the objects inside the
    region *whose timestamp falls in the window*
    (:meth:`~repro.core.dataset.GeoDataset.objects_in_window`).  The
    half-open convention lets adjacent windows tile the timeline with
    no object counted twice — stepping a time slider by the window
    span visits every object exactly once.
    """

    region: BoundingBox
    k: int
    theta: float
    t_start: float
    t_end: float

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.theta < 0:
            raise ValueError(f"theta must be non-negative, got {self.theta}")
        if not (
            np.isfinite(self.t_start) and np.isfinite(self.t_end)
        ):
            raise ValueError("time window bounds must be finite")
        if self.t_end <= self.t_start:
            raise ValueError(
                f"empty time window [{self.t_start}, {self.t_end})"
            )

    @property
    def span(self) -> float:
        """Window length ``t_end - t_start``."""
        return self.t_end - self.t_start

    @property
    def window(self) -> tuple[float, float]:
        """The ``(t_start, t_end)`` pair."""
        return (self.t_start, self.t_end)

    @property
    def spatial(self) -> RegionQuery:
        """The spatial projection (drops the time dimension)."""
        return RegionQuery(region=self.region, k=self.k, theta=self.theta)

    def shifted(self, dt: float) -> "TimeWindowQuery":
        """The same query with the window translated by ``dt``
        (one time-slider step)."""
        return TimeWindowQuery(
            region=self.region,
            k=self.k,
            theta=self.theta,
            t_start=self.t_start + dt,
            t_end=self.t_end + dt,
        )

    @classmethod
    def with_theta_fraction(
        cls,
        region: BoundingBox,
        k: int,
        t_start: float,
        t_end: float,
        theta_fraction: float = 0.003,
    ) -> "TimeWindowQuery":
        """Window query whose ``θ`` follows the region-relative rule."""
        return cls(
            region=region,
            k=k,
            theta=RegionQuery.theta_for(region, theta_fraction),
            t_start=t_start,
            t_end=t_end,
        )


@dataclass(frozen=True)
class IsosQuery:
    """An ISOS query (Def. 3.6).

    ``candidates`` is the set ``G`` the selector may pick from and
    ``mandatory`` is the set ``D`` that must remain visible; both are
    id arrays into the dataset.  ``|S ∪ D| = k`` overall.
    """

    region: BoundingBox
    k: int
    theta: float
    candidates: np.ndarray
    mandatory: np.ndarray

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.theta < 0:
            raise ValueError(f"theta must be non-negative, got {self.theta}")
        object.__setattr__(
            self, "candidates", np.asarray(self.candidates, dtype=np.int64)
        )
        object.__setattr__(
            self, "mandatory", np.asarray(self.mandatory, dtype=np.int64)
        )
        if len(self.mandatory) > self.k:
            raise ValueError(
                f"|D| = {len(self.mandatory)} exceeds k = {self.k}"
            )
        overlap = np.intersect1d(self.candidates, self.mandatory)
        if len(overlap):
            raise ValueError(
                f"candidate set G and mandatory set D overlap: {overlap[:5]}"
            )


@dataclass
class SelectionResult:
    """Output of any selector.

    Attributes
    ----------
    selected:
        Selected object ids, in pick order (mandatory ids first for
        ISOS).
    score:
        Representative score ``Sim(O, S)`` (Eq. 2) over the region
        population the selector worked with.
    region_ids:
        Ids of the region population ``O`` the score refers to.
    stats:
        Free-form counters from the selector: ``gain_evaluations``
        (marginal-gain recomputations, the paper's ``nc``),
        ``heap_pushes``, ``sample_size``, ``elapsed_s``, ...
    degraded:
        ``True`` when the selection is a best-effort answer rather
        than the selector's full computation: an anytime prefix cut
        short by a :class:`~repro.robustness.Budget`, or a lower tier
        of the :mod:`repro.robustness.ladder`.  Degraded results are
        still ``θ``-feasible; ``stats["budget_exhausted"]`` /
        ``stats["tier"]`` say why and how.
    """

    selected: np.ndarray
    score: float
    region_ids: np.ndarray
    stats: dict = field(default_factory=dict)
    degraded: bool = False

    def __post_init__(self) -> None:
        self.selected = np.asarray(self.selected, dtype=np.int64)
        self.region_ids = np.asarray(self.region_ids, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.selected)

    @property
    def selected_set(self) -> set[int]:
        """Selected ids as a plain python set."""
        return set(int(i) for i in self.selected)
