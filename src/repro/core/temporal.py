"""Temporal prefetching for time-slider navigation.

Time is the fourth navigation axis: a :class:`TimeWindowQuery` slides
a half-open window ``[t0, t1)`` along the timeline while the viewport
stays put.  The expensive part of serving a slider step is the same as
for spatial navigation — heap initialization, one exact marginal gain
per candidate — and the same Lemma 5.1 argument removes it: while the
user studies the *current* window, precompute for every object of the
*next* (and *previous*) window the weighted similarity mass

``raw(v) = Σ_{o'∈P} ω_{o'} · Sim(o', v)``

over that window's population ``P``.  When the step lands, the realized
population ``On`` equals ``P`` (same region, same window), so
``raw(v)/|On|`` upper-bounds the first-iteration gain by monotonicity
+ submodularity, exactly as in :mod:`repro.core.prefetch`.  A step of
a *different* stride than the prefetched one simply misses (data is
keyed by the exact window) and the session falls through to the next
seeding tier — never a wrong bound.

The sweep runs off the response path (after each commit) and can be
fanned out over a :class:`~repro.parallel.WorkerPool` via
:meth:`~repro.parallel.WorkerPool.mass_sweep`, which ships the model
once through its shared-memory ``process_spec()`` pack.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import GeoDataset
from repro.geo.bbox import BoundingBox
from repro.parallel import WorkerPool
from repro.robustness.errors import PrefetchUnavailable
from repro.robustness.faults import PREFETCH_COMPUTE, FaultInjector
from repro.trace.tracer import NULL_TRACER, TracerLike

# Matches repro.tiles.store / repro.core.delta: relative inflation on
# served bounds so reduction-order ulps can never yield an invalid
# (too small) upper bound.
BOUND_SAFETY = 1e-9


@dataclass
class TemporalPrefetchData:
    """Precomputed Lemma-5.1 masses for one (region, window) pair.

    ``ids`` are the spatio-temporal population of the prefetched
    window inside ``source_region``; ``raw_sums`` aligns with ``ids``
    and holds the weighted similarity mass of each object over that
    population.
    """

    window: tuple[float, float]
    source_region: BoundingBox
    ids: np.ndarray
    raw_sums: np.ndarray
    elapsed_s: float

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.raw_sums = np.asarray(self.raw_sums, dtype=np.float64)
        if len(self.ids) != len(self.raw_sums):
            raise ValueError("ids and raw_sums must align")
        self._pos = {int(i): row for row, i in enumerate(self.ids)}

    def matches(
        self, region: BoundingBox, window: tuple[float, float]
    ) -> bool:
        """Whether this data was computed for exactly this step target.

        Temporal bounds are only reused for the precise (region,
        window) they were swept for — population equality is what makes
        the masses exact-population bounds, so near-misses fall through
        to the next seeding tier instead of risking a stale sum.
        """
        return (
            self.source_region == region
            and self.window[0] == window[0]
            and self.window[1] == window[1]
        )

    def covers(self, candidate_ids: np.ndarray) -> bool:
        """Whether every candidate has a precomputed mass."""
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        if len(candidate_ids) == 0:
            return True
        return bool(np.isin(candidate_ids, self.ids).all())

    def bounds_for(
        self, candidate_ids: np.ndarray, population_size: int
    ) -> np.ndarray:
        """Upper bounds on first-iteration gains, aligned with candidates.

        Raises :class:`~repro.robustness.PrefetchUnavailable` on a
        coverage miss so the session's cold-serve fallback engages
        instead of a bare ``KeyError`` escaping the response path.
        """
        if population_size <= 0:
            raise ValueError("population_size must be positive")
        try:
            rows = np.fromiter(
                (self._pos[int(i)] for i in candidate_ids),
                dtype=np.int64,
                count=len(candidate_ids),
            )
        except KeyError as exc:
            raise PrefetchUnavailable(
                f"temporal prefetch {self.window} has no bound for "
                f"candidate {exc.args[0]!r}"
            ) from None
        return (
            self.raw_sums[rows]
            * (1.0 + BOUND_SAFETY)
            / float(population_size)
        )


class TemporalPrefetcher:
    """Computes :class:`TemporalPrefetchData` for slider step targets.

    Mirrors :class:`~repro.core.prefetch.Prefetcher`: the same
    ``prefetch.compute`` fault point (temporal sweeps must also stay
    off the response path), the same tracer span convention
    (``prefetch.window``), and the same mass kernel — with an optional
    :class:`~repro.parallel.WorkerPool` fan-out for large windows.
    """

    def __init__(
        self,
        dataset: GeoDataset,
        pool: WorkerPool | None = None,
        fault_injector: FaultInjector | None = None,
        tracer: TracerLike | None = None,
    ) -> None:
        if dataset.ts is None:
            raise ValueError(
                "temporal prefetching requires dataset timestamps "
                "(ts is None)"
            )
        self.dataset = dataset
        self.pool = pool
        self.fault_injector = fault_injector
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def _check(self) -> None:
        if self.fault_injector is not None:
            self.fault_injector.check(PREFETCH_COMPUTE)

    def _raw_sums(self, ids: np.ndarray) -> np.ndarray:
        weights = self.dataset.weights[ids]
        if self.pool is not None:
            return self.pool.mass_sweep(ids, ids, weights)
        return self.dataset.similarity.weighted_sims_sum(ids, ids, weights)

    def prefetch_window(
        self, region: BoundingBox, window: tuple[float, float]
    ) -> TemporalPrefetchData:
        """Masses for the population of ``window`` inside ``region``."""
        t_start, t_end = float(window[0]), float(window[1])
        with self.tracer.span("prefetch.window") as span:
            self._check()
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            started = time.perf_counter()
            ids = self.dataset.objects_in_window(region, t_start, t_end)
            raw = self._raw_sums(ids)
            span.annotate(objects=len(ids), t_start=t_start, t_end=t_end)
        return TemporalPrefetchData(
            window=(t_start, t_end),
            source_region=region,
            ids=ids,
            raw_sums=raw,
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            elapsed_s=time.perf_counter() - started,
        )

    def prefetch_steps(
        self,
        region: BoundingBox,
        window: tuple[float, float],
        dt: float,
    ) -> dict[tuple[float, float], TemporalPrefetchData]:
        """Masses for the next and previous slider positions.

        The two sweeps are what the session runs off-path after each
        temporal commit: a subsequent ``time_step(+dt)`` or
        ``time_step(-dt)`` then seeds its heap from the matching entry.
        """
        t_start, t_end = float(window[0]), float(window[1])
        targets = [
            (t_start + dt, t_end + dt),
            (t_start - dt, t_end - dt),
        ]
        return {
            target: self.prefetch_window(region, target)
            for target in targets
        }
