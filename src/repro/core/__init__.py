"""Core of the reproduction: the SOS and ISOS problems and their solvers.

Public surface:

* :class:`GeoDataset` — objects + spatial index + similarity model.
* :class:`RegionQuery` / :class:`SelectionResult` — problem I/O types.
* :func:`greedy_select` — the paper's Algorithm 1 (lazy-forward greedy,
  1/8-approximate).
* :func:`isos_select` — the ISOS extension with mandatory set ``D`` and
  candidate set ``G`` (Sec. 5.1).
* :class:`MapSession` — interactive navigation (zoom-in / zoom-out /
  pan) enforcing the zooming- and panning-consistency constraints.
* :class:`Prefetcher` — the Sec. 5.2 upper-bound precomputation.
* :func:`sass_select` — the SaSS sampling extension (Algorithm 2).
* :func:`exact_select` — brute-force optimum for tiny instances.
"""

from repro.core.dataset import GeoDataset
from repro.core.delta import DeltaGainMaintainer
from repro.core.exact import exact_select
from repro.core.greedy import greedy_select
from repro.core.isos import isos_select
from repro.core.prediction import FrequencyPredictor, NavigationPredictor
from repro.core.prefetch import PrefetchData, Prefetcher
from repro.core.problem import (
    Aggregation,
    IsosQuery,
    RegionQuery,
    SelectionResult,
    TimeWindowQuery,
)
from repro.core.sampling import (
    hoeffding_sample_size,
    sass_select,
    serfling_sample_size,
)
from repro.core.scoring import (
    assign_representatives,
    represented_objects,
    representative_score,
    similarity_to_set,
)
from repro.core.session import (
    MapSession,
    NavigationStep,
    theta_fraction_for_screen,
)
from repro.core.streaming import StreamingSelector, StreamLengthMismatch
from repro.core.temporal import TemporalPrefetchData, TemporalPrefetcher

__all__ = [
    "Aggregation",
    "DeltaGainMaintainer",
    "FrequencyPredictor",
    "GeoDataset",
    "IsosQuery",
    "MapSession",
    "NavigationPredictor",
    "NavigationStep",
    "PrefetchData",
    "Prefetcher",
    "RegionQuery",
    "SelectionResult",
    "StreamLengthMismatch",
    "StreamingSelector",
    "TemporalPrefetchData",
    "TemporalPrefetcher",
    "TimeWindowQuery",
    "assign_representatives",
    "exact_select",
    "greedy_select",
    "hoeffding_sample_size",
    "isos_select",
    "representative_score",
    "represented_objects",
    "sass_select",
    "serfling_sample_size",
    "similarity_to_set",
    "theta_fraction_for_screen",
]
