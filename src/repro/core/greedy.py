"""Algorithm 1: the lazy-forward greedy for SOS (1/8-approximate).

Each iteration picks the object with the maximum marginal increase of
the representative score, then removes every remaining object within
``θ`` of the pick (visibility constraint).  Submodularity (Lemma 4.1)
makes stale gains valid upper bounds, so the max-heap only recomputes
gains for objects that surface at the top — in practice a small
fraction ``nc ≪ n`` of the population (see the lazy-forward ablation
benchmark).

The same engine serves ISOS (:mod:`repro.core.isos`) and the
prefetch-accelerated path: callers can seed the selection with a
mandatory set and initialize the heap from precomputed upper bounds
instead of exact gains.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.lazy_heap import LazyForwardHeap
from repro.core.problem import Aggregation, RegionQuery, SelectionResult
from repro.core.scoring import MarginalGainState


def greedy_select(
    dataset: GeoDataset,
    query: RegionQuery,
    aggregation: Aggregation = Aggregation.MAX,
    lazy: bool = True,
    init_mode: str = "exact",
    candidates: np.ndarray | None = None,
) -> SelectionResult:
    """Solve an SOS query with the greedy algorithm (Algorithm 1).

    Parameters
    ----------
    dataset:
        The object collection.
    query:
        Region of interest, ``k`` and ``θ``.
    aggregation:
        ``Sim(o, S)`` aggregation (MAX default; SUM also supported).
    lazy:
        Disable to force recomputation of every heap entry each
        iteration (the naive greedy).  Exposed for the lazy-forward
        ablation; results are identical either way.
    candidates:
        Optional filtering condition (Sec. 3.3): restrict picks to
        these ids — e.g. ``dataset.keyword_filter("restaurant")``.
        The representative score is still computed over the whole
        region population; only membership of ``S`` is restricted.
    """
    region_ids = dataset.objects_in(query.region)
    if candidates is None:
        candidate_ids = region_ids
    else:
        candidate_ids = np.intersect1d(
            region_ids, np.asarray(candidates, dtype=np.int64)
        )
    return greedy_core(
        dataset,
        region_ids=region_ids,
        candidate_ids=candidate_ids,
        mandatory_ids=np.empty(0, dtype=np.int64),
        k=query.k,
        theta=query.theta,
        aggregation=aggregation,
        lazy=lazy,
        init_mode=init_mode,
    )


def greedy_core(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    candidate_ids: np.ndarray,
    mandatory_ids: np.ndarray,
    k: int,
    theta: float,
    aggregation: Aggregation = Aggregation.MAX,
    initial_bounds: np.ndarray | None = None,
    lazy: bool = True,
    init_mode: str = "exact",
) -> SelectionResult:
    """Shared greedy engine for SOS, ISOS and the prefetch path.

    Parameters
    ----------
    region_ids:
        The population ``O`` the score is computed over.
    candidate_ids:
        The set ``G`` picks may come from (equal to ``region_ids`` for
        plain SOS).
    mandatory_ids:
        The set ``D`` seeded into the selection before any greedy pick
        (empty for SOS).  Counts toward ``k``.
    initial_bounds:
        Optional array aligned with ``candidate_ids`` of upper bounds
        on first-iteration gains (from a :class:`Prefetcher`).  When
        given, the heap starts from these stale bounds and the exact
        gain is only computed for objects that reach the top — the
        Sec. 5.2 optimization.  When omitted, ``init_mode`` governs
        heap initialization.
    init_mode:
        ``"exact"`` (default) computes the initial gain of every
        candidate individually — Algorithm 1 lines 2–3, valid for any
        black-box ``Sim``.  ``"bulk"`` computes all first-iteration
        similarity masses in one vectorized sweep
        (:meth:`SimilarityModel.weighted_sims_sum`); this is an
        extension beyond the paper, available because our similarity
        models expose linear structure.  Bulk values are exact gains
        when ``D`` is empty (or the objective is modular), and valid
        upper bounds otherwise; selections are identical either way.
    """
    started = time.perf_counter()
    region_ids = np.asarray(region_ids, dtype=np.int64)
    candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
    mandatory_ids = np.asarray(mandatory_ids, dtype=np.int64)

    state = MarginalGainState(dataset, region_ids, aggregation)
    heap = LazyForwardHeap()

    selected: list[int] = []
    # Seed the mandatory set D (ISOS): these are part of S from the
    # start and constrain candidates through the visibility threshold.
    for obj in mandatory_ids:
        state.add(int(obj))
        selected.append(int(obj))

    candidate_set = set(int(i) for i in candidate_ids)
    # Mandatory picks suppress conflicting candidates up front.
    blocked: set[int] = set()
    for obj in mandatory_ids:
        blocked.update(
            int(c) for c in dataset.conflicts_with(int(obj), theta)
        )

    if initial_bounds is not None:
        if len(initial_bounds) != len(candidate_ids):
            raise ValueError(
                "initial_bounds must align with candidate_ids "
                f"({len(initial_bounds)} vs {len(candidate_ids)})"
            )
        for obj, bound in zip(candidate_ids, initial_bounds):
            if int(obj) not in blocked:
                heap.push(int(obj), float(bound))  # stale upper bounds
    elif init_mode == "bulk":
        if len(region_ids) and len(candidate_ids):
            masses = dataset.similarity.weighted_sims_sum(
                candidate_ids, region_ids, dataset.weights[region_ids]
            ) / len(region_ids)
        else:
            masses = np.zeros(len(candidate_ids), dtype=np.float64)
        # With no mandatory seed (or a modular objective) the mass IS
        # the exact first-iteration gain; otherwise it is only an upper
        # bound and must enter the heap stale.
        exact = len(mandatory_ids) == 0 or aggregation is Aggregation.SUM
        for obj, mass in zip(candidate_ids, masses):
            if int(obj) in blocked:
                continue
            if exact:
                heap.push(int(obj), float(mass), iteration=0)
            else:
                heap.push(int(obj), float(mass))
    elif init_mode == "exact":
        for obj in candidate_ids:
            if int(obj) not in blocked:
                # Iteration tag 0 == first |S|-after-D state: exact.
                heap.push(int(obj), state.gain(int(obj)), iteration=0)
    else:
        raise ValueError(f"init_mode must be 'exact' or 'bulk', got {init_mode!r}")

    iteration = 0
    while len(selected) < k and len(heap) > 0:
        if not lazy and iteration > 0:
            _refresh_all(heap, state, iteration)
        picked = heap.pop_best(iteration, state.gain)
        if picked is None:
            break
        obj_id, _gain = picked
        state.add(obj_id)
        selected.append(obj_id)
        heap.deactivate_many(dataset.conflicts_with(obj_id, theta))
        iteration += 1

    elapsed = time.perf_counter() - started
    selected_arr = np.asarray(selected, dtype=np.int64)
    return SelectionResult(
        selected=selected_arr,
        score=state.score,
        region_ids=region_ids,
        stats={
            "gain_evaluations": state.gain_evaluations,
            "heap_pushes": heap.pushes,
            "elapsed_s": elapsed,
            "population": int(len(region_ids)),
            "candidates": int(len(candidate_set)),
            "mandatory": int(len(mandatory_ids)),
        },
    )


def _refresh_all(
    heap: LazyForwardHeap, state: MarginalGainState, iteration: int
) -> None:
    """Recompute every active entry (the non-lazy ablation path)."""
    # Draining pop_best would mutate order mid-recompute; instead push a
    # fresh exact gain for every active id, superseding old entries.
    for obj_id in heap.active_ids():
        heap.push(obj_id, state.gain(obj_id), iteration)
