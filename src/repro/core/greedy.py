"""Algorithm 1: the lazy-forward greedy for SOS (1/8-approximate).

Each iteration picks the object with the maximum marginal increase of
the representative score, then removes every remaining object within
``θ`` of the pick (visibility constraint).  Submodularity (Lemma 4.1)
makes stale gains valid upper bounds, so the max-heap only recomputes
gains for objects that surface at the top — in practice a small
fraction ``nc ≪ n`` of the population (see the lazy-forward ablation
benchmark).

The same engine serves ISOS (:mod:`repro.core.isos`) and the
prefetch-accelerated path: callers can seed the selection with a
mandatory set and initialize the heap from precomputed upper bounds
instead of exact gains.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.lazy_heap import LazyForwardHeap
from repro.core.problem import Aggregation, RegionQuery, SelectionResult
from repro.core.scoring import MarginalGainState
from repro.geo.distance import pairwise_min_distance
from repro.metrics import MetricsRegistry
from repro.parallel.config import effective_batch_size, iter_blocks
from repro.robustness.budget import Budget
from repro.robustness.errors import InfeasibleSelection
from repro.robustness.faults import (
    INDEX_QUERY,
    SIMILARITY_EVAL,
    FaultInjector,
)
from repro.trace.tracer import NULL_TRACER, TracerLike

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.pool import WorkerPool


def greedy_select(
    dataset: GeoDataset,
    query: RegionQuery,
    aggregation: Aggregation = Aggregation.MAX,
    lazy: bool = True,
    init_mode: str = "exact",
    candidates: np.ndarray | None = None,
    budget: Budget | None = None,
    strict: bool = False,
    metrics: MetricsRegistry | None = None,
    batch_size: int | None = None,
    pool: WorkerPool | None = None,
    tracer: TracerLike | None = None,
) -> SelectionResult:
    """Solve an SOS query with the greedy algorithm (Algorithm 1).

    Parameters
    ----------
    dataset:
        The object collection.
    query:
        Region of interest, ``k`` and ``θ``.
    aggregation:
        ``Sim(o, S)`` aggregation (MAX default; SUM also supported).
    lazy:
        Disable to force recomputation of every heap entry each
        iteration (the naive greedy).  Exposed for the lazy-forward
        ablation; results are identical either way.
    candidates:
        Optional filtering condition (Sec. 3.3): restrict picks to
        these ids — e.g. ``dataset.keyword_filter("restaurant")``.
        The representative score is still computed over the whole
        region population; only membership of ``S`` is restricted.
    budget:
        Optional :class:`~repro.robustness.Budget` making the
        selection *anytime* (see :func:`greedy_core`).
    strict:
        Raise :class:`~repro.robustness.InfeasibleSelection` instead
        of returning a short selection (see :func:`greedy_core`).
    metrics:
        Optional :class:`~repro.metrics.MetricsRegistry` receiving the
        engine's counters (see :func:`greedy_core`).
    batch_size:
        Candidates per kernel invocation during exact heap
        initialization (see :func:`greedy_core`).
    pool:
        Optional :class:`~repro.parallel.WorkerPool` sharding the init
        sweep (see :func:`greedy_core`).
    """
    region_ids = dataset.objects_in(query.region)
    if candidates is None:
        candidate_ids = region_ids
    else:
        candidate_ids = np.intersect1d(
            region_ids, np.asarray(candidates, dtype=np.int64)
        )
    return greedy_core(
        dataset,
        region_ids=region_ids,
        candidate_ids=candidate_ids,
        mandatory_ids=np.empty(0, dtype=np.int64),
        k=query.k,
        theta=query.theta,
        aggregation=aggregation,
        lazy=lazy,
        init_mode=init_mode,
        budget=budget,
        strict=strict,
        metrics=metrics,
        batch_size=batch_size,
        pool=pool,
        tracer=tracer,
    )


def greedy_core(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    candidate_ids: np.ndarray,
    mandatory_ids: np.ndarray,
    k: int,
    theta: float,
    aggregation: Aggregation = Aggregation.MAX,
    initial_bounds: np.ndarray | None = None,
    lazy: bool = True,
    init_mode: str = "exact",
    budget: Budget | None = None,
    fault_injector: FaultInjector | None = None,
    strict: bool = False,
    metrics: MetricsRegistry | None = None,
    batch_size: int | None = None,
    pool: WorkerPool | None = None,
    tracer: TracerLike | None = None,
) -> SelectionResult:
    """Shared greedy engine for SOS, ISOS and the prefetch path.

    Parameters
    ----------
    region_ids:
        The population ``O`` the score is computed over.
    candidate_ids:
        The set ``G`` picks may come from (equal to ``region_ids`` for
        plain SOS).
    mandatory_ids:
        The set ``D`` seeded into the selection before any greedy pick
        (empty for SOS).  Counts toward ``k``.
    initial_bounds:
        Optional array aligned with ``candidate_ids`` of upper bounds
        on first-iteration gains (from a :class:`Prefetcher` or the
        session's :class:`~repro.cache.SelectionCache`).  When given,
        the heap starts from these stale bounds and the exact gain is
        only computed for objects that reach the top — the Sec. 5.2
        optimization.  ``NaN`` entries mark candidates without a
        precomputed bound: those are initialized with an exact
        first-iteration gain, so partially covering bounds degrade
        smoothly instead of forcing a cold start.  When omitted,
        ``init_mode`` governs heap initialization.
    init_mode:
        ``"exact"`` (default) computes the initial gain of every
        candidate individually — Algorithm 1 lines 2–3, valid for any
        black-box ``Sim``.  ``"bulk"`` computes all first-iteration
        similarity masses in one vectorized sweep
        (:meth:`SimilarityModel.weighted_sims_sum`); this is an
        extension beyond the paper, available because our similarity
        models expose linear structure.  Bulk values are exact gains
        when ``D`` is empty (or the objective is modular), and valid
        upper bounds otherwise; selections are identical either way.
    budget:
        Optional :class:`~repro.robustness.Budget` (wall-clock deadline
        and/or iteration cap) making the selection *anytime*: the
        budget is checked inside the heap-initialization sweep and at
        the top of every lazy-forward iteration, and on exhaustion the
        partial prefix selected so far is returned — it is still
        ``θ``-feasible and in greedy pick order — with
        ``result.degraded = True`` and
        ``result.stats["budget_exhausted"]`` naming the cause
        (``"deadline"`` or ``"max_iterations"``).
    fault_injector:
        Optional :class:`~repro.robustness.FaultInjector`; when given,
        the engine traverses the ``similarity.eval`` point on every
        gain evaluation / mandatory seed and the ``index.query`` point
        on every conflict lookup.
    strict:
        Input validation mode.  The engine *always* rejects ``k <= 0``,
        ``|D| > k``, and a mandatory set that is not ``θ``-feasible
        (:class:`~repro.robustness.InfeasibleSelection` — no feasible
        superset of ``D`` exists).  With ``strict=True`` it also
        rejects instances that could only yield a short selection:
        empty candidates with ``k > |D|``, or ``|G| + |D| < k``.  With
        ``strict=False`` (default) those return the documented partial
        result (``stats["short_selection"] = True`` when fewer than
        ``k`` objects come back).
    metrics:
        Optional :class:`~repro.metrics.MetricsRegistry`; when given,
        the engine's counters (``greedy.gain_evaluations``,
        ``greedy.kernel_rows``, ``greedy.heap_pops``,
        ``greedy.heap_pushes``) and its latency
        (``greedy.elapsed_s``) are recorded there in addition to
        ``result.stats``.
    batch_size:
        Candidates evaluated per similarity-kernel invocation during
        exact heap initialization.  ``None`` uses
        :data:`~repro.parallel.DEFAULT_BATCH_SIZE` for models that
        declare themselves ``batch_friendly`` (and whenever a pool
        needs blocks to shard) and the scalar engine otherwise; ``1``
        always recovers the original one-row-per-call engine (the
        benchmark baseline).
        Gains are bit-identical at any batch size — the block kernels
        reproduce the scalar kernels' floats exactly — so selections
        never depend on this knob.
    pool:
        Optional :class:`~repro.parallel.WorkerPool` that shards the
        batched init sweep across workers.  The pool merges block
        results by block offset, so selections are also independent of
        worker count and backend.
    tracer:
        Optional :class:`~repro.trace.Tracer`; the engine records a
        ``greedy.init`` span around heap initialization and a
        ``greedy.loop`` span around the lazy-forward iterations, each
        annotated with the engine's counters.  Tracing never perturbs
        the selection — traced and untraced runs are bit-identical.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    started = time.perf_counter()
    region_ids = np.asarray(region_ids, dtype=np.int64)
    candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
    mandatory_ids = np.asarray(mandatory_ids, dtype=np.int64)
    _validate_instance(
        dataset, candidate_ids, mandatory_ids, k, theta, strict
    )
    # When the similarity model is a repro.cache.SimilarityCache (duck
    # typed to avoid a core -> cache dependency), report its hit/miss
    # movement across this selection in the result stats.
    counters_fn = getattr(dataset.similarity, "counters", None)
    sim_before = counters_fn() if callable(counters_fn) else None

    if fault_injector is not None:
        def gain_fn(obj_id: int) -> float:
            fault_injector.check(SIMILARITY_EVAL)
            return state.gain(obj_id)

        def conflicts(obj_id: int) -> np.ndarray:
            fault_injector.check(INDEX_QUERY)
            return dataset.conflicts_with(obj_id, theta)
    else:
        def gain_fn(obj_id: int) -> float:
            return state.gain(obj_id)

        def conflicts(obj_id: int) -> np.ndarray:
            return dataset.conflicts_with(obj_id, theta)

    state = MarginalGainState(dataset, region_ids, aggregation)
    heap = LazyForwardHeap()

    selected: list[int] = []
    # Seed the mandatory set D (ISOS): these are part of S from the
    # start and constrain candidates through the visibility threshold.
    for obj in mandatory_ids:
        if fault_injector is not None:
            fault_injector.check(SIMILARITY_EVAL)
        state.add(int(obj))
        selected.append(int(obj))

    candidate_set = set(int(i) for i in candidate_ids)
    # Mandatory picks suppress conflicting candidates up front — one
    # batched radius sweep instead of one index query per seed.  The
    # fault point is still traversed per seed so injection schedules
    # match the scalar engine's.
    blocked: set[int] = set()
    if len(mandatory_ids):
        if fault_injector is not None:
            for _obj in mandatory_ids:
                fault_injector.check(INDEX_QUERY)
        blocked.update(
            int(c)
            for c in dataset.conflicts_with_many(mandatory_ids, theta)
        )

    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    init_started = time.perf_counter()
    batch_size = effective_batch_size(batch_size, dataset.similarity, pool)
    seeded_bounds = 0
    seeded_exact = 0
    if initial_bounds is not None:
        if len(initial_bounds) != len(candidate_ids):
            raise ValueError(
                "initial_bounds must align with candidate_ids "
                f"({len(initial_bounds)} vs {len(candidate_ids)})"
            )
        if batch_size <= 1 and pool is None:
            for obj, bound in zip(candidate_ids, initial_bounds):
                if budget is not None and not budget.tick():
                    break
                if int(obj) in blocked:
                    continue
                if np.isnan(bound):
                    # No precomputed bound for this candidate (partial
                    # warm-start coverage): exact first-iteration gain.
                    heap.push(int(obj), gain_fn(int(obj)), iteration=0)
                    seeded_exact += 1
                else:
                    heap.push(int(obj), float(bound))  # stale upper bounds
                    seeded_bounds += 1
        else:
            # Batched variant of the loop above: same tick / blocked /
            # fault sequence, but candidates without a bound are filled
            # in whole blocks (optionally sharded across the pool)
            # instead of one scalar gain call each — the cost of a
            # partially covering seed no longer degenerates to the
            # scalar engine.  Gains are bit-identical either way (the
            # block kernels reproduce the scalar reduction exactly).
            seed_ids: list[int] = []
            seed_vals: list[float] = []
            exact_ids: list[int] = []
            for obj, bound in zip(candidate_ids, initial_bounds):
                if budget is not None and not budget.tick():
                    break
                o = int(obj)
                if o in blocked:
                    continue
                if np.isnan(bound):
                    if fault_injector is not None:
                        fault_injector.check(SIMILARITY_EVAL)
                    exact_ids.append(o)
                else:
                    seed_ids.append(o)
                    seed_vals.append(float(bound))
            heap.push_many(seed_ids, seed_vals)  # stale upper bounds
            seeded_bounds = len(seed_ids)
            eval_ids = np.asarray(exact_ids, dtype=np.int64)
            blocks = [blk for _off, blk in iter_blocks(eval_ids, batch_size)]
            if pool is not None:
                gains_per_block = pool.gain_sweep(state, blocks)
            else:
                gains_per_block = [state.batch_gains(blk) for blk in blocks]
            for blk, gains in zip(blocks, gains_per_block):
                heap.push_many(blk.tolist(), gains.tolist(), iteration=0)
            seeded_exact = len(exact_ids)
    elif init_mode == "bulk":
        if budget is not None:
            budget.exhausted()  # one clock read before the big sweep
        if budget is not None and budget.exhausted_reason is not None:
            masses = np.zeros(0, dtype=np.float64)
            candidate_iter = candidate_ids[:0]
        elif len(region_ids) and len(candidate_ids):
            if fault_injector is not None:
                fault_injector.check(SIMILARITY_EVAL)
            masses = dataset.similarity.weighted_sims_sum(
                candidate_ids, region_ids, dataset.weights[region_ids]
            ) / len(region_ids)
            candidate_iter = candidate_ids
        else:
            masses = np.zeros(len(candidate_ids), dtype=np.float64)
            candidate_iter = candidate_ids
        # With no mandatory seed (or a modular objective) the mass IS
        # the exact first-iteration gain; otherwise it is only an upper
        # bound and must enter the heap stale.
        exact = len(mandatory_ids) == 0 or aggregation is Aggregation.SUM
        for obj, mass in zip(candidate_iter, masses):
            if budget is not None and not budget.tick():
                break
            if int(obj) in blocked:
                continue
            if exact:
                heap.push(int(obj), float(mass), iteration=0)
            else:
                heap.push(int(obj), float(mass))
    elif init_mode == "exact":
        if batch_size <= 1 and pool is None:
            for obj in candidate_ids:
                # Each exact init gain costs O(|O|); the budget tick
                # keeps a blown deadline from blocking behind the full
                # O(n·|G|) sweep (the anytime property's hard case).
                if budget is not None and not budget.tick():
                    break
                if int(obj) not in blocked:
                    # Iteration tag 0 == first |S|-after-D state: exact.
                    heap.push(int(obj), gain_fn(int(obj)), iteration=0)
        else:
            # Batched init: assemble the evaluable candidates with the
            # exact tick / blocked / fault sequence of the scalar loop
            # (so budget cutoffs and injected faults land identically),
            # then evaluate whole blocks — one kernel invocation per
            # block, optionally sharded across the pool.
            evaluable: list[int] = []
            for obj in candidate_ids:
                if budget is not None and not budget.tick():
                    break
                o = int(obj)
                if o in blocked:
                    continue
                if fault_injector is not None:
                    fault_injector.check(SIMILARITY_EVAL)
                evaluable.append(o)
            eval_ids = np.asarray(evaluable, dtype=np.int64)
            blocks = [blk for _off, blk in iter_blocks(eval_ids, batch_size)]
            if pool is not None:
                gains_per_block = pool.gain_sweep(state, blocks)
            else:
                gains_per_block = [state.batch_gains(blk) for blk in blocks]
            # Push in candidate order — with equal gains the heap's
            # min-id CELF tie-break makes order irrelevant, but keeping
            # it matches the scalar engine's push sequence exactly.
            for blk, gains in zip(blocks, gains_per_block):
                heap.push_many(blk.tolist(), gains.tolist(), iteration=0)
    else:
        raise ValueError(f"init_mode must be 'exact' or 'bulk', got {init_mode!r}")

    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    init_ended = time.perf_counter()
    init_elapsed = init_ended - init_started
    tracer.record(
        "greedy.init",
        init_started,
        init_ended,
        mode="bounds" if initial_bounds is not None else init_mode,
        candidates=int(len(candidate_ids)),
        heap_pushes=int(heap.pushes),
    )

    iteration = 0
    budget_reason: str | None = None
    while len(selected) < k and len(heap) > 0:
        if budget is not None:
            budget_reason = budget.exhausted(iteration)
            if budget_reason is not None:
                break
        if not lazy and iteration > 0:
            _refresh_all(heap, gain_fn, iteration)
        picked = heap.pop_best(iteration, gain_fn)
        if picked is None:
            break
        obj_id, _gain = picked
        state.add(obj_id)
        selected.append(obj_id)
        heap.deactivate_many(conflicts(obj_id))
        iteration += 1

    if budget is not None and budget_reason is None:
        # Init-sweep exhaustion with an empty-enough heap never reaches
        # the loop check above; surface it all the same.
        budget_reason = budget.exhausted_reason

    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    elapsed = time.perf_counter() - started
    tracer.record(
        "greedy.loop",
        init_ended,
        started + elapsed,
        iterations=iteration,
        heap_pops=int(heap.pops),
        gain_evaluations=int(state.gain_evaluations),
        budget_exhausted=budget_reason,
    )
    selected_arr = np.asarray(selected, dtype=np.int64)
    stats = {
        "gain_evaluations": state.gain_evaluations,
        "kernel_rows": state.kernel_rows,
        "kernel_calls": state.kernel_calls,
        "heap_pushes": heap.pushes,
        "heap_pops": heap.pops,
        "elapsed_s": elapsed,
        "init_seconds": init_elapsed,
        "batch_size": batch_size,
        "population": int(len(region_ids)),
        "candidates": int(len(candidate_set)),
        "mandatory": int(len(mandatory_ids)),
        "budget_exhausted": budget_reason,
        "short_selection": len(selected_arr) < k,
    }
    if initial_bounds is not None:
        stats["seeded_bounds"] = seeded_bounds
        stats["seeded_exact"] = seeded_exact
    if sim_before is not None:
        sim_after = counters_fn()
        stats["sim_pairs_evaluated"] = (
            sim_after["pairs_evaluated"] - sim_before["pairs_evaluated"]
        )
        stats["cache_hits"] = sim_after["hits"] - sim_before["hits"]
        stats["cache_misses"] = sim_after["misses"] - sim_before["misses"]
    if pool is not None:
        stats["pool_workers"] = pool.workers
        stats["pool_backend"] = pool.backend
    if metrics is not None:
        metrics.incr("greedy.selections")
        metrics.incr("greedy.gain_evaluations", state.gain_evaluations)
        metrics.incr("greedy.kernel_rows", state.kernel_rows)
        metrics.incr("greedy.kernel_calls", state.kernel_calls)
        metrics.incr("greedy.heap_pushes", heap.pushes)
        metrics.incr("greedy.heap_pops", heap.pops)
        metrics.observe("greedy.elapsed_s", elapsed)
        metrics.observe("greedy.init_seconds", init_elapsed)
    return SelectionResult(
        selected=selected_arr,
        score=state.score,
        region_ids=region_ids,
        degraded=budget_reason is not None,
        stats=stats,
    )


def _validate_instance(
    dataset: GeoDataset,
    candidate_ids: np.ndarray,
    mandatory_ids: np.ndarray,
    k: int,
    theta: float,
    strict: bool,
) -> None:
    """Reject instances no selector (or degradation tier) can satisfy.

    Uses pure-numpy pairwise distances for the mandatory set (never the
    spatial index) so validation stays trustworthy under index faults.
    """
    if k <= 0:
        raise InfeasibleSelection(f"k must be positive, got {k}")
    if theta < 0:
        raise InfeasibleSelection(f"theta must be non-negative, got {theta}")
    if len(mandatory_ids) > k:
        raise InfeasibleSelection(
            f"|D| = {len(mandatory_ids)} exceeds k = {k}"
        )
    if len(mandatory_ids) >= 2 and theta > 0.0:
        closest = pairwise_min_distance(
            dataset.xs[mandatory_ids], dataset.ys[mandatory_ids]
        )
        if closest < theta:
            raise InfeasibleSelection(
                f"mandatory set is not θ-feasible: closest pair at "
                f"{closest:.6g} < θ = {theta:.6g}"
            )
    if strict:
        if len(candidate_ids) == 0 and k > len(mandatory_ids):
            raise InfeasibleSelection(
                f"empty candidate set cannot fill k = {k} "
                f"(|D| = {len(mandatory_ids)})"
            )
        if len(candidate_ids) + len(mandatory_ids) < k:
            raise InfeasibleSelection(
                f"k = {k} exceeds |G| + |D| = "
                f"{len(candidate_ids) + len(mandatory_ids)}"
            )


def _refresh_all(heap: LazyForwardHeap, gain_fn, iteration: int) -> None:
    """Recompute every active entry (the non-lazy ablation path)."""
    # Draining pop_best would mutate order mid-recompute; instead push a
    # fresh exact gain for every active id, superseding old entries.
    for obj_id in heap.active_ids():
        heap.push(obj_id, gain_fn(obj_id), iteration)
