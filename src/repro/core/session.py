"""Interactive map-session engine (Sec. 3.4–3.5 + Sec. 5).

:class:`MapSession` owns everything the ISOS problem needs beyond a
single query: the current viewport, the set of objects currently
visible, and the derivation of the mandatory set ``D`` and candidate
set ``G`` for each navigation operation, following the paper's
Examples 3.3–3.5 exactly:

* **zoom-in** — visible objects falling inside the new (smaller)
  viewport must stay visible: ``D = visible ∩ rn``; any other object of
  the new viewport may be picked: ``G = O(rn) \\ D``.
* **zoom-out** — nothing is mandatory (``D = ∅``), but objects of the
  old viewport that were *not* visible cannot appear at the coarser
  granularity: ``G = O(rn \\ rp) ∪ visible``.
* **pan** — visible objects in the overlap stay visible:
  ``D = visible ∩ rn``; fresh picks come only from the newly exposed
  area: ``G = O(rn \\ rp)``.

The visibility threshold follows the paper's convention of a fixed
fraction of the viewport side length (Table 2), so it scales with zoom
level; the session guarantees the mandatory set always remains
``θ``-feasible under the new threshold (zoom-in shrinks ``θ``; pan
keeps it; zoom-out has no mandatory set).

With ``prefetch=True`` the session emulates the Sec. 5.2 pipeline:
after every operation it precomputes upper-bound material for all three
possible next operations; the next operation then seeds the greedy heap
from those bounds.  Response time (``NavigationStep.elapsed_s``)
excludes prefetch work, matching how the paper reports Fig. 13–14.

Every selection is served through the degradation ladder
(:func:`repro.robustness.select_with_ladder`): with a ``deadline_s``
budget the exact greedy becomes anytime and, when cut short, the
session descends to SaSS sampling and finally a top-weight fill — the
response is always ``θ``-feasible, and ``NavigationStep.tier`` /
``NavigationStep.degraded`` record how it was produced.  Prefetch
computations run behind a circuit breaker, index queries fall back to
a brute-force scan, and a :class:`~repro.robustness.FaultInjector` can
be threaded through all three failure points to drill the transitions
(see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.cache import EquivalenceViolation, SelectionCache, SimilarityCache
from repro.core.dataset import GeoDataset
from repro.core.delta import DEFAULT_MARGIN, DeltaGainMaintainer
from repro.core.prediction import NavigationPredictor
from repro.core.prefetch import PrefetchData, Prefetcher
from repro.core.problem import Aggregation, SelectionResult
from repro.core.temporal import TemporalPrefetchData, TemporalPrefetcher
from repro.geo.bbox import BoundingBox
from repro.metrics import MetricsRegistry
from repro.parallel import WorkerPool, resolve_workers
from repro.robustness.breaker import CircuitBreaker
from repro.robustness.budget import Deadline
from repro.robustness.errors import (
    InvalidNavigation,
    PrefetchUnavailable,
    SessionNotStarted,
)
from repro.robustness.faults import INDEX_QUERY, FaultInjector
from repro.robustness.ladder import select_with_ladder
from repro.tiles import TileSelectionCache, TileStore
from repro.trace.tracer import NULL_TRACER, Span, TracerLike

DEFAULT_THETA_FRACTION = 0.003


def theta_fraction_for_screen(
    marker_px: float, screen_px: float
) -> float:
    """Visibility fraction from screen geometry.

    The paper motivates ``θ`` as "not too close to distinguish on the
    screen"; concretely, markers of ``marker_px`` pixels on a viewport
    of ``screen_px`` pixels must sit at least one marker apart, which
    in viewport-relative terms is ``marker_px / screen_px``.  Feed the
    result to :class:`MapSession`'s ``theta_fraction``.
    """
    if marker_px <= 0 or screen_px <= 0:
        raise ValueError("marker_px and screen_px must be positive")
    if marker_px >= screen_px:
        raise ValueError("marker cannot be as large as the screen")
    return marker_px / screen_px


@dataclass
class NavigationStep:
    """Record of one navigation operation and its selection."""

    operation: str
    region: BoundingBox
    result: SelectionResult
    mandatory: np.ndarray
    candidates: np.ndarray
    theta: float
    elapsed_s: float
    used_prefetch: bool = False
    stats: dict = field(default_factory=dict)
    # Which degradation tier served the step ("exact" when nothing
    # degraded) and whether the answer is best-effort in any way
    # (lower tier, anytime prefix, or index fallback).
    tier: str = "exact"
    degraded: bool = False
    # Whether the selection-cache warm start seeded this step's heap,
    # and the similarity-cache hit/miss movement across the operation
    # (zeros when the session runs without a similarity cache).
    warm_started: bool = False
    # Whether precomputed tile bounds seeded this step's heap (the
    # tile-grain cache; composition cost is inside ``elapsed_s``).
    tile_seeded: bool = False
    # Whether the incrementally maintained delta memo seeded the heap
    # (pan/zoom-out overlap case; see repro.core.delta).
    delta_seeded: bool = False
    # Whether precomputed temporal-window masses seeded the heap (the
    # time-slider analogue of used_prefetch; see repro.core.temporal).
    temporal_seeded: bool = False
    # The half-open time window active after this step (None when the
    # session navigates space only).
    time_window: tuple[float, float] | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    # Warm-pool observability for this step: gain sweeps served by an
    # already-live executor, and sweeps the adaptive shard policy ran
    # inline (deltas of the session's parallel.* counters across the
    # timed selection; with a registry shared across sessions these
    # include concurrent sessions' sweeps).
    pool_reuse: int = 0
    shard_skipped_serial: int = 0
    # Root trace span covering this step's timed selection (None when
    # the session runs with the default no-op tracer).
    span: Span | None = None

    @property
    def visible(self) -> np.ndarray:
        """Ids visible after this step (mandatory + selected)."""
        return self.result.selected


class MapSession:
    """Stateful interactive exploration of a :class:`GeoDataset`.

    Parameters
    ----------
    dataset:
        The collection being explored.
    k:
        Number of visible objects per viewport.
    theta_fraction:
        Visibility threshold as a fraction of viewport side length
        (paper default 0.003).
    prefetch:
        Enable the Sec. 5.2 pre-fetching pipeline.
    zoom_out_max_scale:
        Largest single zoom-out factor the prefetcher must cover.
    tight_pan_bounds:
        Use the per-object Lemma 5.3 refinement when prefetching pans.
    init_mode:
        Heap initialization for non-prefetched selections: ``"exact"``
        (Algorithm 1, black-box ``Sim``) or ``"bulk"`` (vectorized
        sweep; see :func:`repro.core.greedy.greedy_core`).
    predictor:
        Optional :class:`~repro.core.prediction.NavigationPredictor`;
        when given, prefetching is computed only for the predicted
        operations (cheaper precompute, possible cache misses that
        fall back to exact initialization).
    deadline_s:
        Optional per-operation response deadline in seconds.  Each
        navigation runs the degradation ladder (exact → sampled →
        top-weight) under this wall-clock budget and always returns a
        ``θ``-feasible selection; :attr:`NavigationStep.tier` records
        which tier served it.
    max_iterations:
        Optional cap on greedy iterations per tier attempt.
    fault_injector:
        Optional :class:`~repro.robustness.FaultInjector` threaded
        through the index / similarity / prefetch injection points —
        faults descend the ladder instead of escaping the session.
    breaker:
        Circuit breaker guarding the prefetch pipeline (a default one
        is created; pass your own to tune thresholds or share state).
    similarity_cache:
        ``True`` wraps the dataset's similarity model in a
        :class:`~repro.cache.SimilarityCache` owned by this session
        (bounded LRU row memoization, see ``docs/CACHING.md``); pass a
        ready-made :class:`SimilarityCache` instance to share one or
        tune its capacity.  ``False`` (default) leaves the model
        untouched.
    warm_start:
        Seed each operation's greedy heap from raw similarity masses
        harvested after the previous step
        (:class:`~repro.cache.SelectionCache`).  Only effective
        together with ``similarity_cache``; warm-started selections
        are bit-identical to cold ones.  Falls back to a cold start
        whenever the new viewport is not contained in the previous
        one or overlap/coverage are below threshold.
    warm_start_min_overlap:
        Minimum ``area(new)/area(previous)`` for a warm start.
    delta:
        Enable incremental ISOS delta maintenance
        (:class:`~repro.core.delta.DeltaGainMaintainer`): after each
        step the session maintains Lemma-5.1 masses over an expanded
        viewport and updates them with the population *diff*; the next
        overlapping step (pan, zoom-out, zoom-in — containment in the
        expanded region is enough) seeds its heap from the memo instead
        of re-initializing.  Composes with prefetch, warm starts and
        tiles (it serves after prefetch and warm start, before tiles);
        selections stay bit-identical to cold starts.  The off-path
        maintenance cost is ``O(delta)`` per step.
    delta_margin:
        How far beyond the committed viewport the delta memo reaches
        (fraction of the larger side per edge, default 0.5).
    tiles:
        Optional tile-grain selection cache (see ``docs/TILES.md``): a
        :class:`~repro.tiles.TileStore` precomputed offline (``python
        -m repro tiles build``) or a ready
        :class:`~repro.tiles.TileSelectionCache` — pass the latter to
        share one store across concurrent sessions.  Navigation steps
        whose viewport a zoom level covers seed the greedy heap from
        the cached Lemma-5.1 tile masses (after prefetch and warm
        start both miss); composition happens *inside* the timed step.
        Selections stay bit-identical; the per-serve dataset
        fingerprint check makes stale tiles unplayable after
        :meth:`swap_dataset`.
    equivalence_check:
        Testing mode: every warm-started (or prefetched) selection is
        recomputed cold and compared; a mismatch raises
        :class:`~repro.cache.EquivalenceViolation`.  Doubles the work
        per step — never enable in production.
    metrics:
        Optional shared :class:`~repro.metrics.MetricsRegistry`; a
        private one is created when omitted.  Exposed as
        :attr:`metrics`; the CLI prints it under ``--metrics``.
    workers:
        Worker count for the session's :class:`~repro.parallel.WorkerPool`
        (``0``/``None`` = no pool, ``"auto"`` = host CPU count).  The
        pool shards heap-initialization gain sweeps across candidate
        blocks and precomputes the prefetcher's bounds for all
        navigation kinds concurrently.  Selections stay bit-identical
        to the sequential engine at any worker count.  With a
        ``similarity_cache`` the pool degrades to serial block
        execution (the cache's LRU is not thread-safe) but batching
        still applies.
    batch_size:
        Candidate block size for batched gain evaluation during heap
        initialization (default 256; ``1`` recovers the scalar loop).
    parallel_backend:
        ``"auto"`` / ``"serial"`` / ``"thread"`` / ``"process"`` — see
        :func:`~repro.parallel.resolve_backend`.
    pool:
        Externally-owned :class:`~repro.parallel.WorkerPool` shared
        with other sessions (the service's per-dataset warm pool).
        Mutually exclusive with ``workers`` and with a per-session
        ``similarity_cache``.  The session uses it for gain sweeps but
        never closes it — :meth:`close` and :meth:`swap_dataset`
        detach instead; the owner controls the pool lifecycle.
    time_window:
        Optional initial half-open time window ``(t_start, t_end)``.
        Requires dataset timestamps; every population (including the
        initial one) is then the spatio-temporal intersection, and
        :meth:`time_step` / :meth:`set_time_window` slide or jump the
        window (see ``docs/TEMPORAL.md``).  A window can also be
        introduced mid-session via :meth:`set_time_window`.
    time_hysteresis:
        Selection-consistency hysteresis for :meth:`time_step`
        (default 0.5), analogous to the streaming ``swap_margin``:
        when at least this fraction of the visible selection survives
        the window shift, the survivors are carried as the mandatory
        set ``D`` (no marker flicker on small steps); below it the
        step re-anchors with a fresh selection (``D = ∅``), counted in
        ``session.temporal_reanchors``.  ``0`` always carries
        survivors; ``1`` effectively always re-anchors.
    """

    def __init__(
        self,
        dataset: GeoDataset,
        k: int = 100,
        theta_fraction: float = DEFAULT_THETA_FRACTION,
        aggregation: Aggregation = Aggregation.MAX,
        prefetch: bool = False,
        zoom_out_max_scale: float = 4.0,
        tight_pan_bounds: bool = False,
        lazy: bool = True,
        init_mode: str = "exact",
        predictor: NavigationPredictor | None = None,
        deadline_s: float | None = None,
        max_iterations: int | None = None,
        fault_injector: FaultInjector | None = None,
        breaker: CircuitBreaker | None = None,
        similarity_cache: bool | SimilarityCache = False,
        warm_start: bool = True,
        warm_start_min_overlap: float = 0.05,
        delta: bool = False,
        delta_margin: float = DEFAULT_MARGIN,
        tiles: TileSelectionCache | TileStore | None = None,
        equivalence_check: bool = False,
        metrics: MetricsRegistry | None = None,
        workers: int | str | None = None,
        batch_size: int | None = None,
        parallel_backend: str = "auto",
        pool: WorkerPool | None = None,
        tracer: TracerLike | None = None,
        time_window: tuple[float, float] | None = None,
        time_hysteresis: float = 0.5,
    ) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if theta_fraction < 0:
            raise ValueError("theta_fraction must be non-negative")
        if zoom_out_max_scale <= 1.0:
            raise ValueError("zoom_out_max_scale must exceed 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        if not 0.0 <= time_hysteresis <= 1.0:
            raise ValueError(
                f"time_hysteresis must be in [0, 1], got {time_hysteresis}"
            )
        if time_window is not None:
            if dataset.ts is None:
                raise ValueError(
                    "time_window requires dataset timestamps (ts is None)"
                )
            if len(time_window) != 2:
                raise ValueError("time_window must be a (t_start, t_end) pair")
            time_window = (float(time_window[0]), float(time_window[1]))
            if time_window[1] <= time_window[0]:
                raise ValueError(f"empty time window {time_window}")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # The tracer threads through every downstream component (pool,
        # prefetcher, ladder, greedy) so one navigation yields one span
        # tree; the shared no-op default keeps the hot path unchanged.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Optionally interpose the similarity cache: the session's
        # dataset handle is rebuilt around the wrapper so every code
        # path (greedy, prefetch, scoring) reads through it.
        self.similarity_cache: SimilarityCache | None = None
        if similarity_cache is True:
            self.similarity_cache = SimilarityCache(
                dataset.similarity, metrics=self.metrics, tracer=self.tracer
            )
        elif isinstance(similarity_cache, SimilarityCache):
            self.similarity_cache = similarity_cache
        if self.similarity_cache is not None:
            dataset = dataclasses.replace(
                dataset, similarity=self.similarity_cache
            )
        self.dataset = dataset
        self.k = k
        self.theta_fraction = theta_fraction
        self.aggregation = aggregation
        self.prefetch_enabled = prefetch
        self.zoom_out_max_scale = zoom_out_max_scale
        self.tight_pan_bounds = tight_pan_bounds
        self.lazy = lazy
        self.init_mode = init_mode
        # Optional selective prefetching (the Battle-et-al. hook the
        # paper cites): precompute bounds only for the operations the
        # predictor ranks likely.  None = prefetch all three kinds.
        self.predictor = predictor
        self.deadline_s = deadline_s
        self.max_iterations = max_iterations
        self.fault_injector = fault_injector
        self.breaker = breaker or CircuitBreaker(name="prefetch")
        self.equivalence_check = equivalence_check
        # Warm-start material is only harvestable through a similarity
        # cache (the harvest reads cached rows); without one the
        # selection cache would never capture anything.
        self._selection_cache: SelectionCache | None = None
        if warm_start and self.similarity_cache is not None:
            self._selection_cache = SelectionCache(
                min_overlap=warm_start_min_overlap, metrics=self.metrics
            )
        # Incremental delta maintenance: unlike the selection cache it
        # needs no similarity cache (its memo is maintained directly
        # through the model's bulk kernel) and serves pans/zoom-outs,
        # not just contained viewports.
        self._delta: DeltaGainMaintainer | None = None
        if delta:
            self._delta = DeltaGainMaintainer(
                margin=delta_margin, metrics=self.metrics
            )
        # Tile-grain cache: wrap a bare store in a private serving
        # cache; a shared TileSelectionCache is used as-is (its store
        # is internally locked, so concurrent sessions can share it).
        self.tiles: TileSelectionCache | None = None
        if isinstance(tiles, TileStore):
            self.tiles = TileSelectionCache(
                tiles, metrics=self.metrics, tracer=self.tracer
            )
        elif isinstance(tiles, TileSelectionCache):
            self.tiles = tiles
        elif tiles is not None:
            raise TypeError(
                "tiles must be a TileStore or TileSelectionCache, "
                f"got {type(tiles).__name__}"
            )
        # Deterministic tier-2 sampling, independent of user RNG state.
        self._ladder_rng = np.random.default_rng(2018)
        # Optional worker pool: built over the *effective* similarity
        # model (the cache wrapper when one is interposed) so backend
        # resolution sees its thread-safety.  batch_size is forwarded
        # to the greedy whether or not a pool exists.
        self.batch_size = batch_size
        self.parallel_backend = parallel_backend
        # Lifecycle lock: the service layer can reach close() from TTL
        # eviction, shutdown, and error paths concurrently, so the
        # closed flag and the pool handoff are serialized.
        self._lifecycle_lock = threading.Lock()
        self._closed = False
        self._pool: WorkerPool | None = None
        self._owns_pool = True
        if pool is not None:
            if resolve_workers(workers) > 0:
                raise ValueError(
                    "pass either a shared pool or workers, not both"
                )
            if self.similarity_cache is not None:
                # A shared pool's backend was resolved against the raw
                # model; letting its threads read through this session's
                # (not thread-safe) cache wrapper would race the LRU.
                raise ValueError(
                    "a shared pool cannot be combined with a "
                    "per-session similarity_cache"
                )
            # Externally-owned pool (e.g. the service's per-dataset
            # shared pool): used for sweeps, never warmed/closed here —
            # its owner controls the lifecycle.
            self._pool = pool
            self._owns_pool = False
        elif resolve_workers(workers) > 0:
            self._pool = WorkerPool(
                workers,
                parallel_backend,
                similarity=dataset.similarity,
                metrics=self.metrics,
                tracer=self.tracer,
            )
            # Spin the executor (and, for processes, the shared-memory
            # model attachments) up front so the first navigation pays
            # dispatch cost only, not pool construction.
            self._pool.warm()

        self._prefetcher = Prefetcher(
            dataset, fault_injector=fault_injector, tracer=self.tracer
        )
        self._prefetch_data: dict[str, PrefetchData] = {}
        self._prefetch_errors: dict[str, str] = {}
        # Temporal state: the active window, the slider hysteresis, the
        # last step stride (drives which windows get prefetched), and
        # the temporal prefetcher's precomputed masses keyed by the
        # exact (t_start, t_end) they cover.
        self.time_window = time_window
        self.time_hysteresis = time_hysteresis
        self._last_time_dt: float | None = None
        self._temporal_prefetcher: TemporalPrefetcher | None = None
        if dataset.ts is not None:
            self._temporal_prefetcher = TemporalPrefetcher(
                dataset,
                pool=self._pool,
                fault_injector=fault_injector,
                tracer=self.tracer,
            )
        self._temporal_prefetch: dict[
            tuple[float, float], TemporalPrefetchData
        ] = {}
        self._index_fallback = False
        self.index_fallbacks = 0  # lifetime count, for observability
        self.region: BoundingBox | None = None
        self.visible: np.ndarray = np.empty(0, dtype=np.int64)
        self.history: list[NavigationStep] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the session's worker pool (idempotent, thread-safe).

        Only needed when the session was built with ``workers``; a
        pool-less session has nothing to release.  The session remains
        usable afterwards — selections simply run sequentially.

        Safe to call any number of times from any thread: the service
        lifecycle reaches close from TTL eviction, shutdown, and error
        paths concurrently, so the pool handoff happens exactly once
        under the lifecycle lock and every later (or concurrent) call
        is a no-op.  A shared pool (``pool=`` at construction) is
        *detached*, never closed — its owner controls that lifecycle.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None and self._owns_pool:
            pool.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the session stays usable)."""
        with self._lifecycle_lock:
            return self._closed

    def __enter__(self) -> "MapSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def start(self, region: BoundingBox) -> NavigationStep:
        """Open the session on ``region`` with a plain SOS selection."""
        theta = self._theta_for(region)
        region_ids = self._population(region)
        cache_before = self._cache_counters()
        pool_before = self._pool_policy_counters()
        # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
        started = time.perf_counter()
        # The root span covers exactly the timed selection region, so
        # its duration matches elapsed_s and child spans account for
        # the response-path latency the paper reports.
        with self.tracer.span(
            "session.initial",
            population=int(len(region_ids)),
            k=self.k,
        ) as span:
            # The initial viewport has no prefetch or warm-start
            # material, but tile bounds apply from the very first
            # selection — composed inside the timed region so the
            # reported latency includes their (small) serving cost.
            bounds = self._tile_bounds(region, region_ids, region_ids)
            tile_seeded = bounds is not None
            result = select_with_ladder(
                self.dataset,
                region_ids=region_ids,
                candidate_ids=region_ids,
                mandatory_ids=np.empty(0, dtype=np.int64),
                k=self.k,
                theta=theta,
                aggregation=self.aggregation,
                deadline=self._new_deadline(),
                max_iterations=self.max_iterations,
                initial_bounds=bounds,
                lazy=self.lazy,
                init_mode=self.init_mode,
                fault_injector=self.fault_injector,
                rng=self._ladder_rng,
                metrics=self.metrics,
                batch_size=self.batch_size,
                pool=self._pool,
                tracer=self.tracer,
            )
            span.annotate(
                tier=result.stats.get("tier", "exact"),
                tile_seeded=tile_seeded,
            )
        # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
        elapsed = time.perf_counter() - started
        if tile_seeded and self.equivalence_check:
            self._assert_equivalent(
                "initial", result, region_ids, region_ids,
                np.empty(0, dtype=np.int64), theta,
            )
            result.stats["equivalence_checked"] = True
        step = self._commit(
            operation="initial",
            region=region,
            result=result,
            mandatory=np.empty(0, dtype=np.int64),
            candidates=region_ids,
            theta=theta,
            elapsed=elapsed,
            used_prefetch=False,
            population_ids=region_ids,
            cache_before=cache_before,
            tile_seeded=tile_seeded,
            pool_before=pool_before,
            span=span if self.tracer.enabled else None,
        )
        return step

    def swap_dataset(self, dataset: GeoDataset) -> None:
        """Replace the session's dataset mid-session.

        The paper's exploration model assumes a fixed collection, but a
        live deployment re-ingests data; anything memoized against the
        old similarity model is poison after the swap.  This method is
        the only supported way to change datasets: it invalidates the
        similarity cache (bumping its generation so captured warm-start
        material can never be replayed), rebuilds the cache wrapper
        around the new model, drops the selection cache and every
        prefetch artifact, and resets the viewport so the next call
        must be :meth:`start`.

        An attached tile cache needs no explicit drop: every tile
        serve re-checks the store's dataset fingerprint, so tiles
        built from the old dataset are unplayable from the moment the
        swap lands (they keep serving sessions that still hold the
        original dataset when the store is shared).
        """
        if len(dataset) != len(self.dataset):
            raise ValueError(
                "swap_dataset requires a same-size dataset "
                f"(had {len(self.dataset)}, got {len(dataset)})"
            )
        if self.similarity_cache is not None:
            self.similarity_cache.invalidate()
            self.similarity_cache = SimilarityCache(
                dataset.similarity, metrics=self.metrics, tracer=self.tracer
            )
            dataset = dataclasses.replace(
                dataset, similarity=self.similarity_cache
            )
        self.dataset = dataset
        # The pool is bound to the old similarity model (process
        # workers hold its feature arrays); rebuild it over the new
        # one.  The swap holds the lifecycle lock so a concurrent
        # close() can never orphan a half-built replacement pool.  A
        # shared pool stays with its owner's dataset: this session
        # takes an owned replacement and detaches without closing it.
        with self._lifecycle_lock:
            old_pool = self._pool
            owned_old = self._owns_pool
            if old_pool is not None and not self._closed:
                self._pool = WorkerPool(
                    old_pool.workers,
                    self.parallel_backend,
                    similarity=dataset.similarity,
                    metrics=self.metrics,
                    tracer=self.tracer,
                )
                self._owns_pool = True
                self._pool.warm()
        if old_pool is not None and owned_old:
            old_pool.close()
        if self._selection_cache is not None:
            self._selection_cache.invalidate()
        if self._delta is not None:
            # Delta masses sum the old model's similarities — poison
            # after the swap, same as captured warm-start material.
            self._delta.invalidate()
        self._prefetcher = Prefetcher(
            dataset, fault_injector=self.fault_injector, tracer=self.tracer
        )
        self._prefetch_data = {}
        self._prefetch_errors = {}
        # Temporal material sums the old model's similarities too; the
        # prefetcher is rebuilt over the new dataset (and dropped — with
        # the active window — when the new dataset carries no
        # timestamps).
        self._temporal_prefetch = {}
        self._last_time_dt = None
        if dataset.ts is not None:
            self._temporal_prefetcher = TemporalPrefetcher(
                dataset,
                pool=self._pool,
                fault_injector=self.fault_injector,
                tracer=self.tracer,
            )
        else:
            self._temporal_prefetcher = None
            self.time_window = None
        self.region = None
        self.visible = np.empty(0, dtype=np.int64)
        if self.tiles is not None and not self.tiles.compatible_with(dataset):
            # Observability only — the per-serve fingerprint check is
            # what actually blocks stale-tile replay.
            self.metrics.incr("tiles.swap_detached")
        self.metrics.incr("session.dataset_swaps")

    def zoom_in(
        self, scale: float = 0.5, target: BoundingBox | None = None
    ) -> NavigationStep:
        """Zoom in; ``target`` overrides the centered default viewport.

        ``target`` must lie inside the current viewport (the paper's
        zoom-in produces a region "completely inside the previous
        region", Sec. 7.1).
        """
        region = self._require_region()
        new_region = target if target is not None else region.zoomed_in(scale)
        if not region.contains_box(new_region):
            raise InvalidNavigation(
                "zoom-in target must lie inside the current viewport"
            )

        new_ids = self._population(new_region)
        inside = new_region.contains_many(
            self.dataset.xs[self.visible], self.dataset.ys[self.visible]
        )
        mandatory = self.visible[inside]
        candidates = np.setdiff1d(new_ids, mandatory, assume_unique=True)
        return self._navigate(
            "zoom_in", new_region, new_ids, mandatory, candidates
        )

    def zoom_out(
        self, scale: float = 2.0, target: BoundingBox | None = None
    ) -> NavigationStep:
        """Zoom out; ``target`` must contain the current viewport."""
        region = self._require_region()
        new_region = target if target is not None else region.zoomed_out(scale)
        if not new_region.contains_box(region):
            raise InvalidNavigation(
                "zoom-out target must contain the current viewport"
            )

        new_ids = self._population(new_region)
        # Objects of the old viewport that were invisible cannot appear
        # at the coarser granularity (zooming consistency): candidates
        # are the newly exposed objects plus the previously visible.
        in_old = region.contains_many(
            self.dataset.xs[new_ids], self.dataset.ys[new_ids]
        )
        fresh = new_ids[~in_old]
        candidates = np.union1d(fresh, self.visible)
        mandatory = np.empty(0, dtype=np.int64)
        return self._navigate(
            "zoom_out", new_region, new_ids, mandatory, candidates
        )

    def pan(
        self,
        dx: float = 0.0,
        dy: float = 0.0,
        target: BoundingBox | None = None,
    ) -> NavigationStep:
        """Pan by ``(dx, dy)``; ``target`` overrides (same size, overlapping)."""
        region = self._require_region()
        new_region = target if target is not None else region.panned(dx, dy)
        if not new_region.intersects(region):
            raise InvalidNavigation(
                "pan target must overlap the current viewport"
            )
        if not (
            np.isclose(new_region.width, region.width)
            and np.isclose(new_region.height, region.height)
        ):
            raise InvalidNavigation("pan must preserve the viewport size")

        new_ids = self._population(new_region)
        inside = new_region.contains_many(
            self.dataset.xs[self.visible], self.dataset.ys[self.visible]
        )
        mandatory = self.visible[inside]
        # Fresh picks only from the newly exposed strip (panning
        # consistency: overlap objects that were invisible stay so).
        in_old = region.contains_many(
            self.dataset.xs[new_ids], self.dataset.ys[new_ids]
        )
        candidates = np.setdiff1d(new_ids[~in_old], mandatory, assume_unique=True)
        return self._navigate("pan", new_region, new_ids, mandatory, candidates)

    def set_time_window(
        self, t_start: float, t_end: float
    ) -> NavigationStep:
        """Jump the time window to ``[t_start, t_end)`` (same viewport).

        A jump re-anchors: nothing is mandatory (``D = ∅``) and the
        whole new spatio-temporal population is candidate — the window
        may land anywhere on the timeline, so there is no consistency
        relation to preserve.  Use :meth:`time_step` for slider motion,
        which carries surviving markers across steps.
        """
        region = self._require_region()
        self._require_timestamps()
        window = (float(t_start), float(t_end))
        if window[1] <= window[0]:
            raise ValueError(f"empty time window {window}")
        new_ids = self._population(region, window=window)
        return self._navigate(
            "set_time_window",
            region,
            new_ids,
            np.empty(0, dtype=np.int64),
            new_ids,
            new_window=window,
        )

    def time_step(self, dt: float) -> NavigationStep:
        """Slide the active time window by ``dt`` (same viewport).

        The temporal analogue of :meth:`pan`, with selection
        consistency governed by hysteresis instead of hard constraints
        (time has no visibility geometry): when at least
        ``time_hysteresis`` of the visible selection survives into the
        shifted window, the survivors are mandatory (``D`` = retained
        visible, ``G`` = rest of the new population) and markers do
        not flicker; when the window moved past most of them the step
        re-anchors (``D = ∅``) — a fresh selection beats dragging a
        near-dead mandatory set along.
        """
        region = self._require_region()
        window = self._require_window()
        dt = float(dt)
        new_window = (window[0] + dt, window[1] + dt)
        new_ids = self._population(region, window=new_window)
        retained = self.visible[np.isin(self.visible, new_ids)]
        survival = len(retained) / max(len(self.visible), 1)
        if len(self.visible) and survival >= self.time_hysteresis:
            mandatory = retained
            candidates = np.setdiff1d(new_ids, mandatory, assume_unique=True)
        else:
            if len(self.visible):
                self.metrics.incr("session.temporal_reanchors")
            mandatory = np.empty(0, dtype=np.int64)
            candidates = new_ids
        self._last_time_dt = dt
        return self._navigate(
            "time_step",
            region,
            new_ids,
            mandatory,
            candidates,
            new_window=new_window,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _theta_for(self, region: BoundingBox) -> float:
        return self.theta_fraction * max(region.width, region.height)

    def _require_region(self) -> BoundingBox:
        if self.region is None:
            raise SessionNotStarted(
                "session not started; call start(region) first"
            )
        return self.region

    def _require_timestamps(self) -> None:
        if self.dataset.ts is None:
            raise ValueError(
                "time navigation requires dataset timestamps (ts is None)"
            )

    def _require_window(self) -> tuple[float, float]:
        self._require_timestamps()
        if self.time_window is None:
            raise ValueError(
                "no active time window; pass time_window at construction "
                "or call set_time_window first"
            )
        return self.time_window

    def _new_deadline(self) -> Deadline | None:
        """Fresh per-operation deadline (``None`` when unconfigured)."""
        if self.deadline_s is None:
            return None
        return Deadline.after(self.deadline_s)

    def _objects_in(self, region: BoundingBox) -> np.ndarray:
        """Region query with graceful index degradation.

        Traverses the ``index.query`` fault point; any index failure
        falls back to a brute-force coordinate scan (exact, just
        slower) so a broken index never errors the response path.
        """
        self._index_fallback = False
        self.metrics.incr("index.queries")
        try:
            if self.fault_injector is not None:
                self.fault_injector.check(INDEX_QUERY)
            return self.dataset.objects_in(region)
        except Exception:
            self._index_fallback = True
            self.index_fallbacks += 1
            self.metrics.incr("index.fallbacks")
            mask = region.contains_many(self.dataset.xs, self.dataset.ys)
            return np.flatnonzero(mask).astype(np.int64)

    def _population(
        self,
        region: BoundingBox,
        window: tuple[float, float] | None = None,
    ) -> np.ndarray:
        """The population of ``region`` under the session's time window.

        ``window`` overrides the active window (used by the time ops
        to evaluate their *target* window); with no window anywhere
        this is exactly :meth:`_objects_in`.  The time filter runs on
        top of the (fault-tolerant) index query, so index degradation
        behaves identically with and without a window.
        """
        ids = self._objects_in(region)
        window = self.time_window if window is None else window
        if window is None or len(ids) == 0:
            return ids
        ts = self.dataset.ts[ids]
        return ids[(ts >= window[0]) & (ts < window[1])]

    def _cache_counters(self) -> dict[str, int] | None:
        """Snapshot of the similarity cache's counters (or ``None``)."""
        if self.similarity_cache is None:
            return None
        return self.similarity_cache.counters()

    def _pool_policy_counters(self) -> dict[str, float] | None:
        """Snapshot of the pool's shard-policy counters (or ``None``)."""
        if self._pool is None:
            return None
        return {
            "pool_reuse": self.metrics.count("parallel.pool_reuse"),
            "shard_skipped_serial": self.metrics.count(
                "parallel.shard_skipped_serial"
            ),
        }

    def _tile_bounds(
        self,
        region: BoundingBox,
        population_ids: np.ndarray,
        candidate_ids: np.ndarray,
    ) -> np.ndarray | None:
        """Tile-cache bounds for this viewport, or ``None`` (serve cold).

        Never raises: the tile store is an accelerator, so any serving
        failure degrades to a cold start rather than erroring the
        response path.
        """
        if self.tiles is None:
            return None
        try:
            return self.tiles.bounds_for(
                self.dataset, region, population_ids, candidate_ids
            )
        except Exception:
            self.metrics.incr("tiles.serve_errors")
            return None

    def _prefetch_bounds(
        self,
        operation: str,
        candidates: np.ndarray,
        new_ids: np.ndarray,
    ) -> np.ndarray:
        """Prefetched upper bounds for this operation, or raise.

        Raises :class:`PrefetchUnavailable` when the material is
        missing (breaker skipped it / predictor miss), stale (computed
        from a different viewport), or does not cover the candidates —
        every case is served cold by the caller.
        """
        data = self._prefetch_data.get(operation)
        if data is None:
            raise PrefetchUnavailable(f"no prefetch data for {operation!r}")
        if self.region is not None and data.is_stale(self.region):
            raise PrefetchUnavailable(
                f"prefetch data for {operation!r} is stale"
            )
        if len(new_ids) == 0 or not data.covers(candidates):
            raise PrefetchUnavailable(
                f"prefetch data for {operation!r} does not cover candidates"
            )
        return data.bounds_for(candidates, len(new_ids))

    def _temporal_bounds(
        self,
        new_region: BoundingBox,
        new_window: tuple[float, float],
        new_ids: np.ndarray,
        candidates: np.ndarray,
    ) -> np.ndarray | None:
        """Temporal-prefetch bounds for this window step, or ``None``.

        Serves only when the precomputed data targets exactly this
        (region, window) *and* covers the realized population (an
        index fallback that disagrees with the sweep's population must
        degrade to the next tier, never to a wrong bound — the sums
        are over the sweep's population ``P``, valid iff
        ``On ⊆ P``).
        """
        data = self._temporal_prefetch.get(new_window)
        if (
            data is None
            or len(new_ids) == 0
            or not data.matches(new_region, new_window)
            or not data.covers(new_ids)
            or not data.covers(candidates)
        ):
            return None
        try:
            bounds = data.bounds_for(candidates, len(new_ids))
        except PrefetchUnavailable:
            return None
        self.metrics.incr("session.temporal_prefetch_serves")
        return bounds

    def _navigate(
        self,
        operation: str,
        new_region: BoundingBox,
        new_ids: np.ndarray,
        mandatory: np.ndarray,
        candidates: np.ndarray,
        new_window: tuple[float, float] | None = None,
    ) -> NavigationStep:
        theta = self._theta_for(new_region)
        window_changed = (
            new_window is not None and new_window != self.time_window
        )
        if window_changed and self._selection_cache is not None:
            # Captured warm-start masses were harvested over the old
            # window's population; the new window can admit objects
            # that population never covered, so the containment
            # argument behind the warm bounds no longer holds.
            self._selection_cache.invalidate()
        bounds = None
        used_prefetch = False
        warm_started = False
        temporal_seeded = False
        if self.prefetch_enabled:
            try:
                bounds = self._prefetch_bounds(operation, candidates, new_ids)
                used_prefetch = True
            except PrefetchUnavailable:
                bounds = None  # serve cold
        if bounds is None and new_window is not None:
            # Precomputed Lemma-5.1 masses for this exact window step
            # (maintained off-path after the previous temporal commit).
            bounds = self._temporal_bounds(
                new_region, new_window, new_ids, candidates
            )
            temporal_seeded = bounds is not None
        if (
            bounds is None
            and self._selection_cache is not None
            and self.similarity_cache is not None
        ):
            bounds = self._selection_cache.bounds_for(
                self.similarity_cache, new_region, new_ids, candidates
            )
            warm_started = bounds is not None
        delta_seeded = False
        if bounds is None and self._delta is not None:
            # The delta memo's bounds were maintained off-path after
            # the previous step (like prefetch/warm material); serving
            # is pure id matching, so it sits outside the timed region.
            bounds = self._delta.bounds_for(new_region, new_ids, candidates)
            delta_seeded = bounds is not None

        cache_before = self._cache_counters()
        pool_before = self._pool_policy_counters()
        tile_seeded = False
        # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
        started = time.perf_counter()
        with self.tracer.span(
            f"session.{operation}",
            population=int(len(new_ids)),
            candidates=int(len(candidates)),
            mandatory=int(len(mandatory)),
            used_prefetch=used_prefetch,
            warm_started=warm_started,
            temporal_seeded=temporal_seeded,
            delta_seeded=delta_seeded,
        ) as span:
            if bounds is None:
                # Tile-cache fallback, composed inside the timed
                # region: unlike prefetch/warm-start material (already
                # paid for off-path after the previous step), tile
                # composition is work this step actually performs.
                bounds = self._tile_bounds(new_region, new_ids, candidates)
                tile_seeded = bounds is not None
                if tile_seeded:
                    span.annotate(tile_seeded=True)
            result = select_with_ladder(
                self.dataset,
                region_ids=new_ids,
                candidate_ids=candidates,
                mandatory_ids=mandatory,
                k=self.k,
                theta=theta,
                aggregation=self.aggregation,
                deadline=self._new_deadline(),
                max_iterations=self.max_iterations,
                initial_bounds=bounds,
                lazy=self.lazy,
                init_mode=self.init_mode,
                fault_injector=self.fault_injector,
                rng=self._ladder_rng,
                metrics=self.metrics,
                batch_size=self.batch_size,
                pool=self._pool,
                tracer=self.tracer,
            )
            span.annotate(tier=result.stats.get("tier", "exact"))
        # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
        elapsed = time.perf_counter() - started
        if (
            used_prefetch
            or warm_started
            or tile_seeded
            or delta_seeded
            or temporal_seeded
        ) and self.equivalence_check:
            self._assert_equivalent(
                operation, result, new_ids, candidates, mandatory, theta
            )
            result.stats["equivalence_checked"] = True
        return self._commit(
            operation, new_region, result, mandatory, candidates,
            theta, elapsed, used_prefetch,
            population_ids=new_ids,
            cache_before=cache_before,
            warm_started=warm_started,
            tile_seeded=tile_seeded,
            delta_seeded=delta_seeded,
            temporal_seeded=temporal_seeded,
            new_window=new_window,
            pool_before=pool_before,
            span=span if self.tracer.enabled else None,
        )

    def _assert_equivalent(
        self,
        operation: str,
        result: SelectionResult,
        new_ids: np.ndarray,
        candidates: np.ndarray,
        mandatory: np.ndarray,
        theta: float,
    ) -> None:
        """Re-run the selection cold and compare (testing mode).

        Bypasses every seeding source (``initial_bounds=None``) but
        keeps the same deadline configuration disabled — the cold
        reference must not itself degrade, or the comparison would be
        meaningless.  The rerun also omits the worker pool and batch
        size, so for a parallel session this doubles as a live check of
        the batched-equals-sequential contract.  Raises
        :class:`EquivalenceViolation` on any
        difference in the selected ids (order included: greedy output
        order is deterministic).
        """
        cold = select_with_ladder(
            self.dataset,
            region_ids=new_ids,
            candidate_ids=candidates,
            mandatory_ids=mandatory,
            k=self.k,
            theta=theta,
            aggregation=self.aggregation,
            deadline=None,
            max_iterations=None,
            initial_bounds=None,
            lazy=self.lazy,
            init_mode=self.init_mode,
            rng=np.random.default_rng(2018),
        )
        if not np.array_equal(result.selected, cold.selected):
            raise EquivalenceViolation(
                f"seeded {operation} selection diverged from cold start: "
                f"seeded={result.selected.tolist()} "
                f"cold={cold.selected.tolist()}"
            )

    def _commit(
        self,
        operation: str,
        region: BoundingBox,
        result: SelectionResult,
        mandatory: np.ndarray,
        candidates: np.ndarray,
        theta: float,
        elapsed: float,
        used_prefetch: bool,
        population_ids: np.ndarray | None = None,
        cache_before: dict[str, int] | None = None,
        warm_started: bool = False,
        tile_seeded: bool = False,
        delta_seeded: bool = False,
        temporal_seeded: bool = False,
        new_window: tuple[float, float] | None = None,
        pool_before: dict[str, float] | None = None,
        span: Span | None = None,
    ) -> NavigationStep:
        self.region = region
        self.visible = result.selected
        if new_window is not None:
            self.time_window = (float(new_window[0]), float(new_window[1]))
        stats = dict(result.stats)
        stats["index_fallback"] = self._index_fallback
        # Per-step similarity-cache movement: delta of the cache's
        # lifetime counters across the selection itself (harvest and
        # prefetch work below are deliberately excluded — they are off
        # the response path).
        cache_hits = 0
        cache_misses = 0
        if cache_before is not None and self.similarity_cache is not None:
            after = self.similarity_cache.counters()
            cache_hits = after["hits"] - cache_before["hits"]
            cache_misses = after["misses"] - cache_before["misses"]
            stats["cache_hits"] = cache_hits
            stats["cache_misses"] = cache_misses
            stats["sim_pairs_evaluated"] = (
                after["pairs_evaluated"] - cache_before["pairs_evaluated"]
            )
        # Per-step pool-policy movement: how often the sweep reused a
        # live warm executor vs. skipped sharding as below the dispatch
        # floor, during this selection only.
        pool_reuse = 0
        shard_skipped_serial = 0
        if pool_before is not None:
            pool_reuse = int(
                self.metrics.count("parallel.pool_reuse")
                - pool_before["pool_reuse"]
            )
            shard_skipped_serial = int(
                self.metrics.count("parallel.shard_skipped_serial")
                - pool_before["shard_skipped_serial"]
            )
            stats["pool_reuse"] = pool_reuse
            stats["shard_skipped_serial"] = shard_skipped_serial
        step = NavigationStep(
            operation=operation,
            region=region,
            result=result,
            mandatory=mandatory,
            candidates=candidates,
            theta=theta,
            elapsed_s=elapsed,
            used_prefetch=used_prefetch,
            stats=stats,
            tier=result.stats.get("tier", "exact"),
            degraded=result.degraded or self._index_fallback,
            warm_started=warm_started,
            tile_seeded=tile_seeded,
            delta_seeded=delta_seeded,
            temporal_seeded=temporal_seeded,
            time_window=self.time_window,
            pool_reuse=pool_reuse,
            shard_skipped_serial=shard_skipped_serial,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            span=span,
        )
        self.history.append(step)
        self.metrics.incr(f"session.op.{operation}")
        self.metrics.observe("session.op_seconds", elapsed)
        if self.predictor is not None:
            self.predictor.observe(operation)
        # Prefetch and warm-capture run off the response path, so they
        # get their own root spans rather than inflating the step's.
        if self.prefetch_enabled:
            with self.tracer.span(
                "session.prefetch", operation=operation
            ) as prefetch_span:
                self._precompute_prefetch()
                prefetch_span.annotate(
                    kinds=sorted(self._prefetch_data),
                    errors=dict(self._prefetch_errors),
                )
        # Adaptive tile refinement runs off the response path too:
        # build what traffic missed, promote children of hot tiles,
        # let the byte budget evict cold ones.  Failures degrade to
        # "no refinement" — never to a broken step.
        if self.tiles is not None:
            with self.tracer.span(
                "session.tiles_refine", operation=operation
            ) as refine_span:
                try:
                    built = self.tiles.refine(self.dataset)
                except Exception:
                    self.metrics.incr("tiles.refine_errors")
                    built = []
                refine_span.annotate(built=len(built))
        # Harvest warm-start material last: it reads rows the selection
        # (and the prefetch sweep) just cached, off the response path.
        if (
            self._selection_cache is not None
            and self.similarity_cache is not None
            and population_ids is not None
        ):
            with self.tracer.span(
                "session.warm_capture", operation=operation
            ):
                self._selection_cache.capture(
                    self.similarity_cache,
                    self.dataset.weights,
                    region,
                    population_ids,
                )
        # Delta maintenance runs last: it diffs the just-committed
        # viewport against the memo so the *next* step can seed from an
        # O(delta) update.  Failures degrade to a cold next step.
        if self._delta is not None:
            with self.tracer.span(
                "session.delta_update", operation=operation
            ) as delta_span:
                try:
                    population = None
                    if self.time_window is not None:
                        # A windowed session maintains the memo over
                        # the window-filtered expanded population so
                        # slider steps diff along the time axis too.
                        population = self._temporal_delta_population(region)
                    self._delta.update(
                        self.dataset, region, population=population
                    )
                except Exception:
                    self.metrics.incr("delta.update_errors")
                    self._delta.invalidate()
                memo = self._delta.memo
                delta_span.annotate(
                    memo_population=0 if memo is None else len(memo.ids)
                )
        # Temporal prefetch runs last, also off-path: sweep Lemma-5.1
        # masses for the next/previous slider positions at the stride
        # the user last stepped (the window's own span before any
        # step).  Failures drop the material — the next step serves
        # from the remaining tiers.
        if (
            self.prefetch_enabled
            and self._temporal_prefetcher is not None
            and self.time_window is not None
        ):
            with self.tracer.span(
                "session.temporal_prefetch", operation=operation
            ) as temporal_span:
                dt = self._last_time_dt
                if not dt:
                    dt = self.time_window[1] - self.time_window[0]
                try:
                    self._temporal_prefetch = (
                        self._temporal_prefetcher.prefetch_steps(
                            region, self.time_window, dt
                        )
                    )
                except Exception:
                    self.metrics.incr("temporal.prefetch_errors")
                    self._temporal_prefetch = {}
                temporal_span.annotate(
                    windows=sorted(self._temporal_prefetch), dt=dt
                )
        return step

    def _temporal_delta_population(self, region: BoundingBox) -> np.ndarray:
        """Window-filtered population of the delta memo's expanded region.

        Mirrors :meth:`DeltaGainMaintainer.update`'s spatial expansion
        exactly, and expands the time window by the same margin
        fraction so slider steps up to ``margin`` of the window span
        stay inside the memo's source set (the spatial analogue: pans
        up to half a screen stay inside the expanded region).
        """
        margin = self._delta.margin
        expanded = region.expanded(
            margin * max(region.width, region.height)
        )
        w0, w1 = self.time_window
        span_t = w1 - w0
        w0e, w1e = w0 - margin * span_t, w1 + margin * span_t
        ids = self.dataset.objects_in(expanded)
        if len(ids) == 0:
            return ids
        ts = self.dataset.ts
        return ids[(ts[ids] >= w0e) & (ts[ids] < w1e)]

    def _precompute_prefetch(self) -> None:
        """Refresh prefetch material for all three possible next moves.

        Runs off the response path (the paper's "while the user is
        still in step 1"); timings are kept per kind in
        :attr:`prefetch_elapsed`.

        Every precomputation goes through the prefetch circuit
        breaker: failures (injected or real) drop that kind's material
        — the next operation is simply served cold — and after
        ``breaker.failure_threshold`` consecutive failures the
        pipeline is not called at all until the breaker's cool-down
        probe succeeds.  No exception escapes.
        """
        region = self._require_region()
        kinds = ("zoom_in", "zoom_out", "pan")
        if self.predictor is not None:
            kinds = tuple(
                self.predictor.predict(
                    [s.operation for s in self.history]
                )
            )
        builders = {
            "zoom_in": lambda: self._prefetcher.prefetch_zoom_in(region),
            "zoom_out": lambda: self._prefetcher.prefetch_zoom_out(
                region, self.zoom_out_max_scale
            ),
            "pan": lambda: self._prefetcher.prefetch_pan(
                region, tight=self.tight_pan_bounds
            ),
        }
        data: dict[str, PrefetchData] = {}
        errors: dict[str, str] = {}
        if self._pool is not None and self._pool.concurrent and len(kinds) > 1:
            # Fan the independent kinds across the pool.  Breaker
            # admission is decided up front via try_acquire (atomic:
            # it reserves the half-open probe ticket, so concurrent
            # refreshes can never race two probes through) and
            # outcomes are recorded serially from the ordered results,
            # so breaker state stays deterministic.
            admitted = []
            for kind in kinds:
                if self.breaker.try_acquire():
                    admitted.append(kind)
                else:
                    errors[kind] = "CircuitOpen"
                    self.tracer.event(
                        "breaker.reject", kind=kind, state=self.breaker.state
                    )
            outcomes = self._pool.run_all(
                [builders[kind] for kind in admitted]
            )
            for kind, (result, exc) in zip(admitted, outcomes):
                if exc is None:
                    self.breaker.record_success()
                    data[kind] = result
                else:
                    self._record_breaker_failure(kind)
                    errors[kind] = exc.__class__.__name__
        else:
            for kind in kinds:
                if not self.breaker.try_acquire():
                    errors[kind] = "CircuitOpen"
                    self.tracer.event(
                        "breaker.reject", kind=kind, state=self.breaker.state
                    )
                    continue
                try:
                    data[kind] = builders[kind]()
                except Exception as exc:
                    self._record_breaker_failure(kind)
                    errors[kind] = exc.__class__.__name__
                else:
                    self.breaker.record_success()
        self._prefetch_data = data
        self._prefetch_errors = errors

    def _record_breaker_failure(self, kind: str) -> None:
        """Record a prefetch failure, tracing a trip if it opened."""
        before = self.breaker.state
        self.breaker.record_failure()
        after = self.breaker.state
        if after == "open" and before != "open":
            self.tracer.event(
                "breaker.trip",
                kind=kind,
                failures=self.breaker.failures,
                from_state=before,
            )

    @property
    def prefetch_elapsed(self) -> dict[str, float]:
        """Seconds spent precomputing each prefetch kind (last refresh)."""
        return {
            kind: data.elapsed_s for kind, data in self._prefetch_data.items()
        }

    @property
    def prefetch_errors(self) -> dict[str, str]:
        """Exception class per prefetch kind that failed (last refresh)."""
        return dict(self._prefetch_errors)
