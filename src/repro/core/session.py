"""Interactive map-session engine (Sec. 3.4–3.5 + Sec. 5).

:class:`MapSession` owns everything the ISOS problem needs beyond a
single query: the current viewport, the set of objects currently
visible, and the derivation of the mandatory set ``D`` and candidate
set ``G`` for each navigation operation, following the paper's
Examples 3.3–3.5 exactly:

* **zoom-in** — visible objects falling inside the new (smaller)
  viewport must stay visible: ``D = visible ∩ rn``; any other object of
  the new viewport may be picked: ``G = O(rn) \\ D``.
* **zoom-out** — nothing is mandatory (``D = ∅``), but objects of the
  old viewport that were *not* visible cannot appear at the coarser
  granularity: ``G = O(rn \\ rp) ∪ visible``.
* **pan** — visible objects in the overlap stay visible:
  ``D = visible ∩ rn``; fresh picks come only from the newly exposed
  area: ``G = O(rn \\ rp)``.

The visibility threshold follows the paper's convention of a fixed
fraction of the viewport side length (Table 2), so it scales with zoom
level; the session guarantees the mandatory set always remains
``θ``-feasible under the new threshold (zoom-in shrinks ``θ``; pan
keeps it; zoom-out has no mandatory set).

With ``prefetch=True`` the session emulates the Sec. 5.2 pipeline:
after every operation it precomputes upper-bound material for all three
possible next operations; the next operation then seeds the greedy heap
from those bounds.  Response time (``NavigationStep.elapsed_s``)
excludes prefetch work, matching how the paper reports Fig. 13–14.

Every selection is served through the degradation ladder
(:func:`repro.robustness.select_with_ladder`): with a ``deadline_s``
budget the exact greedy becomes anytime and, when cut short, the
session descends to SaSS sampling and finally a top-weight fill — the
response is always ``θ``-feasible, and ``NavigationStep.tier`` /
``NavigationStep.degraded`` record how it was produced.  Prefetch
computations run behind a circuit breaker, index queries fall back to
a brute-force scan, and a :class:`~repro.robustness.FaultInjector` can
be threaded through all three failure points to drill the transitions
(see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.prediction import NavigationPredictor
from repro.core.prefetch import PrefetchData, Prefetcher
from repro.core.problem import Aggregation, SelectionResult
from repro.geo.bbox import BoundingBox
from repro.robustness.breaker import CircuitBreaker
from repro.robustness.budget import Deadline
from repro.robustness.errors import (
    InvalidNavigation,
    PrefetchUnavailable,
    SessionNotStarted,
)
from repro.robustness.faults import INDEX_QUERY, FaultInjector
from repro.robustness.ladder import select_with_ladder

DEFAULT_THETA_FRACTION = 0.003


def theta_fraction_for_screen(
    marker_px: float, screen_px: float
) -> float:
    """Visibility fraction from screen geometry.

    The paper motivates ``θ`` as "not too close to distinguish on the
    screen"; concretely, markers of ``marker_px`` pixels on a viewport
    of ``screen_px`` pixels must sit at least one marker apart, which
    in viewport-relative terms is ``marker_px / screen_px``.  Feed the
    result to :class:`MapSession`'s ``theta_fraction``.
    """
    if marker_px <= 0 or screen_px <= 0:
        raise ValueError("marker_px and screen_px must be positive")
    if marker_px >= screen_px:
        raise ValueError("marker cannot be as large as the screen")
    return marker_px / screen_px


@dataclass
class NavigationStep:
    """Record of one navigation operation and its selection."""

    operation: str
    region: BoundingBox
    result: SelectionResult
    mandatory: np.ndarray
    candidates: np.ndarray
    theta: float
    elapsed_s: float
    used_prefetch: bool = False
    stats: dict = field(default_factory=dict)
    # Which degradation tier served the step ("exact" when nothing
    # degraded) and whether the answer is best-effort in any way
    # (lower tier, anytime prefix, or index fallback).
    tier: str = "exact"
    degraded: bool = False

    @property
    def visible(self) -> np.ndarray:
        """Ids visible after this step (mandatory + selected)."""
        return self.result.selected


class MapSession:
    """Stateful interactive exploration of a :class:`GeoDataset`.

    Parameters
    ----------
    dataset:
        The collection being explored.
    k:
        Number of visible objects per viewport.
    theta_fraction:
        Visibility threshold as a fraction of viewport side length
        (paper default 0.003).
    prefetch:
        Enable the Sec. 5.2 pre-fetching pipeline.
    zoom_out_max_scale:
        Largest single zoom-out factor the prefetcher must cover.
    tight_pan_bounds:
        Use the per-object Lemma 5.3 refinement when prefetching pans.
    init_mode:
        Heap initialization for non-prefetched selections: ``"exact"``
        (Algorithm 1, black-box ``Sim``) or ``"bulk"`` (vectorized
        sweep; see :func:`repro.core.greedy.greedy_core`).
    predictor:
        Optional :class:`~repro.core.prediction.NavigationPredictor`;
        when given, prefetching is computed only for the predicted
        operations (cheaper precompute, possible cache misses that
        fall back to exact initialization).
    deadline_s:
        Optional per-operation response deadline in seconds.  Each
        navigation runs the degradation ladder (exact → sampled →
        top-weight) under this wall-clock budget and always returns a
        ``θ``-feasible selection; :attr:`NavigationStep.tier` records
        which tier served it.
    max_iterations:
        Optional cap on greedy iterations per tier attempt.
    fault_injector:
        Optional :class:`~repro.robustness.FaultInjector` threaded
        through the index / similarity / prefetch injection points —
        faults descend the ladder instead of escaping the session.
    breaker:
        Circuit breaker guarding the prefetch pipeline (a default one
        is created; pass your own to tune thresholds or share state).
    """

    def __init__(
        self,
        dataset: GeoDataset,
        k: int = 100,
        theta_fraction: float = DEFAULT_THETA_FRACTION,
        aggregation: Aggregation = Aggregation.MAX,
        prefetch: bool = False,
        zoom_out_max_scale: float = 4.0,
        tight_pan_bounds: bool = False,
        lazy: bool = True,
        init_mode: str = "exact",
        predictor: "NavigationPredictor | None" = None,
        deadline_s: float | None = None,
        max_iterations: int | None = None,
        fault_injector: FaultInjector | None = None,
        breaker: CircuitBreaker | None = None,
    ):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if theta_fraction < 0:
            raise ValueError("theta_fraction must be non-negative")
        if zoom_out_max_scale <= 1.0:
            raise ValueError("zoom_out_max_scale must exceed 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s}")
        self.dataset = dataset
        self.k = k
        self.theta_fraction = theta_fraction
        self.aggregation = aggregation
        self.prefetch_enabled = prefetch
        self.zoom_out_max_scale = zoom_out_max_scale
        self.tight_pan_bounds = tight_pan_bounds
        self.lazy = lazy
        self.init_mode = init_mode
        # Optional selective prefetching (the Battle-et-al. hook the
        # paper cites): precompute bounds only for the operations the
        # predictor ranks likely.  None = prefetch all three kinds.
        self.predictor = predictor
        self.deadline_s = deadline_s
        self.max_iterations = max_iterations
        self.fault_injector = fault_injector
        self.breaker = breaker or CircuitBreaker(name="prefetch")
        # Deterministic tier-2 sampling, independent of user RNG state.
        self._ladder_rng = np.random.default_rng(2018)

        self._prefetcher = Prefetcher(dataset, fault_injector=fault_injector)
        self._prefetch_data: dict[str, PrefetchData] = {}
        self._prefetch_errors: dict[str, str] = {}
        self._index_fallback = False
        self.index_fallbacks = 0  # lifetime count, for observability
        self.region: BoundingBox | None = None
        self.visible: np.ndarray = np.empty(0, dtype=np.int64)
        self.history: list[NavigationStep] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, region: BoundingBox) -> NavigationStep:
        """Open the session on ``region`` with a plain SOS selection."""
        theta = self._theta_for(region)
        region_ids = self._objects_in(region)
        started = time.perf_counter()
        result = select_with_ladder(
            self.dataset,
            region_ids=region_ids,
            candidate_ids=region_ids,
            mandatory_ids=np.empty(0, dtype=np.int64),
            k=self.k,
            theta=theta,
            aggregation=self.aggregation,
            deadline=self._new_deadline(),
            max_iterations=self.max_iterations,
            lazy=self.lazy,
            init_mode=self.init_mode,
            fault_injector=self.fault_injector,
            rng=self._ladder_rng,
        )
        elapsed = time.perf_counter() - started
        step = self._commit(
            operation="initial",
            region=region,
            result=result,
            mandatory=np.empty(0, dtype=np.int64),
            candidates=region_ids,
            theta=theta,
            elapsed=elapsed,
            used_prefetch=False,
        )
        return step

    def zoom_in(
        self, scale: float = 0.5, target: BoundingBox | None = None
    ) -> NavigationStep:
        """Zoom in; ``target`` overrides the centered default viewport.

        ``target`` must lie inside the current viewport (the paper's
        zoom-in produces a region "completely inside the previous
        region", Sec. 7.1).
        """
        region = self._require_region()
        new_region = target if target is not None else region.zoomed_in(scale)
        if not region.contains_box(new_region):
            raise InvalidNavigation(
                "zoom-in target must lie inside the current viewport"
            )

        new_ids = self._objects_in(new_region)
        inside = new_region.contains_many(
            self.dataset.xs[self.visible], self.dataset.ys[self.visible]
        )
        mandatory = self.visible[inside]
        candidates = np.setdiff1d(new_ids, mandatory, assume_unique=True)
        return self._navigate(
            "zoom_in", new_region, new_ids, mandatory, candidates
        )

    def zoom_out(
        self, scale: float = 2.0, target: BoundingBox | None = None
    ) -> NavigationStep:
        """Zoom out; ``target`` must contain the current viewport."""
        region = self._require_region()
        new_region = target if target is not None else region.zoomed_out(scale)
        if not new_region.contains_box(region):
            raise InvalidNavigation(
                "zoom-out target must contain the current viewport"
            )

        new_ids = self._objects_in(new_region)
        # Objects of the old viewport that were invisible cannot appear
        # at the coarser granularity (zooming consistency): candidates
        # are the newly exposed objects plus the previously visible.
        in_old = region.contains_many(
            self.dataset.xs[new_ids], self.dataset.ys[new_ids]
        )
        fresh = new_ids[~in_old]
        candidates = np.union1d(fresh, self.visible)
        mandatory = np.empty(0, dtype=np.int64)
        return self._navigate(
            "zoom_out", new_region, new_ids, mandatory, candidates
        )

    def pan(
        self,
        dx: float = 0.0,
        dy: float = 0.0,
        target: BoundingBox | None = None,
    ) -> NavigationStep:
        """Pan by ``(dx, dy)``; ``target`` overrides (same size, overlapping)."""
        region = self._require_region()
        new_region = target if target is not None else region.panned(dx, dy)
        if not new_region.intersects(region):
            raise InvalidNavigation(
                "pan target must overlap the current viewport"
            )
        if not (
            np.isclose(new_region.width, region.width)
            and np.isclose(new_region.height, region.height)
        ):
            raise InvalidNavigation("pan must preserve the viewport size")

        new_ids = self._objects_in(new_region)
        inside = new_region.contains_many(
            self.dataset.xs[self.visible], self.dataset.ys[self.visible]
        )
        mandatory = self.visible[inside]
        # Fresh picks only from the newly exposed strip (panning
        # consistency: overlap objects that were invisible stay so).
        in_old = region.contains_many(
            self.dataset.xs[new_ids], self.dataset.ys[new_ids]
        )
        candidates = np.setdiff1d(new_ids[~in_old], mandatory, assume_unique=True)
        return self._navigate("pan", new_region, new_ids, mandatory, candidates)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _theta_for(self, region: BoundingBox) -> float:
        return self.theta_fraction * max(region.width, region.height)

    def _require_region(self) -> BoundingBox:
        if self.region is None:
            raise SessionNotStarted(
                "session not started; call start(region) first"
            )
        return self.region

    def _new_deadline(self) -> Deadline | None:
        """Fresh per-operation deadline (``None`` when unconfigured)."""
        if self.deadline_s is None:
            return None
        return Deadline.after(self.deadline_s)

    def _objects_in(self, region: BoundingBox) -> np.ndarray:
        """Region query with graceful index degradation.

        Traverses the ``index.query`` fault point; any index failure
        falls back to a brute-force coordinate scan (exact, just
        slower) so a broken index never errors the response path.
        """
        self._index_fallback = False
        try:
            if self.fault_injector is not None:
                self.fault_injector.check(INDEX_QUERY)
            return self.dataset.objects_in(region)
        except Exception:
            self._index_fallback = True
            self.index_fallbacks += 1
            mask = region.contains_many(self.dataset.xs, self.dataset.ys)
            return np.flatnonzero(mask).astype(np.int64)

    def _prefetch_bounds(
        self,
        operation: str,
        candidates: np.ndarray,
        new_ids: np.ndarray,
    ) -> np.ndarray:
        """Prefetched upper bounds for this operation, or raise.

        Raises :class:`PrefetchUnavailable` when the material is
        missing (breaker skipped it / predictor miss), stale (computed
        from a different viewport), or does not cover the candidates —
        every case is served cold by the caller.
        """
        data = self._prefetch_data.get(operation)
        if data is None:
            raise PrefetchUnavailable(f"no prefetch data for {operation!r}")
        if self.region is not None and data.is_stale(self.region):
            raise PrefetchUnavailable(
                f"prefetch data for {operation!r} is stale"
            )
        if len(new_ids) == 0 or not data.covers(candidates):
            raise PrefetchUnavailable(
                f"prefetch data for {operation!r} does not cover candidates"
            )
        return data.bounds_for(candidates, len(new_ids))

    def _navigate(
        self,
        operation: str,
        new_region: BoundingBox,
        new_ids: np.ndarray,
        mandatory: np.ndarray,
        candidates: np.ndarray,
    ) -> NavigationStep:
        theta = self._theta_for(new_region)
        bounds = None
        used_prefetch = False
        if self.prefetch_enabled:
            try:
                bounds = self._prefetch_bounds(operation, candidates, new_ids)
                used_prefetch = True
            except PrefetchUnavailable:
                bounds = None  # serve cold

        started = time.perf_counter()
        result = select_with_ladder(
            self.dataset,
            region_ids=new_ids,
            candidate_ids=candidates,
            mandatory_ids=mandatory,
            k=self.k,
            theta=theta,
            aggregation=self.aggregation,
            deadline=self._new_deadline(),
            max_iterations=self.max_iterations,
            initial_bounds=bounds,
            lazy=self.lazy,
            init_mode=self.init_mode,
            fault_injector=self.fault_injector,
            rng=self._ladder_rng,
        )
        elapsed = time.perf_counter() - started
        return self._commit(
            operation, new_region, result, mandatory, candidates,
            theta, elapsed, used_prefetch,
        )

    def _commit(
        self,
        operation: str,
        region: BoundingBox,
        result: SelectionResult,
        mandatory: np.ndarray,
        candidates: np.ndarray,
        theta: float,
        elapsed: float,
        used_prefetch: bool,
    ) -> NavigationStep:
        self.region = region
        self.visible = result.selected
        stats = dict(result.stats)
        stats["index_fallback"] = self._index_fallback
        step = NavigationStep(
            operation=operation,
            region=region,
            result=result,
            mandatory=mandatory,
            candidates=candidates,
            theta=theta,
            elapsed_s=elapsed,
            used_prefetch=used_prefetch,
            stats=stats,
            tier=result.stats.get("tier", "exact"),
            degraded=result.degraded or self._index_fallback,
        )
        self.history.append(step)
        if self.predictor is not None:
            self.predictor.observe(operation)
        if self.prefetch_enabled:
            self._precompute_prefetch()
        return step

    def _precompute_prefetch(self) -> None:
        """Refresh prefetch material for all three possible next moves.

        Runs off the response path (the paper's "while the user is
        still in step 1"); timings are kept per kind in
        :attr:`prefetch_elapsed`.

        Every precomputation goes through the prefetch circuit
        breaker: failures (injected or real) drop that kind's material
        — the next operation is simply served cold — and after
        ``breaker.failure_threshold`` consecutive failures the
        pipeline is not called at all until the breaker's cool-down
        probe succeeds.  No exception escapes.
        """
        region = self._require_region()
        kinds = ("zoom_in", "zoom_out", "pan")
        if self.predictor is not None:
            kinds = tuple(
                self.predictor.predict(
                    [s.operation for s in self.history]
                )
            )
        builders = {
            "zoom_in": lambda: self._prefetcher.prefetch_zoom_in(region),
            "zoom_out": lambda: self._prefetcher.prefetch_zoom_out(
                region, self.zoom_out_max_scale
            ),
            "pan": lambda: self._prefetcher.prefetch_pan(
                region, tight=self.tight_pan_bounds
            ),
        }
        data: dict[str, PrefetchData] = {}
        errors: dict[str, str] = {}
        for kind in kinds:
            try:
                data[kind] = self.breaker.call(builders[kind])
            except Exception as exc:
                errors[kind] = exc.__class__.__name__
        self._prefetch_data = data
        self._prefetch_errors = errors

    @property
    def prefetch_elapsed(self) -> dict[str, float]:
        """Seconds spent precomputing each prefetch kind (last refresh)."""
        return {
            kind: data.elapsed_s for kind, data in self._prefetch_data.items()
        }

    @property
    def prefetch_errors(self) -> dict[str, str]:
        """Exception class per prefetch kind that failed (last refresh)."""
        return dict(self._prefetch_errors)
