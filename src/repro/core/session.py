"""Interactive map-session engine (Sec. 3.4–3.5 + Sec. 5).

:class:`MapSession` owns everything the ISOS problem needs beyond a
single query: the current viewport, the set of objects currently
visible, and the derivation of the mandatory set ``D`` and candidate
set ``G`` for each navigation operation, following the paper's
Examples 3.3–3.5 exactly:

* **zoom-in** — visible objects falling inside the new (smaller)
  viewport must stay visible: ``D = visible ∩ rn``; any other object of
  the new viewport may be picked: ``G = O(rn) \\ D``.
* **zoom-out** — nothing is mandatory (``D = ∅``), but objects of the
  old viewport that were *not* visible cannot appear at the coarser
  granularity: ``G = O(rn \\ rp) ∪ visible``.
* **pan** — visible objects in the overlap stay visible:
  ``D = visible ∩ rn``; fresh picks come only from the newly exposed
  area: ``G = O(rn \\ rp)``.

The visibility threshold follows the paper's convention of a fixed
fraction of the viewport side length (Table 2), so it scales with zoom
level; the session guarantees the mandatory set always remains
``θ``-feasible under the new threshold (zoom-in shrinks ``θ``; pan
keeps it; zoom-out has no mandatory set).

With ``prefetch=True`` the session emulates the Sec. 5.2 pipeline:
after every operation it precomputes upper-bound material for all three
possible next operations; the next operation then seeds the greedy heap
from those bounds.  Response time (``NavigationStep.elapsed_s``)
excludes prefetch work, matching how the paper reports Fig. 13–14.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.greedy import greedy_core
from repro.core.prediction import NavigationPredictor
from repro.core.prefetch import PrefetchData, Prefetcher
from repro.core.problem import Aggregation, SelectionResult
from repro.geo.bbox import BoundingBox

DEFAULT_THETA_FRACTION = 0.003


def theta_fraction_for_screen(
    marker_px: float, screen_px: float
) -> float:
    """Visibility fraction from screen geometry.

    The paper motivates ``θ`` as "not too close to distinguish on the
    screen"; concretely, markers of ``marker_px`` pixels on a viewport
    of ``screen_px`` pixels must sit at least one marker apart, which
    in viewport-relative terms is ``marker_px / screen_px``.  Feed the
    result to :class:`MapSession`'s ``theta_fraction``.
    """
    if marker_px <= 0 or screen_px <= 0:
        raise ValueError("marker_px and screen_px must be positive")
    if marker_px >= screen_px:
        raise ValueError("marker cannot be as large as the screen")
    return marker_px / screen_px


@dataclass
class NavigationStep:
    """Record of one navigation operation and its selection."""

    operation: str
    region: BoundingBox
    result: SelectionResult
    mandatory: np.ndarray
    candidates: np.ndarray
    theta: float
    elapsed_s: float
    used_prefetch: bool = False
    stats: dict = field(default_factory=dict)

    @property
    def visible(self) -> np.ndarray:
        """Ids visible after this step (mandatory + selected)."""
        return self.result.selected


class MapSession:
    """Stateful interactive exploration of a :class:`GeoDataset`.

    Parameters
    ----------
    dataset:
        The collection being explored.
    k:
        Number of visible objects per viewport.
    theta_fraction:
        Visibility threshold as a fraction of viewport side length
        (paper default 0.003).
    prefetch:
        Enable the Sec. 5.2 pre-fetching pipeline.
    zoom_out_max_scale:
        Largest single zoom-out factor the prefetcher must cover.
    tight_pan_bounds:
        Use the per-object Lemma 5.3 refinement when prefetching pans.
    init_mode:
        Heap initialization for non-prefetched selections: ``"exact"``
        (Algorithm 1, black-box ``Sim``) or ``"bulk"`` (vectorized
        sweep; see :func:`repro.core.greedy.greedy_core`).
    predictor:
        Optional :class:`~repro.core.prediction.NavigationPredictor`;
        when given, prefetching is computed only for the predicted
        operations (cheaper precompute, possible cache misses that
        fall back to exact initialization).
    """

    def __init__(
        self,
        dataset: GeoDataset,
        k: int = 100,
        theta_fraction: float = DEFAULT_THETA_FRACTION,
        aggregation: Aggregation = Aggregation.MAX,
        prefetch: bool = False,
        zoom_out_max_scale: float = 4.0,
        tight_pan_bounds: bool = False,
        lazy: bool = True,
        init_mode: str = "exact",
        predictor: "NavigationPredictor | None" = None,
    ):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if theta_fraction < 0:
            raise ValueError("theta_fraction must be non-negative")
        if zoom_out_max_scale <= 1.0:
            raise ValueError("zoom_out_max_scale must exceed 1")
        self.dataset = dataset
        self.k = k
        self.theta_fraction = theta_fraction
        self.aggregation = aggregation
        self.prefetch_enabled = prefetch
        self.zoom_out_max_scale = zoom_out_max_scale
        self.tight_pan_bounds = tight_pan_bounds
        self.lazy = lazy
        self.init_mode = init_mode
        # Optional selective prefetching (the Battle-et-al. hook the
        # paper cites): precompute bounds only for the operations the
        # predictor ranks likely.  None = prefetch all three kinds.
        self.predictor = predictor

        self._prefetcher = Prefetcher(dataset)
        self._prefetch_data: dict[str, PrefetchData] = {}
        self.region: BoundingBox | None = None
        self.visible: np.ndarray = np.empty(0, dtype=np.int64)
        self.history: list[NavigationStep] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, region: BoundingBox) -> NavigationStep:
        """Open the session on ``region`` with a plain SOS selection."""
        theta = self._theta_for(region)
        region_ids = self.dataset.objects_in(region)
        started = time.perf_counter()
        result = greedy_core(
            self.dataset,
            region_ids=region_ids,
            candidate_ids=region_ids,
            mandatory_ids=np.empty(0, dtype=np.int64),
            k=self.k,
            theta=theta,
            aggregation=self.aggregation,
            lazy=self.lazy,
            init_mode=self.init_mode,
        )
        elapsed = time.perf_counter() - started
        step = self._commit(
            operation="initial",
            region=region,
            result=result,
            mandatory=np.empty(0, dtype=np.int64),
            candidates=region_ids,
            theta=theta,
            elapsed=elapsed,
            used_prefetch=False,
        )
        return step

    def zoom_in(
        self, scale: float = 0.5, target: BoundingBox | None = None
    ) -> NavigationStep:
        """Zoom in; ``target`` overrides the centered default viewport.

        ``target`` must lie inside the current viewport (the paper's
        zoom-in produces a region "completely inside the previous
        region", Sec. 7.1).
        """
        region = self._require_region()
        new_region = target if target is not None else region.zoomed_in(scale)
        if not region.contains_box(new_region):
            raise ValueError("zoom-in target must lie inside the current viewport")

        new_ids = self.dataset.objects_in(new_region)
        inside = new_region.contains_many(
            self.dataset.xs[self.visible], self.dataset.ys[self.visible]
        )
        mandatory = self.visible[inside]
        candidates = np.setdiff1d(new_ids, mandatory, assume_unique=True)
        return self._navigate(
            "zoom_in", new_region, new_ids, mandatory, candidates
        )

    def zoom_out(
        self, scale: float = 2.0, target: BoundingBox | None = None
    ) -> NavigationStep:
        """Zoom out; ``target`` must contain the current viewport."""
        region = self._require_region()
        new_region = target if target is not None else region.zoomed_out(scale)
        if not new_region.contains_box(region):
            raise ValueError("zoom-out target must contain the current viewport")

        new_ids = self.dataset.objects_in(new_region)
        # Objects of the old viewport that were invisible cannot appear
        # at the coarser granularity (zooming consistency): candidates
        # are the newly exposed objects plus the previously visible.
        in_old = region.contains_many(
            self.dataset.xs[new_ids], self.dataset.ys[new_ids]
        )
        fresh = new_ids[~in_old]
        candidates = np.union1d(fresh, self.visible)
        mandatory = np.empty(0, dtype=np.int64)
        return self._navigate(
            "zoom_out", new_region, new_ids, mandatory, candidates
        )

    def pan(
        self,
        dx: float = 0.0,
        dy: float = 0.0,
        target: BoundingBox | None = None,
    ) -> NavigationStep:
        """Pan by ``(dx, dy)``; ``target`` overrides (same size, overlapping)."""
        region = self._require_region()
        new_region = target if target is not None else region.panned(dx, dy)
        if not new_region.intersects(region):
            raise ValueError("pan target must overlap the current viewport")
        if not (
            np.isclose(new_region.width, region.width)
            and np.isclose(new_region.height, region.height)
        ):
            raise ValueError("pan must preserve the viewport size")

        new_ids = self.dataset.objects_in(new_region)
        inside = new_region.contains_many(
            self.dataset.xs[self.visible], self.dataset.ys[self.visible]
        )
        mandatory = self.visible[inside]
        # Fresh picks only from the newly exposed strip (panning
        # consistency: overlap objects that were invisible stay so).
        in_old = region.contains_many(
            self.dataset.xs[new_ids], self.dataset.ys[new_ids]
        )
        candidates = np.setdiff1d(new_ids[~in_old], mandatory, assume_unique=True)
        return self._navigate("pan", new_region, new_ids, mandatory, candidates)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _theta_for(self, region: BoundingBox) -> float:
        return self.theta_fraction * max(region.width, region.height)

    def _require_region(self) -> BoundingBox:
        if self.region is None:
            raise RuntimeError("session not started; call start(region) first")
        return self.region

    def _navigate(
        self,
        operation: str,
        new_region: BoundingBox,
        new_ids: np.ndarray,
        mandatory: np.ndarray,
        candidates: np.ndarray,
    ) -> NavigationStep:
        theta = self._theta_for(new_region)
        bounds = None
        used_prefetch = False
        if self.prefetch_enabled:
            data = self._prefetch_data.get(operation)
            if data is not None and len(new_ids) > 0 and data.covers(candidates):
                bounds = data.bounds_for(candidates, len(new_ids))
                used_prefetch = True

        started = time.perf_counter()
        result = greedy_core(
            self.dataset,
            region_ids=new_ids,
            candidate_ids=candidates,
            mandatory_ids=mandatory,
            k=self.k,
            theta=theta,
            aggregation=self.aggregation,
            initial_bounds=bounds,
            lazy=self.lazy,
            init_mode=self.init_mode,
        )
        elapsed = time.perf_counter() - started
        return self._commit(
            operation, new_region, result, mandatory, candidates,
            theta, elapsed, used_prefetch,
        )

    def _commit(
        self,
        operation: str,
        region: BoundingBox,
        result: SelectionResult,
        mandatory: np.ndarray,
        candidates: np.ndarray,
        theta: float,
        elapsed: float,
        used_prefetch: bool,
    ) -> NavigationStep:
        self.region = region
        self.visible = result.selected
        step = NavigationStep(
            operation=operation,
            region=region,
            result=result,
            mandatory=mandatory,
            candidates=candidates,
            theta=theta,
            elapsed_s=elapsed,
            used_prefetch=used_prefetch,
            stats=dict(result.stats),
        )
        self.history.append(step)
        if self.predictor is not None:
            self.predictor.observe(operation)
        if self.prefetch_enabled:
            self._precompute_prefetch()
        return step

    def _precompute_prefetch(self) -> None:
        """Refresh prefetch material for all three possible next moves.

        Runs off the response path (the paper's "while the user is
        still in step 1"); timings are kept per kind in
        :attr:`prefetch_elapsed`.
        """
        region = self._require_region()
        kinds = ("zoom_in", "zoom_out", "pan")
        if self.predictor is not None:
            kinds = tuple(
                self.predictor.predict(
                    [s.operation for s in self.history]
                )
            )
        builders = {
            "zoom_in": lambda: self._prefetcher.prefetch_zoom_in(region),
            "zoom_out": lambda: self._prefetcher.prefetch_zoom_out(
                region, self.zoom_out_max_scale
            ),
            "pan": lambda: self._prefetcher.prefetch_pan(
                region, tight=self.tight_pan_bounds
            ),
        }
        self._prefetch_data = {kind: builders[kind]() for kind in kinds}

    @property
    def prefetch_elapsed(self) -> dict[str, float]:
        """Seconds spent precomputing each prefetch kind (last refresh)."""
        return {
            kind: data.elapsed_s for kind, data in self._prefetch_data.items()
        }
