"""The ISOS greedy (Sec. 5.1).

The extension over SOS is exactly the two changes the paper describes:
the selection is initialized with the mandatory set ``D`` (objects the
consistency constraints force to remain visible) and the heap is built
only over the candidate set ``G``.  Everything else — lazy forward,
conflict removal — is shared with :func:`repro.core.greedy.greedy_core`.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.greedy import greedy_core
from repro.core.problem import Aggregation, IsosQuery, SelectionResult
from repro.metrics import MetricsRegistry
from repro.parallel import WorkerPool
from repro.robustness.budget import Budget
from repro.robustness.faults import FaultInjector
from repro.trace.tracer import TracerLike


def isos_select(
    dataset: GeoDataset,
    query: IsosQuery,
    aggregation: Aggregation = Aggregation.MAX,
    initial_bounds: np.ndarray | None = None,
    lazy: bool = True,
    init_mode: str = "exact",
    budget: Budget | None = None,
    fault_injector: FaultInjector | None = None,
    strict: bool = False,
    metrics: MetricsRegistry | None = None,
    batch_size: int | None = None,
    pool: WorkerPool | None = None,
    tracer: TracerLike | None = None,
) -> SelectionResult:
    """Solve an ISOS query (Def. 3.6) with the extended greedy.

    ``initial_bounds``, when given (aligned with ``query.candidates``),
    seeds the heap with prefetched upper bounds instead of exact gains
    — the Sec. 5.2 fast path.  The selected ids in the result start
    with ``D`` followed by greedy picks.  ``budget``,
    ``fault_injector`` and ``strict`` pass straight through to
    :func:`~repro.core.greedy.greedy_core` (anytime selection, fault
    points, and input validation), as do the performance knobs:
    ``metrics``, ``batch_size`` (batched heap initialization) and
    ``pool`` (a warm :class:`~repro.parallel.WorkerPool` sharding the
    init sweep) — selections are bit-identical at any setting.
    """
    region_ids = dataset.objects_in(query.region)
    return greedy_core(
        dataset,
        region_ids=region_ids,
        candidate_ids=query.candidates,
        mandatory_ids=query.mandatory,
        k=query.k,
        theta=query.theta,
        aggregation=aggregation,
        initial_bounds=initial_bounds,
        lazy=lazy,
        init_mode=init_mode,
        budget=budget,
        fault_injector=fault_injector,
        strict=strict,
        metrics=metrics,
        batch_size=batch_size,
        pool=pool,
        tracer=tracer,
    )
