"""Hierarchical span tracing for the selection hot path.

A :class:`Span` is one timed region of work (a navigation operation, a
greedy heap initialization, one prefetch kind); spans nest, so every
navigation yields a *tree* attributing its latency to index /
similarity / heap / prefetch / cache work.  A :class:`Tracer` owns the
finished trees and the context-propagation machinery:

* **context-manager API** — ``with tracer.span("greedy.init"): ...``;
  the span under construction is tracked in a :mod:`contextvars`
  variable, so nested ``span()`` calls attach as children without any
  explicit threading of parents.
* **thread-aware** — each thread (and each
  ``ThreadPoolExecutor`` task) sees its own current-span context.
  Work dispatched to a worker thread passes the submitting context's
  span explicitly (``tracer.span(name, parent=...)``), which is how
  the :class:`~repro.parallel.WorkerPool` and the prefetch fan-out
  keep worker spans attached to the navigation that spawned them.
* **injectable clock** — like :mod:`repro.robustness`, the clock is a
  constructor parameter defaulting to the monotonic
  ``time.perf_counter`` so tests drive time explicitly.
* **metrics integration** — every finished span feeds
  ``trace.<name>`` in an optional
  :class:`~repro.metrics.MetricsRegistry`, so span latencies appear in
  the registry's p50/p95 timer summaries alongside the existing
  counters.

The default tracer everywhere is :data:`NULL_TRACER`, a shared
:class:`NullTracer` whose ``span()`` is a reusable no-op context
manager — cheap enough to leave compiled into the hot path
(``benchmarks/bench_trace_overhead.py`` gates the cost in CI).
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections.abc import Callable, Iterator
from typing import Any

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
    "TracerLike",
]


class SpanEvent:
    """A point-in-time annotation inside a span (breaker trip, ladder
    descent, cache fill...)."""

    __slots__ = ("name", "ts", "args")

    def __init__(self, name: str, ts: float, args: dict[str, Any]):
        self.name = name
        self.ts = ts
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r}, ts={self.ts:.6f})"


class Span:
    """One timed region of work; nodes of the trace tree."""

    __slots__ = (
        "name", "start", "end", "tid", "args", "children", "events"
    )

    def __init__(self, name: str, start: float, tid: int, args: dict):
        self.name = name
        self.start = start
        self.end = start  # finalized by the tracer on context exit
        self.tid = tid
        self.args = args
        self.children: list[Span] = []
        self.events: list[SpanEvent] = []

    @property
    def duration_s(self) -> float:
        """Seconds between entry and exit (0 while still open)."""
        return max(0.0, self.end - self.start)

    def annotate(self, **args: Any) -> "Span":
        """Attach key/value arguments to the span (chains)."""
        self.args.update(args)
        return self

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def child_seconds(self) -> float:
        """Total duration of direct children (attribution check)."""
        return sum(c.duration_s for c in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.duration_s * 1000:.3f}ms, "
            f"children={len(self.children)})"
        )


class _SpanContext:
    """Reusable context manager entering/exiting one span."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span, parent: Span | None):
        self._tracer = tracer
        self._span = span
        # Parent resolution happened in Tracer.span(); the token is set
        # on __enter__ so the contextvar only mutates inside the block.
        self._token: contextvars.Token | None = None

    def __enter__(self) -> Span:
        self._token = self._tracer._current.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        span = self._span
        span.end = self._tracer._clock()
        if self._token is not None:
            self._tracer._current.reset(self._token)
        self._tracer._finish(span)


class _NullSpan(Span):
    """Inert span handed out by :class:`NullTracer` (all no-ops)."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__("null", 0.0, 0, {})

    def annotate(self, **args: Any) -> "Span":
        return self


class _NullSpanContext:
    """Shared no-op context manager — the hot-path default."""

    __slots__ = ("_span",)

    def __init__(self, span: _NullSpan):
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info) -> None:
        return None


class NullTracer:
    """Do-nothing tracer with the full :class:`Tracer` surface.

    Safe to share: it keeps no state, and its ``span()`` returns one
    preallocated context manager (no allocation per call).
    """

    enabled = False

    def __init__(self) -> None:
        self._null_cm = _NullSpanContext(_NullSpan())

    def span(self, name: str, parent: Span | None = None, **args):
        return self._null_cm

    def record(
        self, name: str, start: float, end: float, parent=None, **args
    ) -> Span:
        return self._null_cm._span

    def event(self, name: str, **args: Any) -> None:
        return None

    def current(self) -> Span | None:
        return None

    @property
    def roots(self) -> list[Span]:
        return []

    def clear(self) -> None:
        return None


#: The shared default tracer.  ``tracer or NULL_TRACER`` is the
#: convention at every instrumented call site.
NULL_TRACER = NullTracer()


class Tracer:
    """Collects span trees from instrumented code.

    Parameters
    ----------
    clock:
        Monotonic time source (injectable for tests).
    metrics:
        Optional :class:`~repro.metrics.MetricsRegistry`; every
        finished span is observed as ``trace.<name>`` so span
        latencies feed the registry's p50/p95 summaries.
    max_spans:
        Safety cap on retained spans across all trees.  Once reached,
        new *root* spans are dropped (counted in :attr:`dropped`) so a
        long-running traced session cannot grow without bound; spans
        nested under an already-admitted root are always kept.
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        metrics=None,
        max_spans: int = 1_000_000,
    ):
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._clock = clock
        self.metrics = metrics
        self.max_spans = max_spans
        self.dropped = 0
        self._spans_seen = 0
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._current: contextvars.ContextVar[Span | None] = (
            contextvars.ContextVar("repro_trace_current", default=None)
        )

    # ------------------------------------------------------------------
    # Recording surface
    # ------------------------------------------------------------------

    def span(self, name: str, parent: Span | None = None, **args):
        """Open a span; use as ``with tracer.span("name") as sp:``.

        ``parent`` overrides context-derived nesting — required when
        the span runs on a worker thread whose context does not
        inherit the submitting thread's current span.
        """
        if parent is None:
            parent = self._current.get()
        span = Span(name, self._clock(), threading.get_ident(), args)
        with self._lock:
            if parent is not None:
                # Attaching eagerly (not on exit) keeps concurrent
                # children from racing on discovery of their parent,
                # and partial trees visible if a span never exits.
                self._spans_seen += 1
                parent.children.append(span)
            elif self._spans_seen < self.max_spans:
                self._spans_seen += 1
                self._roots.append(span)
            else:
                self.dropped += 1
        return _SpanContext(self, span, parent)

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: Span | None = None,
        **args: Any,
    ) -> Span:
        """Attach an already-measured region as a completed span.

        For code that has timed itself (``greedy_core``'s init sweep
        keeps ``init_seconds`` for its stats either way): the span is
        built retroactively from the caller's clock readings and slots
        into the current context's tree like any other child.
        """
        span = Span(name, start, threading.get_ident(), args)
        span.end = end
        if parent is None:
            parent = self._current.get()
        with self._lock:
            if parent is not None:
                self._spans_seen += 1
                parent.children.append(span)
            elif self._spans_seen < self.max_spans:
                self._spans_seen += 1
                self._roots.append(span)
            else:
                self.dropped += 1
        self._finish(span)
        return span

    def event(self, name: str, **args: Any) -> None:
        """Record an instant event on the current span (else dropped)."""
        span = self._current.get()
        if span is None:
            return
        span.events.append(SpanEvent(name, self._clock(), dict(args)))

    def current(self) -> Span | None:
        """The span currently open in this thread/context, if any."""
        return self._current.get()

    def _finish(self, span: Span) -> None:
        if self.metrics is not None:
            self.metrics.observe(f"trace.{span.name}", span.duration_s)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def roots(self) -> list[Span]:
        """Top-level spans recorded so far (insertion order)."""
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        """Drop all recorded spans (keeps configuration)."""
        with self._lock:
            self._roots.clear()
            self._spans_seen = 0
            self.dropped = 0


#: What instrumented call sites accept: a recording tracer or the
#: shared no-op.  (``NullTracer`` mirrors the surface without
#: inheriting, so the hot-path no-op stays allocation-free.)
TracerLike = Tracer | NullTracer
