"""Trace exporters: Chrome trace format JSON and ASCII summaries.

The JSON exporter emits the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
consumed by ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_:
one complete (``"ph": "X"``) event per span with microsecond
timestamps, plus instant (``"ph": "i"``) events for span events
(breaker trips, ladder descents, cache fills).  Load the file in
either viewer to see every navigation's latency attribution on a
per-thread timeline.

The ASCII exporter renders one span tree as an indented table — the
``repro explore --trace-summary`` per-step output.
"""

from __future__ import annotations

import json
from typing import Any

from repro.trace.tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "format_span_tree",
    "write_chrome_trace",
]

_US = 1e6  # seconds -> microseconds


def _jsonable(value: Any) -> Any:
    """Coerce span args to JSON-safe scalars (numpy included)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return item()
        # repro-lint: disable=RL005 -- JSON coercion falls through to repr(); exporting must never fail a trace dump
        except Exception:  # pragma: no cover - exotic array types
            pass
    return repr(value)


def _span_events(
    span: Span, origin: float, pid: int, tids: dict[int, int]
) -> list[dict]:
    tid = tids.setdefault(span.tid, len(tids))
    out: list[dict] = [
        {
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": (span.start - origin) * _US,
            "dur": span.duration_s * _US,
            "pid": pid,
            "tid": tid,
            "args": {k: _jsonable(v) for k, v in span.args.items()},
        }
    ]
    for event in span.events:
        out.append(
            {
                "name": event.name,
                "cat": event.name.split(".", 1)[0],
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": (event.ts - origin) * _US,
                "pid": pid,
                "tid": tid,
                "args": {k: _jsonable(v) for k, v in event.args.items()},
            }
        )
    for child in span.children:
        out.extend(_span_events(child, origin, pid, tids))
    return out


def chrome_trace(tracer: Tracer, pid: int = 1) -> dict:
    """Chrome-trace-format document for everything the tracer holds.

    Timestamps are rebased to the earliest root span so the timeline
    starts near zero regardless of the process clock's epoch.
    """
    roots = tracer.roots
    origin = min((s.start for s in roots), default=0.0)
    tids: dict[int, int] = {}
    events: list[dict] = []
    for root in roots:
        events.extend(_span_events(root, origin, pid, tids))
    # Name the synthetic threads so the viewer's lanes are readable.
    for raw, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"thread-{tid} (ident {raw})"},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.trace",
            "spans": sum(1 for r in roots for _ in r.walk()),
            "dropped_roots": tracer.dropped,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str, pid: int = 1) -> None:
    """Serialize :func:`chrome_trace` to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer, pid=pid), fh, indent=1)


def format_span_tree(
    span: Span, min_fraction: float = 0.0, _depth: int = 0
) -> str:
    """ASCII rendering of one span tree with per-node attribution.

    Each line shows the span's duration and its share of the root;
    subtrees below ``min_fraction`` of the root are elided.  Span
    events are listed inline (they carry no duration).
    """
    root_s = span.duration_s if _depth == 0 else None

    def render(node: Span, depth: int, root_duration: float) -> list[str]:
        share = (
            node.duration_s / root_duration if root_duration > 0 else 1.0
        )
        if depth > 0 and share < min_fraction:
            return []
        pad = "  " * depth
        extra = ""
        if node.args:
            parts = ", ".join(f"{k}={v}" for k, v in node.args.items())
            extra = f"  [{parts}]"
        lines = [
            f"{pad}{node.name:<28s} {node.duration_s * 1000:9.3f} ms"
            f"  {share:6.1%}{extra}"
        ]
        for event in node.events:
            lines.append(f"{pad}  ! {event.name} {event.args or ''}".rstrip())
        for child in node.children:
            lines.extend(render(child, depth + 1, root_duration))
        return lines

    return "\n".join(render(span, 0, root_s if root_s else span.duration_s))
