"""Minimal schema validation for exported Chrome-trace JSON.

The CI bench workflow uploads a sample trace as an artifact; this
module is the gate that proves the artifact is actually loadable by
``chrome://tracing`` / Perfetto before it ships.  Dependency-free by
design (no jsonschema in the container): the checks are the structural
invariants the viewers rely on.

Run as a module::

    python -m repro.trace.schema out.json
"""

from __future__ import annotations

import json
import sys

__all__ = ["validate_chrome_trace", "validate_chrome_trace_file"]

_REQUIRED_BY_PHASE = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid"),
    "M": ("name", "pid"),
}


def validate_chrome_trace(document: dict) -> dict:
    """Validate a Chrome-trace document; returns summary statistics.

    Raises :class:`ValueError` naming the first violated invariant.
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    if not events:
        raise ValueError("traceEvents is empty")
    counts = {"X": 0, "i": 0, "M": 0}
    for pos, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{pos} is not an object")
        phase = event.get("ph")
        if phase not in _REQUIRED_BY_PHASE:
            raise ValueError(
                f"event #{pos} has unsupported phase {phase!r}"
            )
        for key in _REQUIRED_BY_PHASE[phase]:
            if key not in event:
                raise ValueError(
                    f"event #{pos} (ph={phase}) is missing {key!r}"
                )
        if phase in ("X", "i"):
            ts = event["ts"]
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(
                    f"event #{pos} has non-monotonic ts {ts!r}"
                )
        if phase == "X":
            dur = event["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"event #{pos} has invalid dur {dur!r}"
                )
        counts[phase] += 1
    if counts["X"] == 0:
        raise ValueError("trace holds no complete ('X') span events")
    return {
        "events": len(events),
        "spans": counts["X"],
        "instants": counts["i"],
        "metadata": counts["M"],
    }


def validate_chrome_trace_file(path: str) -> dict:
    """Load ``path`` and validate it; returns summary statistics."""
    with open(path, encoding="utf-8") as fh:
        document = json.load(fh)
    return validate_chrome_trace(document)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.trace.schema TRACE.json")
        return 2
    try:
        stats = validate_chrome_trace_file(argv[0])
    except (ValueError, OSError, json.JSONDecodeError) as exc:
        print(f"INVALID: {exc}")
        return 1
    print(
        f"OK: {stats['events']} events "
        f"({stats['spans']} spans, {stats['instants']} instants)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
