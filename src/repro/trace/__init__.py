"""End-to-end tracing and profiling (``docs/OBSERVABILITY.md``).

* :class:`Tracer` / :class:`Span` — hierarchical span trees with a
  context-manager API, thread-aware context propagation, and an
  injectable clock.
* :data:`NULL_TRACER` / :class:`NullTracer` — the no-op default left
  compiled into the hot path (overhead gated in CI).
* :func:`chrome_trace` / :func:`write_chrome_trace` — Chrome-trace
  JSON export for ``chrome://tracing`` / Perfetto.
* :func:`format_span_tree` — ASCII per-step summary.
* :func:`validate_chrome_trace` — the minimal schema check the CI
  artifact gate runs.
"""

from repro.trace.export import (
    chrome_trace,
    format_span_tree,
    write_chrome_trace,
)
from repro.trace.schema import (
    validate_chrome_trace,
    validate_chrome_trace_file,
)
from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    TracerLike,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
    "TracerLike",
    "chrome_trace",
    "format_span_tree",
    "validate_chrome_trace",
    "validate_chrome_trace_file",
    "write_chrome_trace",
]
