"""Axis-aligned bounding box with the map-navigation geometry.

:class:`BoundingBox` doubles as the "region of user's interest" from the
paper: the query region of an SOS query and the viewport the user
navigates with zoom-in / zoom-out / pan.  The navigation helpers
(:meth:`BoundingBox.zoomed_in`, :meth:`BoundingBox.zoomed_out`,
:meth:`BoundingBox.panned`) implement the paper's operations exactly:

* zooming keeps the *center* fixed and scales the side length
  (Sec. 3.4: "the center of the map remains unchanged");
* panning translates the window, keeping its size.

Boxes are closed on the min edges and closed on the max edges
(``minx <= x <= maxx``); the paper never depends on open/closed
boundary semantics, and closed boxes make containment of corner points
unsurprising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """Axis-aligned rectangle ``[minx, maxx] x [miny, maxy]``."""

    minx: float
    miny: float
    maxx: float
    maxy: float

    def __post_init__(self) -> None:
        if self.minx > self.maxx or self.miny > self.maxy:
            raise ValueError(
                f"degenerate box: ({self.minx}, {self.miny}, "
                f"{self.maxx}, {self.maxy})"
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_center(
        cls, center: Point, width: float, height: float | None = None
    ) -> "BoundingBox":
        """Box of the given size centered on ``center``.

        ``height`` defaults to ``width`` (square viewports, as in all of
        the paper's experiments).
        """
        if height is None:
            height = width
        hw = width / 2.0
        hh = height / 2.0
        return cls(center.x - hw, center.y - hh, center.x + hw, center.y + hh)

    @classmethod
    def from_points(cls, xs: np.ndarray, ys: np.ndarray) -> "BoundingBox":
        """Tightest box containing every ``(xs[i], ys[i])``."""
        if len(xs) == 0:
            raise ValueError("cannot bound an empty point set")
        return cls(
            float(np.min(xs)), float(np.min(ys)),
            float(np.max(xs)), float(np.max(ys)),
        )

    @classmethod
    def unit(cls) -> "BoundingBox":
        """The unit square ``[0, 1] x [0, 1]`` — the normalized frame."""
        return cls(0.0, 0.0, 1.0, 1.0)

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.maxx - self.minx

    @property
    def height(self) -> float:
        return self.maxy - self.miny

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.minx + self.maxx) / 2.0, (self.miny + self.maxy) / 2.0)

    def __iter__(self) -> Iterator[float]:
        yield self.minx
        yield self.miny
        yield self.maxx
        yield self.maxy

    def contains_point(self, x: float, y: float) -> bool:
        """Whether ``(x, y)`` lies inside (boundary inclusive)."""
        return self.minx <= x <= self.maxx and self.miny <= y <= self.maxy

    def contains_many(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside the box (vectorized)."""
        return (
            (xs >= self.minx)
            & (xs <= self.maxx)
            & (ys >= self.miny)
            & (ys <= self.maxy)
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """Whether ``other`` lies entirely inside this box."""
        return (
            self.minx <= other.minx
            and self.miny <= other.miny
            and self.maxx >= other.maxx
            and self.maxy >= other.maxy
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes share any point (touching counts)."""
        return not (
            other.minx > self.maxx
            or other.maxx < self.minx
            or other.miny > self.maxy
            or other.maxy < self.miny
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """Overlap box, or ``None`` when the boxes are disjoint."""
        if not self.intersects(other):
            return None
        return BoundingBox(
            max(self.minx, other.minx),
            max(self.miny, other.miny),
            min(self.maxx, other.maxx),
            min(self.maxy, other.maxy),
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            min(self.minx, other.minx),
            min(self.miny, other.miny),
            max(self.maxx, other.maxx),
            max(self.maxy, other.maxy),
        )

    def overlap_fraction(self, other: "BoundingBox") -> float:
        """Area of the overlap as a fraction of this box's area.

        Used to bucket panning operations by overlap percentage
        (paper Fig. 14(c)).
        """
        inter = self.intersection(other)
        if inter is None or self.area == 0.0:
            return 0.0
        return inter.area / self.area

    def min_distance_to_point(self, x: float, y: float) -> float:
        """Euclidean distance from the box to ``(x, y)`` (0 if inside)."""
        dx = max(self.minx - x, 0.0, x - self.maxx)
        dy = max(self.miny - y, 0.0, y - self.maxy)
        return float(np.hypot(dx, dy))

    def expanded(self, margin: float) -> "BoundingBox":
        """Box grown by ``margin`` on every side."""
        return BoundingBox(
            self.minx - margin, self.miny - margin,
            self.maxx + margin, self.maxy + margin,
        )

    def clipped_to(self, frame: "BoundingBox") -> "BoundingBox":
        """This box clipped to lie inside ``frame``.

        Raises ``ValueError`` when the two are disjoint — a navigation
        operation should never leave the dataset frame entirely.
        """
        inter = self.intersection(frame)
        if inter is None:
            raise ValueError("box lies entirely outside the frame")
        return inter

    # ------------------------------------------------------------------
    # Map-navigation geometry (paper Sec. 3.4)
    # ------------------------------------------------------------------

    def zoomed_in(self, scale: float) -> "BoundingBox":
        """Viewport after zooming in: same center, side length ``* scale``.

        ``scale`` must be in ``(0, 1)``; the paper's zoom-in scales are
        ``2^-3 .. 2^-1`` by length (Table 2).
        """
        if not 0.0 < scale < 1.0:
            raise ValueError(f"zoom-in scale must be in (0, 1), got {scale}")
        return BoundingBox.from_center(
            self.center, self.width * scale, self.height * scale
        )

    def zoomed_out(self, scale: float) -> "BoundingBox":
        """Viewport after zooming out: same center, side length ``* scale``.

        ``scale`` must be ``> 1``; the paper's zoom-out scales are
        ``2^1 .. 2^3`` by length (Table 2).
        """
        if scale <= 1.0:
            raise ValueError(f"zoom-out scale must be > 1, got {scale}")
        return BoundingBox.from_center(
            self.center, self.width * scale, self.height * scale
        )

    def panned(self, dx: float, dy: float) -> "BoundingBox":
        """Viewport translated by ``(dx, dy)``, size unchanged."""
        return BoundingBox(
            self.minx + dx, self.miny + dy, self.maxx + dx, self.maxy + dy
        )

    def pan_union(self) -> "BoundingBox":
        """Union of all possible panning targets overlapping this viewport.

        A panned window of the same size overlaps the current window iff
        its center stays within one window-size of the current center,
        so the union ``rA`` (paper Fig. 5) is the box grown by the full
        window size on each side — three windows wide and tall.
        """
        return BoundingBox(
            self.minx - self.width, self.miny - self.height,
            self.maxx + self.width, self.maxy + self.height,
        )

    def zoom_out_union(self, max_scale: float) -> "BoundingBox":
        """Union of all zoom-out targets up to ``max_scale`` (paper Fig. 4).

        Every zoom-out keeps the center, so the union is simply the
        largest possible viewport.
        """
        return self.zoomed_out(max_scale)
