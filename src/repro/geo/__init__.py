"""Geometry substrate: points, bounding boxes, and distance metrics.

Everything in :mod:`repro` that talks about "where" goes through this
package.  The API layer exposes small immutable value objects
(:class:`Point`, :class:`BoundingBox`) while the hot paths operate on
numpy coordinate arrays via the vectorized helpers in
:mod:`repro.geo.distance`.
"""

from repro.geo.bbox import BoundingBox
from repro.geo.distance import (
    euclidean,
    euclidean_many,
    haversine,
    haversine_many,
    pairwise_min_distance,
    squared_euclidean,
)
from repro.geo.point import Point

__all__ = [
    "BoundingBox",
    "Point",
    "euclidean",
    "euclidean_many",
    "haversine",
    "haversine_many",
    "pairwise_min_distance",
    "squared_euclidean",
]
