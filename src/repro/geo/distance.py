"""Distance metrics, scalar and vectorized.

The selection algorithms only ever need two things from a metric:

* scalar distance between two points (visibility checks), and
* distance from one point to *many* points at once (conflict removal
  after a greedy pick), which must be vectorized to keep the greedy
  loop's constant small.

Planar Euclidean distance is the default everywhere (the datasets are
normalized into the unit square).  Haversine is provided for users who
keep raw lon/lat coordinates.
"""

from __future__ import annotations

import math

import numpy as np

EARTH_RADIUS_KM = 6371.0088


def euclidean(x1: float, y1: float, x2: float, y2: float) -> float:
    """Planar Euclidean distance between ``(x1, y1)`` and ``(x2, y2)``."""
    return math.hypot(x1 - x2, y1 - y2)


def squared_euclidean(x1: float, y1: float, x2: float, y2: float) -> float:
    """Squared planar distance — avoids the sqrt on comparison-only paths."""
    dx = x1 - x2
    dy = y1 - y2
    return dx * dx + dy * dy


def euclidean_many(
    x: float, y: float, xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """Distances from ``(x, y)`` to every ``(xs[i], ys[i])``.

    Parameters are kept as separate coordinate arrays (struct-of-arrays)
    to match how :class:`repro.core.dataset.GeoDataset` stores objects.
    """
    return np.hypot(xs - x, ys - y)


def haversine(
    lon1: float, lat1: float, lon2: float, lat2: float
) -> float:
    """Great-circle distance in kilometres between two lon/lat points."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def haversine_many(
    lon: float, lat: float, lons: np.ndarray, lats: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`haversine` from one point to many points."""
    phi1 = math.radians(lat)
    phi2 = np.radians(lats)
    dphi = np.radians(lats - lat)
    dlam = np.radians(lons - lon)
    a = (
        np.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a))


def pairwise_min_distance(xs: np.ndarray, ys: np.ndarray) -> float:
    """Smallest pairwise Euclidean distance among the given points.

    Used by tests and benchmarks to assert the visibility constraint on
    a selector's output.  Returns ``inf`` for fewer than two points.
    Quadratic, so intended for result sets (size ``k``), not datasets.
    """
    n = len(xs)
    if n < 2:
        return float("inf")
    pts = np.column_stack([xs, ys])
    diff = pts[:, None, :] - pts[None, :, :]
    dists = np.hypot(diff[..., 0], diff[..., 1])
    # Mask the diagonal (distance of each point to itself).
    np.fill_diagonal(dists, np.inf)
    return float(dists.min())
