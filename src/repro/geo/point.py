"""Immutable 2-D point value object.

Coordinates are plain floats in whatever planar reference frame the
dataset uses.  All paper experiments use a unit-less planar frame where
the full dataset extent is normalized into ``[0, 1] x [0, 1]``; region
sizes and visibility thresholds in the paper (Table 2) are fractions of
that frame, which this representation makes direct to express.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """A 2-D point ``(x, y)``.

    The class is frozen so points can key dictionaries and live in sets;
    it supports iteration/unpacking (``x, y = point``) and basic vector
    arithmetic, which keeps geometry code readable.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (cheaper, no sqrt)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def midpoint(self, other: "Point") -> "Point":
        """Point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy of this point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """``(x, y)`` tuple — handy for numpy construction."""
        return (self.x, self.y)
