"""The degradation ladder: exact → sampled → top-weight.

Interactive selection must answer *something* before the user stops
looking at the map.  The ladder runs up to three tiers, descending
whenever the deadline or a fault fires, and guarantees the answer is
``θ``-feasible at whatever tier served it:

1. **exact** — the lazy-forward greedy (Algorithm 1 / ISOS), run as an
   *anytime* computation under the operation's
   :class:`~repro.robustness.Budget`.  With no deadline and no fault
   this is bit-for-bit the undegraded engine.
2. **sampled** — SaSS (Algorithm 2): greedy over a
   Serfling-sized uniform sample of the population, so both heap
   initialization and gain evaluations shrink by orders of magnitude.
   Entered when tier 1 was cut short or errored and the deadline has
   not already passed.
3. **top-weight** — the map-service default policy (Sec. 2): mandatory
   set first, then highest-weight candidates that stay ``θ``-apart.
   Pure numpy over coordinates and weights — no similarity kernel, no
   spatial index — so it cannot be blocked by a deadline nor broken by
   the fault points, and it always terminates.  Its ``score`` field is
   0.0 with ``stats["score_evaluated"] = False`` (evaluating Eq. 2
   would cost the very similarity work the tier exists to avoid).

All tiers share one wall-clock :class:`Deadline`; each attempt gets a
fresh :class:`Budget` (iteration counts restart).  Contract violations
(:class:`InfeasibleSelection`) are *not* degraded around — no tier can
return a feasible superset of an infeasible mandatory set — and
propagate to the caller.
"""

from __future__ import annotations

import enum
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.problem import Aggregation, SelectionResult
from repro.metrics import MetricsRegistry
from repro.robustness.budget import Budget, Deadline
from repro.robustness.errors import InfeasibleSelection
from repro.robustness.faults import FaultInjector
from repro.trace.tracer import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dataset import GeoDataset


class Tier(str, enum.Enum):
    """Degradation tiers, best first."""

    EXACT = "exact"
    SAMPLED = "sampled"
    TOPWEIGHT = "topweight"


def select_with_ladder(
    dataset: GeoDataset,
    *,
    region_ids: np.ndarray,
    candidate_ids: np.ndarray,
    mandatory_ids: np.ndarray,
    k: int,
    theta: float,
    aggregation: Aggregation = Aggregation.MAX,
    deadline: Deadline | None = None,
    max_iterations: int | None = None,
    initial_bounds: np.ndarray | None = None,
    lazy: bool = True,
    init_mode: str = "exact",
    fault_injector: FaultInjector | None = None,
    rng: np.random.Generator | None = None,
    epsilon: float = 0.05,
    delta: float = 0.1,
    metrics: MetricsRegistry | None = None,
    batch_size: int | None = None,
    pool=None,
    tracer=None,
) -> SelectionResult:
    """Serve one selection through the degradation ladder.

    Arguments mirror :func:`~repro.core.greedy.greedy_core`;
    ``deadline``/``max_iterations`` bound each tier attempt,
    ``epsilon``/``delta``/``rng`` parameterize the tier-2 sample, and
    ``metrics`` threads an optional
    :class:`~repro.metrics.MetricsRegistry` into the greedy engine
    (plus a ``ladder.tier.<tier>`` counter per served response).  The
    returned result always records ``stats["tier"]`` (the serving
    tier) and ``stats["ladder_attempts"]`` (``(tier, reason)`` pairs
    for every tier that was tried and abandoned), and is marked
    ``degraded`` unless tier 1 completed in full.

    ``tracer``, when given, wraps each tier attempt in a
    ``ladder.<tier>`` span and emits a ``ladder.degrade`` span event
    (carrying the tier and reason) on every descent, so degradations
    are visible in the exported trace timeline.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    # Imported here, not at module top: greedy/sampling themselves
    # import the robustness primitives, and this package's __init__
    # pulls in the ladder — a module-level import would be circular.
    from repro.core.greedy import _validate_instance, greedy_core
    from repro.core.sampling import draw_sample

    region_ids = np.asarray(region_ids, dtype=np.int64)
    candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
    mandatory_ids = np.asarray(mandatory_ids, dtype=np.int64)
    # Fail fast on contract violations before burning budget on a tier
    # that must reject them anyway.
    _validate_instance(
        dataset, candidate_ids, mandatory_ids, k, theta, strict=False
    )

    attempts: list[tuple[str, str]] = []

    # Tier 1 — anytime exact greedy.
    budget = _fresh_budget(deadline, max_iterations)
    try:
        with tracer.span("ladder.exact"):
            result = greedy_core(
                dataset,
                region_ids=region_ids,
                candidate_ids=candidate_ids,
                mandatory_ids=mandatory_ids,
                k=k,
                theta=theta,
                aggregation=aggregation,
                initial_bounds=initial_bounds,
                lazy=lazy,
                init_mode=init_mode,
                budget=budget,
                fault_injector=fault_injector,
                metrics=metrics,
                batch_size=batch_size,
                pool=pool,
                tracer=tracer,
            )
    except InfeasibleSelection:
        raise
    except Exception as exc:
        if metrics is not None:
            metrics.incr("ladder.tier_failures")
        attempts.append((Tier.EXACT.value, _describe(exc)))
    else:
        if not (result.degraded and result.stats.get("short_selection")):
            return _finalize(result, Tier.EXACT, attempts, metrics)
        attempts.append(
            (Tier.EXACT.value, result.stats.get("budget_exhausted") or "short")
        )
    tracer.event(
        "ladder.degrade", tier=attempts[-1][0], reason=attempts[-1][1]
    )

    # Tier 2 — SaSS-sampled greedy, if there is any time left to spend.
    if deadline is not None and deadline.expired():
        attempts.append((Tier.SAMPLED.value, "skipped:deadline"))
    else:
        rng = rng if rng is not None else np.random.default_rng(0)
        sample_ids = draw_sample(region_ids, epsilon, delta, rng)
        budget = _fresh_budget(deadline, max_iterations)
        try:
            with tracer.span("ladder.sampled", sample=int(len(sample_ids))):
                result = greedy_core(
                    dataset,
                    region_ids=sample_ids,
                    # Picks must still come from G; score is over the sample.
                    candidate_ids=np.intersect1d(sample_ids, candidate_ids),
                    mandatory_ids=mandatory_ids,
                    k=k,
                    theta=theta,
                    aggregation=aggregation,
                    budget=budget,
                    fault_injector=fault_injector,
                    metrics=metrics,
                    batch_size=batch_size,
                    pool=pool,
                    tracer=tracer,
                )
        except InfeasibleSelection:
            raise
        except Exception as exc:
            if metrics is not None:
                metrics.incr("ladder.tier_failures")
            attempts.append((Tier.SAMPLED.value, _describe(exc)))
        else:
            if not (result.degraded and result.stats.get("short_selection")):
                result.stats["sample_size"] = int(len(sample_ids))
                return _finalize(result, Tier.SAMPLED, attempts, metrics)
            attempts.append(
                (
                    Tier.SAMPLED.value,
                    result.stats.get("budget_exhausted") or "short",
                )
            )
    tracer.event(
        "ladder.degrade", tier=attempts[-1][0], reason=attempts[-1][1]
    )

    # Tier 3 — top-weight fill.  Unconditional and unbreakable.
    with tracer.span("ladder.topweight"):
        result = _topweight_fill(
            dataset, region_ids, candidate_ids, mandatory_ids, k, theta
        )
    return _finalize(result, Tier.TOPWEIGHT, attempts, metrics)


def _fresh_budget(
    deadline: Deadline | None, max_iterations: int | None
) -> Budget | None:
    if deadline is None and max_iterations is None:
        return None
    return Budget(deadline=deadline, max_iterations=max_iterations)


def _describe(exc: Exception) -> str:
    return f"fault:{exc.__class__.__name__}"


def _finalize(
    result: SelectionResult,
    tier: Tier,
    attempts: list[tuple[str, str]],
    metrics: MetricsRegistry | None = None,
) -> SelectionResult:
    result.stats["tier"] = tier.value
    result.stats["ladder_attempts"] = attempts
    if tier is not Tier.EXACT:
        result.degraded = True
    if metrics is not None:
        metrics.incr(f"ladder.tier.{tier.value}")
    return result


def _topweight_fill(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    candidate_ids: np.ndarray,
    mandatory_ids: np.ndarray,
    k: int,
    theta: float,
) -> SelectionResult:
    """Mandatory set + highest-weight ``θ``-apart candidates.

    The last-resort tier: touches only coordinate/weight arrays, so it
    survives index and similarity faults and runs in
    ``O(|G| log |G| + |G| · k)`` worst case (the scan stops as soon as
    ``k`` objects are placed).
    """
    started = time.perf_counter()
    selected = [int(i) for i in mandatory_ids]
    sel_xs = [float(x) for x in dataset.xs[mandatory_ids]]
    sel_ys = [float(y) for y in dataset.ys[mandatory_ids]]

    if len(candidate_ids) and len(selected) < k:
        order = candidate_ids[
            np.argsort(-dataset.weights[candidate_ids], kind="stable")
        ]
        for obj in order:
            if len(selected) >= k:
                break
            x = float(dataset.xs[obj])
            y = float(dataset.ys[obj])
            if theta > 0.0 and sel_xs:
                dists = np.hypot(
                    np.asarray(sel_xs) - x, np.asarray(sel_ys) - y
                )
                if float(dists.min()) < theta:
                    continue
            selected.append(int(obj))
            sel_xs.append(x)
            sel_ys.append(y)

    selected_arr = np.asarray(selected, dtype=np.int64)
    return SelectionResult(
        selected=selected_arr,
        score=0.0,
        region_ids=np.asarray(region_ids, dtype=np.int64),
        degraded=True,
        stats={
            "elapsed_s": time.perf_counter() - started,
            "population": int(len(region_ids)),
            "candidates": int(len(candidate_ids)),
            "mandatory": int(len(mandatory_ids)),
            "budget_exhausted": None,
            "short_selection": len(selected_arr) < k,
            "score_evaluated": False,
        },
    )
