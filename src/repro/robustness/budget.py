"""Deadline and budget primitives for anytime selection.

A :class:`Deadline` is a fixed point on the monotonic clock
(``time.perf_counter`` — wall-clock adjustments must not move response
deadlines).  A :class:`Budget` pairs an optional deadline with an
optional iteration cap and carries the *exhaustion state* of one unit
of work: the greedy loop asks it cheaply and repeatedly, and once a
budget reports exhausted it stays exhausted (so every caller observes
one consistent verdict).

Tiers of a degradation ladder share a single ``Deadline`` (the user is
waiting on one response) but get a fresh ``Budget`` each (iteration
counts restart per attempt).
"""

from __future__ import annotations

import math
import time

from repro.robustness.errors import DeadlineExceeded

_CLOCK = time.perf_counter


class Deadline:
    """A point in monotonic time by which work must finish."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """Deadline ``seconds`` from now (must be positive)."""
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        return cls(_CLOCK() + seconds)

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(math.inf)

    def remaining(self) -> float:
        """Seconds left (negative once expired, ``inf`` for never)."""
        return self.expires_at - _CLOCK()

    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return _CLOCK() >= self.expires_at

    def check(self, context: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired():
            raise DeadlineExceeded(f"deadline expired before {context}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.6f}s)"


class Budget:
    """Wall-clock + iteration budget for one selection attempt.

    Parameters
    ----------
    deadline:
        Optional :class:`Deadline`; work stops when it expires.
    max_iterations:
        Optional cap on greedy iterations (picks after the mandatory
        seed).
    check_stride:
        The clock is only read every ``check_stride`` calls to
        :meth:`tick` so that per-candidate bookkeeping (heap
        initialization) pays amortized nanoseconds, not a syscall per
        object.  :meth:`exhausted` — called once per greedy iteration,
        where a gain evaluation dwarfs a clock read — always checks.
    """

    __slots__ = ("deadline", "max_iterations", "check_stride",
                 "_ticks", "_reason")

    def __init__(
        self,
        deadline: Deadline | None = None,
        max_iterations: int | None = None,
        check_stride: int = 16,
    ):
        if max_iterations is not None and max_iterations < 0:
            raise ValueError(
                f"max_iterations must be non-negative, got {max_iterations}"
            )
        if check_stride < 1:
            raise ValueError(f"check_stride must be >= 1, got {check_stride}")
        self.deadline = deadline
        self.max_iterations = max_iterations
        self.check_stride = check_stride
        self._ticks = 0
        self._reason: str | None = None

    @classmethod
    def from_seconds(
        cls, seconds: float, max_iterations: int | None = None
    ) -> "Budget":
        """Budget whose deadline is ``seconds`` from now."""
        return cls(Deadline.after(seconds), max_iterations=max_iterations)

    @property
    def exhausted_reason(self) -> str | None:
        """Why the budget ran out (``None`` while it has not)."""
        return self._reason

    def tick(self) -> bool:
        """Record one cheap unit of work; ``True`` while budget remains.

        Intended for tight per-candidate loops: the deadline is only
        consulted every ``check_stride`` ticks.
        """
        if self._reason is not None:
            return False
        self._ticks += 1
        if (
            self.deadline is not None
            and self._ticks % self.check_stride == 0
            and self.deadline.expired()
        ):
            self._reason = "deadline"
            return False
        return True

    def exhausted(self, iteration: int | None = None) -> str | None:
        """Full check (clock + iteration cap); returns the reason or ``None``.

        Intended once per greedy iteration, where the surrounding work
        amortizes the clock read.
        """
        if self._reason is not None:
            return self._reason
        if (
            self.max_iterations is not None
            and iteration is not None
            and iteration >= self.max_iterations
        ):
            self._reason = "max_iterations"
        elif self.deadline is not None and self.deadline.expired():
            self._reason = "deadline"
        return self._reason
