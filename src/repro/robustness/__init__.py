"""Robustness subsystem: deadlines, degradation, typed failures.

The paper's systems argument (Sec. 5, Fig. 13–14) is that selection
must land while the user is still looking at the map.  This package
turns that from an aspiration into machinery:

* :class:`Deadline` / :class:`Budget` — wall-clock + iteration budgets
  that make :func:`~repro.core.greedy.greedy_core` an *anytime*
  algorithm (partial ``θ``-feasible prefix on expiry, never a block).
* :func:`select_with_ladder` / :class:`Tier` — the degradation ladder
  (exact → sampled → top-weight) behind
  :class:`~repro.core.session.MapSession`.
* :class:`RobustnessError` and friends — the typed error taxonomy at
  the session boundary.
* :class:`CircuitBreaker` — keeps a failing prefetch pipeline off the
  response path.
* :class:`FaultInjector` — named injection points
  (``index.query``, ``similarity.eval``, ``prefetch.compute``) used by
  the test suite to prove every degradation transition.

See ``docs/ROBUSTNESS.md`` for the full model.
"""

from repro.robustness.breaker import CircuitBreaker
from repro.robustness.budget import Budget, Deadline
from repro.robustness.errors import (
    CircuitOpen,
    DeadlineExceeded,
    FaultInjected,
    InfeasibleSelection,
    InvalidNavigation,
    OverloadShed,
    PrefetchUnavailable,
    RetryBudgetExhausted,
    RobustnessError,
    ServiceClosed,
    SessionLimitExceeded,
    SessionNotStarted,
    UnknownSession,
)
from repro.robustness.faults import (
    ALL_POINTS,
    INDEX_QUERY,
    PREFETCH_COMPUTE,
    SERVICE_ADMIT,
    SERVICE_HANDLE,
    SERVICE_POINTS,
    SIMILARITY_EVAL,
    STANDARD_POINTS,
    FaultInjector,
    FaultRule,
)
from repro.robustness.ladder import Tier, select_with_ladder

__all__ = [
    "ALL_POINTS",
    "Budget",
    "CircuitBreaker",
    "CircuitOpen",
    "Deadline",
    "DeadlineExceeded",
    "FaultInjected",
    "FaultInjector",
    "FaultRule",
    "INDEX_QUERY",
    "InfeasibleSelection",
    "InvalidNavigation",
    "OverloadShed",
    "PREFETCH_COMPUTE",
    "PrefetchUnavailable",
    "RetryBudgetExhausted",
    "RobustnessError",
    "SERVICE_ADMIT",
    "SERVICE_HANDLE",
    "SERVICE_POINTS",
    "SIMILARITY_EVAL",
    "STANDARD_POINTS",
    "ServiceClosed",
    "SessionLimitExceeded",
    "SessionNotStarted",
    "Tier",
    "UnknownSession",
    "select_with_ladder",
]
