"""Fault injection for the selection stack.

A :class:`FaultInjector` owns a set of *named injection points* — the
places where the real system can actually fail — and fires configurable
synthetic failures (exceptions and/or added latency) when the
instrumented code passes through them.  Production code calls
:meth:`FaultInjector.check` at each point; with no rule armed the call
is a dictionary miss, so leaving the hooks wired in costs nothing.

The standard points mirror the hot path's external dependencies:

* ``index.query`` — spatial-index region/radius lookups;
* ``similarity.eval`` — marginal-gain / similarity kernel evaluations;
* ``prefetch.compute`` — the Sec. 5.2 background precomputation;
* ``service.admit`` — the service's admission decision (before any
  queueing or session access);
* ``service.handle`` — per-attempt request handling inside the
  service's retry loop (after admission, before the session call).

Randomness is owned by the injector (seeded generator), so fault
schedules are reproducible in tests.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.robustness.errors import FaultInjected

# Standard injection point names (any string is accepted; these are the
# ones wired through the library).
INDEX_QUERY = "index.query"
SIMILARITY_EVAL = "similarity.eval"
PREFETCH_COMPUTE = "prefetch.compute"
SERVICE_ADMIT = "service.admit"
SERVICE_HANDLE = "service.handle"

#: Points traversed by a single :class:`~repro.core.session.MapSession`
#: (every one of these is exercised by any navigation).
STANDARD_POINTS = (
    INDEX_QUERY,
    SIMILARITY_EVAL,
    PREFETCH_COMPUTE,
)

#: Points traversed only by the :mod:`repro.service` request path.
SERVICE_POINTS = (
    SERVICE_ADMIT,
    SERVICE_HANDLE,
)

#: Every wired injection point (see the table in docs/ROBUSTNESS.md).
ALL_POINTS = STANDARD_POINTS + SERVICE_POINTS


class _DefaultError:
    """Sentinel: raise :class:`FaultInjected` carrying the point name."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<FaultInjected(point)>"


INJECTED = _DefaultError()


@dataclass
class FaultRule:
    """How one injection point misbehaves.

    Attributes
    ----------
    probability:
        Chance in ``[0, 1]`` that a traversal of the point fires.
    latency_s:
        Synthetic delay added on every fire *before* the error (models
        slow dependencies; combine with ``error=None`` for a
        slow-but-successful dependency).
    error:
        Zero-arg callable producing the exception to raise, or ``None``
        to fire latency only.  Defaults to raising
        :class:`FaultInjected` tagged with the point name.
    max_fires:
        Stop firing after this many fires (``None`` = unlimited) —
        models transient faults that heal.
    """

    probability: float = 1.0
    latency_s: float = 0.0
    error: Callable[[], BaseException] | None = INJECTED  # type: ignore[assignment]
    max_fires: int | None = None
    fires: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {self.max_fires}")


class FaultInjector:
    """Registry of armed :class:`FaultRule`\\ s keyed by point name."""

    def __init__(self, seed: int = 0):
        self._rules: dict[str, FaultRule] = {}
        self._rng = np.random.default_rng(seed)
        self.attempts: dict[str, int] = {}

    def arm(
        self,
        point: str,
        probability: float = 1.0,
        latency_s: float = 0.0,
        error: Callable[[], BaseException] | None = INJECTED,  # type: ignore[assignment]
        max_fires: int | None = None,
    ) -> "FaultInjector":
        """Arm ``point`` with a rule; returns ``self`` for chaining."""
        rule = FaultRule(
            probability=probability,
            latency_s=latency_s,
            error=error,
            max_fires=max_fires,
        )
        self._rules[point] = rule
        return self

    def disarm(self, point: str) -> None:
        """Remove the rule for ``point`` (no-op when absent)."""
        self._rules.pop(point, None)

    def disarm_all(self) -> None:
        """Remove every rule."""
        self._rules.clear()

    def rule(self, point: str) -> FaultRule | None:
        """The armed rule for ``point``, if any."""
        return self._rules.get(point)

    def fires(self, point: str) -> int:
        """How many times ``point`` has fired so far."""
        rule = self._rules.get(point)
        return rule.fires if rule is not None else 0

    def _draw(self, point: str) -> FaultRule | None:
        """Bookkeeping + probability draw; the fired rule or ``None``."""
        rule = self._rules.get(point)
        if rule is None:
            return None
        self.attempts[point] = self.attempts.get(point, 0) + 1
        if rule.max_fires is not None and rule.fires >= rule.max_fires:
            return None
        if rule.probability < 1.0 and self._rng.random() >= rule.probability:
            return None
        rule.fires += 1
        return rule

    def _raise_fired(self, rule: FaultRule, point: str) -> None:
        if rule.error is INJECTED:
            raise FaultInjected(point)
        if rule.error is not None:
            raise rule.error()

    def check(self, point: str) -> None:
        """Traverse ``point``: maybe sleep, maybe raise.

        Call this from instrumented code.  With no rule armed this is a
        dict lookup; with a rule, the injector draws against the rule's
        probability and, on a fire, applies latency and raises the
        configured error.  ``FaultInjected`` errors carry the point
        name.

        This variant sleeps with ``time.sleep`` and must only run off
        the event loop (worker threads, ``asyncio.to_thread`` hops);
        async callers use :meth:`acheck`.
        """
        rule = self._draw(point)
        if rule is None:
            return
        if rule.latency_s > 0.0:
            time.sleep(rule.latency_s)
        self._raise_fired(rule, point)

    async def acheck(self, point: str) -> None:
        """Async :meth:`check`: identical semantics, loop-safe latency.

        Injected latency is applied with ``await asyncio.sleep`` so an
        armed rule delays only the traversing request instead of
        stalling every coroutine on the event loop.
        """
        rule = self._draw(point)
        if rule is None:
            return
        if rule.latency_s > 0.0:
            await asyncio.sleep(rule.latency_s)
        self._raise_fired(rule, point)
