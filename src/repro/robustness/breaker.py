"""A small circuit breaker for background dependencies.

The prefetch pipeline (Sec. 5.2) is an accelerator: when it fails the
correct move is to *stop calling it for a while* and serve operations
cold, not to retry it on every navigation and risk dragging its latency
or errors onto the response path.  :class:`CircuitBreaker` implements
the standard three-state automaton:

* **closed** — calls pass through; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures, calls
  are refused (:class:`CircuitOpen`) for ``reset_after_s`` seconds;
* **half-open** — after the cool-down exactly **one** probe call is
  let through; success closes the breaker, failure re-opens it.
  Concurrent callers that arrive while the probe is in flight are
  rejected with :class:`CircuitOpen` until the probe resolves.

The breaker is thread-safe: :class:`~repro.core.session.MapSession`
fans prefetch kinds out concurrently through one shared breaker, so
state transitions and counters are serialized under a lock, and the
half-open probe is guarded by a single-admission ticket
(:meth:`try_acquire`) rather than a racy state read.

The clock is injectable so tests can drive state transitions without
sleeping; it defaults to the monotonic ``time.perf_counter``.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from typing import TypeVar

from repro.robustness.errors import CircuitOpen

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a single cool-down probe."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_after_s: float = 30.0,
        clock: Callable[[], float] = time.perf_counter,
        name: str = "breaker",
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after_s < 0:
            raise ValueError(
                f"reset_after_s must be >= 0, got {reset_after_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        self.failures = 0  # lifetime counters, for observability
        self.successes = 0
        self.rejections = 0

    def _advance_locked(self) -> None:
        """Advance ``open → half_open`` on cool-down (lock held)."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_after_s
        ):
            self._state = HALF_OPEN
            self._probe_in_flight = False

    @property
    def state(self) -> str:
        """Current state, advancing ``open → half_open`` on cool-down."""
        with self._lock:
            self._advance_locked()
            return self._state

    def allows(self) -> bool:
        """Whether a call would currently be admitted.

        Read-only peek: it does **not** reserve the half-open probe
        ticket, so between this returning ``True`` and the actual call
        another thread may take the probe.  Callers that intend to
        call must use :meth:`try_acquire` (or :meth:`call`, which
        does) for an atomic admission decision.
        """
        with self._lock:
            self._advance_locked()
            if self._state == OPEN:
                return False
            if self._state == HALF_OPEN and self._probe_in_flight:
                return False
            return True

    def try_acquire(self) -> bool:
        """Atomically decide admission, reserving the half-open probe.

        Returns ``True`` when the caller may proceed (and, in
        half-open, holds *the* probe ticket — every other caller is
        refused until the probe resolves via :meth:`record_success` or
        :meth:`record_failure`).  Returns ``False`` after counting a
        rejection otherwise.  Admitted callers **must** report their
        outcome through exactly one ``record_*`` call.
        """
        with self._lock:
            self._advance_locked()
            if self._state == OPEN:
                self.rejections += 1
                return False
            if self._state == HALF_OPEN:
                if self._probe_in_flight:
                    self.rejections += 1
                    return False
                self._probe_in_flight = True
            return True

    def record_success(self) -> None:
        """Note a successful call (closes a half-open breaker)."""
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            self._state = CLOSED
            self._probe_in_flight = False

    def record_failure(self) -> None:
        """Note a failed call (may trip the breaker open)."""
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            if (
                self._state == HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
            self._probe_in_flight = False

    def call(self, fn: Callable[[], T]) -> T:
        """Run ``fn`` through the breaker.

        Raises :class:`CircuitOpen` without calling ``fn`` while open
        (or while another caller holds the half-open probe); otherwise
        records the outcome and propagates ``fn``'s result or
        exception.
        """
        if not self.try_acquire():
            raise CircuitOpen(
                f"{self.name} is open "
                f"({self._consecutive_failures} consecutive failures)"
            )
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
