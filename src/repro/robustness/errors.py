"""Typed error taxonomy for the selection stack.

The paper's premise is interactive latency: a response that errors (or
never arrives) is worse than a degraded one.  The session boundary
therefore needs errors a caller can *route on* — "the request itself is
malformed" vs "the system cannot serve it right now" — instead of bare
``ValueError``s that conflate both.

Every class multiply-inherits from the builtin it used to be raised as
(``ValueError``, ``RuntimeError``, ``TimeoutError``), so existing
``except ValueError`` call sites keep working while new code can catch
the precise type or the :class:`RobustnessError` root.
"""

from __future__ import annotations


class RobustnessError(Exception):
    """Root of the robustness taxonomy.

    Catching this at the session boundary covers every failure the
    degradation machinery may raise or route on.
    """


class InfeasibleSelection(RobustnessError, ValueError):
    """The selection instance cannot be satisfied as specified.

    Raised for contract violations no degradation tier can repair: a
    mandatory set that is not ``θ``-feasible, ``|D| > k``, or — under
    ``strict`` validation — an empty/undersized candidate set.
    """


class DeadlineExceeded(RobustnessError, TimeoutError):
    """A wall-clock deadline expired before the work could start/finish.

    The anytime greedy does *not* raise this — it returns a partial
    prefix — but ladder tiers that would start already-late work, and
    callers using :meth:`repro.robustness.Deadline.check`, do.
    """


class PrefetchUnavailable(RobustnessError, RuntimeError):
    """Prefetched bounds cannot be used (missing, stale, or breaker open).

    Never escapes :class:`~repro.core.session.MapSession`: the
    operation is served cold (exact heap initialization) instead.
    """


class CircuitOpen(RobustnessError, RuntimeError):
    """A circuit breaker is open and refusing calls."""


class InvalidNavigation(RobustnessError, ValueError):
    """A navigation target violates the operation's geometry contract.

    (zoom-in target outside the viewport, disjoint pan, resized pan...)
    """


class SessionNotStarted(RobustnessError, RuntimeError):
    """Navigation was attempted before :meth:`MapSession.start`."""


class FaultInjected(RobustnessError, RuntimeError):
    """Synthetic failure raised by a :class:`FaultInjector` point."""

    def __init__(self, point: str, message: str | None = None):
        self.point = point
        super().__init__(message or f"injected fault at {point!r}")


class OverloadShed(RobustnessError, RuntimeError):
    """A request was rejected by admission control (load shedding).

    Raised *before* any session state is touched, so a shed request is
    always safe to retry elsewhere/later.  ``reason`` is machine-
    routable: ``"queue_full"``, ``"queue_timeout"``, ``"deadline"``,
    ``"session_limit"``, or ``"closed"``.
    """

    def __init__(self, reason: str, message: str | None = None):
        self.reason = reason
        super().__init__(message or f"request shed ({reason})")


class SessionLimitExceeded(OverloadShed):
    """The service is at its live-session capacity.

    A shed variant rather than a hard error: the caller can retry once
    TTL eviction has reclaimed capacity.
    """

    def __init__(self, limit: int):
        self.limit = limit
        super().__init__(
            "session_limit", f"session limit reached ({limit} live sessions)"
        )


class UnknownSession(RobustnessError, KeyError):
    """No live session has the requested id (never created, or evicted)."""

    def __init__(self, session_id: str):
        self.session_id = session_id
        super().__init__(f"unknown session {session_id!r}")


class ServiceClosed(RobustnessError, RuntimeError):
    """The service is shutting down and no longer accepts requests."""


class RetryBudgetExhausted(RobustnessError, RuntimeError):
    """The retry-token budget denied another attempt (retry-storm guard)."""
