"""The worker pool: serial / thread / process execution of block tasks.

One :class:`WorkerPool` serves three call shapes:

* :meth:`gain_sweep` — the hot path: evaluate marginal-gain blocks for
  a :class:`~repro.core.scoring.MarginalGainState`, sharded across
  workers, results merged **by block offset** so the sweep is
  bit-identical to a serial loop at any worker count.
* :meth:`run_all` — fan out independent thunks (the prefetcher's three
  navigation kinds, the benchmark harness's query grid) and collect
  ``(result, exception)`` pairs in submission order.
* :meth:`map_ordered` — generic ordered map for anything else.

Backends
--------
``serial``
    Everything runs inline.  This is also the automatic fallback when
    the similarity model is not thread-safe (the memoizing
    :class:`~repro.cache.SimilarityCache` mutates an LRU on reads).
``thread``
    A ``ThreadPoolExecutor``; arrays are shared by reference and the
    numpy kernels release the GIL, so block sweeps overlap on real
    cores.
``process``
    A ``ProcessPoolExecutor``.  The similarity model's feature arrays
    (coordinates, similarity matrices) are exported once per pool into
    ``multiprocessing.shared_memory`` and each worker rebuilds the
    model over zero-copy views (:mod:`repro.parallel.modelspec`).
    Per-sweep state (population ids, weights, the ``best`` vector) is
    shared the same way, so a task pickles only its small candidate
    block.

The pool never reorders results and never mutates shared state from a
worker; counters are applied by the caller after the sweep so metric
totals are deterministic too.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

import numpy as np

from repro.parallel.config import resolve_backend, resolve_workers
from repro.parallel.sharedmem import (
    SharedArrayHandle,
    SharedArrayPack,
    attach_array,
    release_attachments,
)
from repro.trace.tracer import NULL_TRACER

# ----------------------------------------------------------------------
# Process-worker globals (set by the pool initializer / sweep tasks)
# ----------------------------------------------------------------------

_WORKER_MODEL = None  # similarity model rebuilt from shared memory
_WORKER_KERNELS: dict[str, Any] = {}  # region segment name -> rows_kernel
_MODEL_SEGMENTS: set[str] = set()  # segments the model holds views over


def _init_process_worker(kind: str, params: dict, handles: dict) -> None:
    """Pool initializer: rebuild the similarity model over shared views."""
    global _WORKER_MODEL
    from repro.parallel.modelspec import build_model

    arrays = {key: attach_array(handle) for key, handle in handles.items()}
    _WORKER_MODEL = build_model(kind, params, arrays)
    _WORKER_KERNELS.clear()
    _MODEL_SEGMENTS.clear()
    _MODEL_SEGMENTS.update(handle.name for handle in handles.values())


def _process_gain_block(
    region_handle: SharedArrayHandle,
    weights_handle: SharedArrayHandle,
    best_handle: SharedArrayHandle,
    aggregation,
    block: np.ndarray,
) -> np.ndarray:
    """Evaluate one candidate block inside a process worker.

    Uses the same :func:`~repro.core.scoring.weighted_gain_rows`
    reduction as the in-process engine, over the same shared arrays —
    the values are bit-identical to a serial sweep.
    """
    from repro.core.scoring import weighted_gain_rows

    if _WORKER_MODEL is None:  # pragma: no cover - defensive
        raise RuntimeError("process worker initialized without a model")
    kernel = _WORKER_KERNELS.get(region_handle.name)
    if kernel is None:
        # New sweep: drop the old kernel closure first (it holds views
        # over the previous sweep's segments), then the stale mappings
        # themselves — never the model's own segments, which stay
        # mapped for the pool's lifetime.
        _WORKER_KERNELS.clear()
        region_ids = attach_array(region_handle)
        release_attachments(
            keep=_MODEL_SEGMENTS
            | {region_handle.name, weights_handle.name, best_handle.name}
        )
        kernel = _WORKER_MODEL.rows_kernel(region_ids)
        _WORKER_KERNELS[region_handle.name] = kernel
    weights = attach_array(weights_handle)
    best = attach_array(best_handle)
    sims = kernel(block)
    return weighted_gain_rows(sims, best, weights, aggregation)


class WorkerPool:
    """Deterministic block-parallel executor for the selection stack.

    Parameters
    ----------
    workers:
        Worker count, ``0``/``None`` for serial, ``"auto"`` for the
        host CPU count.
    backend:
        ``"serial"`` / ``"thread"`` / ``"process"`` / ``"auto"``; see
        :func:`~repro.parallel.resolve_backend` for the fallback rules.
    similarity:
        The similarity model the pool will evaluate through — needed
        to decide thread-safety and process-backend support, and to
        export feature arrays for process workers.
    metrics:
        Optional :class:`~repro.metrics.MetricsRegistry`; the pool
        counts ``parallel.sweeps`` / ``parallel.blocks`` /
        ``parallel.tasks`` / ``parallel.fanouts``.
    tracer:
        Optional :class:`~repro.trace.Tracer`.  Gain sweeps get a
        ``parallel.gain_sweep`` span; :meth:`run_all` wraps every
        dispatched thunk in a ``parallel.task`` span parented to the
        *submitting* context's span, so work running on pool threads
        stays attached to the navigation that spawned it.
    """

    def __init__(
        self,
        workers: int | str | None = "auto",
        backend: str = "auto",
        similarity=None,
        metrics=None,
        tracer=None,
    ):
        self.workers = resolve_workers(workers)
        self.backend = resolve_backend(backend, self.workers, similarity)
        self.similarity = similarity
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._threads: ThreadPoolExecutor | None = None
        self._processes: ProcessPoolExecutor | None = None
        self._model_pack: SharedArrayPack | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def concurrent(self) -> bool:
        """Whether the pool actually runs anything off-thread."""
        return self.backend != "serial" and self.workers > 0

    def close(self) -> None:
        """Shut down executors and release shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        if self._processes is not None:
            self._processes.shutdown(wait=True)
            self._processes = None
        if self._model_pack is not None:
            self._model_pack.close()
            self._model_pack = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort safety net
        try:
            self.close()
        # repro-lint: disable=RL005 -- interpreter-teardown close; no registry is safely reachable here
        except Exception:  # pragma: no cover
            pass

    def _incr(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.incr(name, amount)

    def _thread_executor(self) -> ThreadPoolExecutor:
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-pool"
            )
        return self._threads

    def _process_executor(self) -> ProcessPoolExecutor:
        if self._processes is None:
            from repro.parallel.modelspec import model_spec

            spec = model_spec(self.similarity)
            if spec is None:
                raise RuntimeError(
                    "process backend requires a similarity model with a "
                    "process_spec()"
                )
            kind, params, arrays = spec
            self._model_pack = SharedArrayPack(arrays)
            self._processes = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_process_worker,
                initargs=(kind, params, self._model_pack.handles),
            )
        return self._processes

    # ------------------------------------------------------------------
    # Execution surface
    # ------------------------------------------------------------------

    def gain_sweep(
        self, state, blocks: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Evaluate marginal-gain blocks; results aligned with ``blocks``.

        ``state`` is a :class:`~repro.core.scoring.MarginalGainState`.
        Counter bookkeeping (gain evaluations, kernel rows/calls) is
        applied here, once, after all blocks complete — identical
        totals at any worker count.
        """
        blocks = [np.asarray(b, dtype=np.int64) for b in blocks]
        self._incr("parallel.sweeps")
        self._incr("parallel.blocks", len(blocks))
        if not blocks:
            return []
        with self.tracer.span(
            "parallel.gain_sweep", blocks=len(blocks), backend=self.backend
        ):
            if self.backend == "process" and len(blocks) > 1:
                results = self._gain_sweep_processes(state, blocks)
            elif self.backend == "thread" and len(blocks) > 1:
                state.batch_kernel()  # build once, outside the thread race
                executor = self._thread_executor()
                self._incr("parallel.tasks", len(blocks))
                results = list(
                    executor.map(
                        lambda block: state.batch_gains(block, count=False),
                        blocks,
                    )
                )
            else:
                results = [
                    state.batch_gains(block, count=False) for block in blocks
                ]
        state.note_batches(
            rows=sum(len(b) for b in blocks), calls=len(blocks)
        )
        return results

    def _gain_sweep_processes(
        self, state, blocks: list[np.ndarray]
    ) -> list[np.ndarray]:
        executor = self._process_executor()
        with SharedArrayPack(
            {
                "region_ids": state.region_ids,
                "weights": state.weights,
                "best": state.best_view(),
            }
        ) as sweep_pack:
            handles = sweep_pack.handles
            self._incr("parallel.tasks", len(blocks))
            futures = [
                executor.submit(
                    _process_gain_block,
                    handles["region_ids"],
                    handles["weights"],
                    handles["best"],
                    state.aggregation,
                    block,
                )
                for block in blocks
            ]
            # Collect in submission order — the deterministic merge.
            return [future.result() for future in futures]

    def run_all(
        self, thunks: Sequence[Callable[[], Any]]
    ) -> list[tuple[Any, Exception | None]]:
        """Run thunks (concurrently when possible); ordered outcomes.

        Returns one ``(result, exception)`` pair per thunk: exactly one
        of the two is ``None``.  Used for the prefetcher's independent
        navigation kinds and the benchmark harness fan-out; thunks must
        not share mutable state unless they synchronize it themselves.
        """
        self._incr("parallel.fanouts")
        if not self.concurrent or len(thunks) <= 1:
            outcomes: list[tuple[Any, Exception | None]] = []
            for thunk in thunks:
                try:
                    outcomes.append((thunk(), None))
                except Exception as exc:
                    self._incr("parallel.task_failures")
                    outcomes.append((None, exc))
            return outcomes
        executor = self._thread_executor()
        self._incr("parallel.tasks", len(thunks))
        # Pool threads do not inherit the submitting context, so each
        # task carries the submitter's current span as explicit parent
        # — worker spans stay attached to the right navigation tree.
        parent = self.tracer.current()

        def traced(thunk: Callable[[], Any], index: int):
            def run():
                with self.tracer.span(
                    "parallel.task", parent=parent, index=index
                ):
                    return thunk()
            return run

        futures: list[Future] = [
            executor.submit(traced(thunk, i))
            for i, thunk in enumerate(thunks)
        ]
        outcomes = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except Exception as exc:
                self._incr("parallel.task_failures")
                outcomes.append((None, exc))
        return outcomes

    def map_ordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        """Ordered map of ``fn`` over ``items`` (threads when possible)."""
        if not self.concurrent or len(items) <= 1:
            return [fn(item) for item in items]
        executor = self._thread_executor()
        self._incr("parallel.tasks", len(items))
        return list(executor.map(fn, items))
