"""The worker pool: serial / thread / process execution of block tasks.

One :class:`WorkerPool` serves three call shapes:

* :meth:`gain_sweep` — the hot path: evaluate marginal-gain blocks for
  a :class:`~repro.core.scoring.MarginalGainState`, sharded across
  workers, results merged **by block offset** so the sweep is
  bit-identical to a serial loop at any worker count.
* :meth:`run_all` — fan out independent thunks (the prefetcher's three
  navigation kinds, the benchmark harness's query grid) and collect
  ``(result, exception)`` pairs in submission order.
* :meth:`map_ordered` — generic ordered map for anything else.

Backends
--------
``serial``
    Everything runs inline.  This is also the automatic fallback when
    the similarity model is not thread-safe (the memoizing
    :class:`~repro.cache.SimilarityCache` mutates an LRU on reads).
``thread``
    A ``ThreadPoolExecutor``; arrays are shared by reference and the
    numpy kernels release the GIL, so block sweeps overlap on real
    cores.
``process``
    A ``ProcessPoolExecutor``.  The similarity model's feature arrays
    (coordinates, similarity matrices) are exported once per pool into
    ``multiprocessing.shared_memory`` and each worker rebuilds the
    model over zero-copy views (:mod:`repro.parallel.modelspec`).
    Per-sweep state (population ids, weights, the ``best`` vector) is
    shared the same way, so a task pickles only its small candidate
    blocks.

Sweeps are dispatched as **coarse shards**: the caller's batch-size
blocks are grouped into at most ``workers * SHARDS_PER_WORKER``
contiguous tasks (:func:`~repro.parallel.config.group_blocks`), and a
sweep whose estimated work falls below
:data:`~repro.parallel.config.SERIAL_SWEEP_FLOOR` skips the pool
entirely (:func:`~repro.parallel.config.plan_shards`).  Executors and
shared-memory model exports are built once per pool — lazily on first
use or eagerly via :meth:`WorkerPool.warm` — and reused by every
subsequent sweep.

The pool never reorders results and never mutates shared state from a
worker; counters are applied by the caller after the sweep so metric
totals are deterministic too.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any

import numpy as np

from repro.parallel.config import (
    group_blocks,
    plan_shards,
    resolve_backend,
    resolve_workers,
)
from repro.parallel.sharedmem import (
    SharedArrayHandle,
    SharedArrayPack,
    attach_array,
    release_attachments,
)
from repro.trace.tracer import NULL_TRACER

# ----------------------------------------------------------------------
# Process-worker globals (set by the pool initializer / sweep tasks)
# ----------------------------------------------------------------------

_WORKER_MODEL = None  # similarity model rebuilt from shared memory
_WORKER_KERNELS: dict[str, Any] = {}  # region segment name -> rows_kernel
_MODEL_SEGMENTS: set[str] = set()  # segments the model holds views over


def _init_process_worker(kind: str, params: dict, handles: dict) -> None:
    """Pool initializer: rebuild the similarity model over shared views."""
    global _WORKER_MODEL
    from repro.parallel.modelspec import build_model

    arrays = {key: attach_array(handle) for key, handle in handles.items()}
    _WORKER_MODEL = build_model(kind, params, arrays)
    _WORKER_KERNELS.clear()
    _MODEL_SEGMENTS.clear()
    _MODEL_SEGMENTS.update(handle.name for handle in handles.values())


def _warm_noop() -> None:
    """No-op task submitted by :meth:`WorkerPool.warm` to spawn workers."""
    return None


def _process_gain_blocks(
    region_handle: SharedArrayHandle,
    weights_handle: SharedArrayHandle,
    best_handle: SharedArrayHandle,
    aggregation,
    blocks: list[np.ndarray],
) -> list[np.ndarray]:
    """Evaluate a group of candidate blocks inside a process worker.

    Blocks are evaluated one at a time at the caller's granularity with
    the same :func:`~repro.core.scoring.gains_kernel` reduction as the
    in-process engine, over the same shared arrays — the values are
    bit-identical to a serial sweep regardless of how the sweep was
    grouped into tasks.
    """
    from repro.core.scoring import gains_kernel

    if _WORKER_MODEL is None:  # pragma: no cover - defensive
        raise RuntimeError("process worker initialized without a model")
    kernel = _WORKER_KERNELS.get(region_handle.name)
    if kernel is None:
        # New sweep: drop the old kernel closure first (it holds views
        # over the previous sweep's segments), then the stale mappings
        # themselves — never the model's own segments, which stay
        # mapped for the pool's lifetime.
        _WORKER_KERNELS.clear()
        region_ids = attach_array(region_handle)
        release_attachments(
            keep=_MODEL_SEGMENTS
            | {region_handle.name, weights_handle.name, best_handle.name}
        )
        kernel = _WORKER_MODEL.rows_kernel(region_ids)
        _WORKER_KERNELS[region_handle.name] = kernel
    weights = attach_array(weights_handle)
    best = attach_array(best_handle)
    return [
        gains_kernel(kernel(block), best, weights, aggregation)
        for block in blocks
    ]


def _process_mass_blocks(
    sources_handle: SharedArrayHandle,
    weights_handle: SharedArrayHandle,
    targets: list[np.ndarray],
) -> list[np.ndarray]:
    """Evaluate weighted-similarity-mass shards inside a process worker.

    The prefetchers' bulk kernel (``weighted_sims_sum``) evaluated over
    shared-memory source ids/weights: each target shard is one row-wise
    reduction, so shard boundaries cannot change any output value and
    the merged sweep is bit-identical to a single in-process call.
    """
    if _WORKER_MODEL is None:  # pragma: no cover - defensive
        raise RuntimeError("process worker initialized without a model")
    # Drop cached kernel closures before unmapping their segments —
    # they hold numpy views over prior sweeps' shared memory.
    _WORKER_KERNELS.clear()
    source_ids = attach_array(sources_handle)
    weights = attach_array(weights_handle)
    release_attachments(
        keep=_MODEL_SEGMENTS | {sources_handle.name, weights_handle.name}
    )
    return [
        np.asarray(
            _WORKER_MODEL.weighted_sims_sum(shard, source_ids, weights),
            dtype=np.float64,
        )
        for shard in targets
    ]


class WorkerPool:
    """Deterministic block-parallel executor for the selection stack.

    Parameters
    ----------
    workers:
        Worker count, ``0``/``None`` for serial, ``"auto"`` for the
        host CPU count.
    backend:
        ``"serial"`` / ``"thread"`` / ``"process"`` / ``"auto"``; see
        :func:`~repro.parallel.resolve_backend` for the fallback rules.
    similarity:
        The similarity model the pool will evaluate through — needed
        to decide thread-safety and process-backend support, and to
        export feature arrays for process workers.
    metrics:
        Optional :class:`~repro.metrics.MetricsRegistry`; the pool
        counts ``parallel.sweeps`` / ``parallel.blocks`` /
        ``parallel.tasks`` / ``parallel.fanouts`` plus the warm-pool
        observability trio: ``parallel.pool_warms`` (explicit
        :meth:`warm` calls), ``parallel.pool_reuse`` (sweeps served by
        an already-live executor), and ``parallel.shard_skipped_serial``
        (sweeps the adaptive shard policy ran inline).
    tracer:
        Optional :class:`~repro.trace.Tracer`.  Gain sweeps get a
        ``parallel.gain_sweep`` span; :meth:`run_all` wraps every
        dispatched thunk in a ``parallel.task`` span parented to the
        *submitting* context's span, so work running on pool threads
        stays attached to the navigation that spawned it.
    """

    def __init__(
        self,
        workers: int | str | None = "auto",
        backend: str = "auto",
        similarity=None,
        metrics=None,
        tracer=None,
    ):
        self.workers = resolve_workers(workers)
        self.backend = resolve_backend(backend, self.workers, similarity)
        self.similarity = similarity
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._threads: ThreadPoolExecutor | None = None
        self._processes: ProcessPoolExecutor | None = None
        self._model_pack: SharedArrayPack | None = None
        self._closed = False
        # Executors are built lazily; the lock makes first-use races
        # safe when one pool is shared across sessions (repro.service).
        self._init_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def concurrent(self) -> bool:
        """Whether the pool actually runs anything off-thread."""
        return self.backend != "serial" and self.workers > 0

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Shut down executors and release shared segments (idempotent)."""
        # Detach under the init lock (so close cannot race a concurrent
        # lazy build), then shut down outside it: worker tasks never
        # take the lock, but shutdown(wait=True) can block for a while.
        with self._init_lock:
            if self._closed:
                return
            self._closed = True
            threads, self._threads = self._threads, None
            processes, self._processes = self._processes, None
            pack, self._model_pack = self._model_pack, None
        if threads is not None:
            threads.shutdown(wait=True)
        if processes is not None:
            processes.shutdown(wait=True)
        if pack is not None:
            pack.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort safety net
        try:
            self.close()
        # repro-lint: disable=RL005 -- interpreter-teardown close; no registry is safely reachable here
        except Exception:  # pragma: no cover
            pass

    def _incr(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.incr(name, amount)

    def _thread_executor(self) -> ThreadPoolExecutor:
        if self._threads is None:
            with self._init_lock:
                if self._threads is None:
                    self._threads = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-pool",
                    )
        return self._threads

    def _process_executor(self) -> ProcessPoolExecutor:
        if self._processes is None:
            with self._init_lock:
                if self._processes is None:
                    from repro.parallel.modelspec import model_spec

                    spec = model_spec(self.similarity)
                    if spec is None:
                        raise RuntimeError(
                            "process backend requires a similarity model "
                            "with a process_spec()"
                        )
                    kind, params, arrays = spec
                    self._model_pack = SharedArrayPack(arrays)
                    self._incr(
                        "parallel.model_pack_bytes",
                        self._model_pack.total_nbytes,
                    )
                    self._processes = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=_init_process_worker,
                        initargs=(kind, params, self._model_pack.handles),
                    )
        return self._processes

    @property
    def warmed(self) -> bool:
        """Whether this pool's executor (and model pack) already exist."""
        return self._threads is not None or self._processes is not None

    def warm(self) -> "WorkerPool":
        """Pre-build the executor and spawn workers ahead of the first sweep.

        Moves the pool's one-time costs — executor construction, the
        shared-memory model export, and worker spawn (plus, on the
        process backend, each worker's model rebuild over shared views)
        — off the first navigation step and into session setup.
        Best-effort and idempotent: thread workers are forced up with a
        barrier task per worker; process workers are nudged up with one
        no-op per worker (the executor spawns on demand, so a fast
        no-op may not reach every worker — the expensive segment export
        and first spawn still happen here).  Serial pools are a no-op.
        Counts ``parallel.pool_warms``.
        """
        if self._closed or not self.concurrent:
            return self
        self._incr("parallel.pool_warms")
        if self.backend == "process":
            executor = self._process_executor()
            futures = [
                executor.submit(_warm_noop) for _ in range(self.workers)
            ]
            for future in futures:
                future.result()
            return self
        executor = self._thread_executor()
        # ThreadPoolExecutor only spawns a thread per submit while no
        # worker is idle; a barrier keeps each warm task occupied so
        # all `workers` threads come up.  The timeout is a safety net —
        # every party is submitted before any is awaited.
        barrier = threading.Barrier(self.workers)
        futures = [
            executor.submit(barrier.wait, 5.0) for _ in range(self.workers)
        ]
        for future in futures:
            try:
                future.result()
            except threading.BrokenBarrierError:  # pragma: no cover
                break  # fewer threads than expected; warm stays best-effort
        return self

    # ------------------------------------------------------------------
    # Execution surface
    # ------------------------------------------------------------------

    def gain_sweep(
        self, state, blocks: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Evaluate marginal-gain blocks; results aligned with ``blocks``.

        ``state`` is a :class:`~repro.core.scoring.MarginalGainState`.
        Counter bookkeeping (gain evaluations, kernel rows/calls) is
        applied here, once, after all blocks complete — identical
        totals at any worker count.
        """
        blocks = [np.asarray(b, dtype=np.int64) for b in blocks]
        self._incr("parallel.sweeps")
        self._incr("parallel.blocks", len(blocks))
        if not blocks:
            return []
        total_rows = sum(len(b) for b in blocks)
        with self.tracer.span(
            "parallel.gain_sweep", blocks=len(blocks), backend=self.backend
        ):
            n_groups = 0
            if self.concurrent and len(blocks) > 1:
                n_groups = plan_shards(
                    total_rows, len(state.region_ids), self.workers
                )
            if n_groups > 1:
                if self.warmed:
                    # The whole point of warm pools: after the first
                    # sweep (or an explicit warm()) every sweep reuses
                    # the live executor and model attachments.
                    self._incr("parallel.pool_reuse")
                groups = group_blocks(blocks, n_groups)
                if self.backend == "process":
                    results = self._gain_sweep_processes(state, groups)
                else:
                    state.batch_kernel()  # build once, outside the race
                    executor = self._thread_executor()
                    self._incr("parallel.tasks", len(groups))
                    results = [
                        gains
                        for group_result in executor.map(
                            lambda group: [
                                state.batch_gains(b, count=False)
                                for b in group
                            ],
                            groups,
                        )
                        for gains in group_result
                    ]
            else:
                if self.concurrent and len(blocks) > 1:
                    # Estimated work under the dispatch floor: the
                    # adaptive policy ran this sweep inline.
                    self._incr("parallel.shard_skipped_serial")
                results = [
                    state.batch_gains(block, count=False) for block in blocks
                ]
        state.note_batches(rows=total_rows, calls=len(blocks))
        return results

    def _gain_sweep_processes(
        self, state, groups: list[list[np.ndarray]]
    ) -> list[np.ndarray]:
        executor = self._process_executor()
        with SharedArrayPack(
            {
                "region_ids": state.region_ids,
                "weights": state.weights,
                "best": state.best_view(),
            }
        ) as sweep_pack:
            handles = sweep_pack.handles
            self._incr("parallel.tasks", len(groups))
            futures = [
                executor.submit(
                    _process_gain_blocks,
                    handles["region_ids"],
                    handles["weights"],
                    handles["best"],
                    state.aggregation,
                    group,
                )
                for group in groups
            ]
            # Collect in submission order — the deterministic merge.
            return [
                gains for future in futures for gains in future.result()
            ]

    def mass_sweep(
        self,
        target_ids: np.ndarray,
        source_ids: np.ndarray,
        source_weights: np.ndarray,
    ) -> np.ndarray:
        """Sharded ``weighted_sims_sum`` — the prefetchers' bulk kernel.

        ``out[t] = Σ_s source_weights[s] · sim(target_ids[t], source_ids[s])``,
        computed across workers in contiguous target shards and merged
        in shard order.  Each output element is an independent row-wise
        reduction, so the merged sweep is bit-identical to one serial
        ``weighted_sims_sum`` call at any worker count.  On the process
        backend the model ships once through its shared-memory
        ``process_spec()`` pack (pool lifetime) and the source ids /
        weights ship once per sweep.
        """
        target_ids = np.asarray(target_ids, dtype=np.int64)
        source_ids = np.asarray(source_ids, dtype=np.int64)
        source_weights = np.asarray(source_weights, dtype=np.float64)
        self._incr("parallel.mass_sweeps")
        if len(target_ids) == 0:
            return np.empty(0, dtype=np.float64)

        def serial() -> np.ndarray:
            return np.asarray(
                self.similarity.weighted_sims_sum(
                    target_ids, source_ids, source_weights
                ),
                dtype=np.float64,
            )

        n_groups = 0
        if self.concurrent:
            n_groups = plan_shards(
                len(target_ids), len(source_ids), self.workers
            )
        if n_groups <= 1:
            if self.concurrent:
                self._incr("parallel.shard_skipped_serial")
            return serial()
        if self.warmed:
            self._incr("parallel.pool_reuse")
        shards = [
            shard
            for shard in np.array_split(target_ids, n_groups)
            if len(shard)
        ]
        with self.tracer.span(
            "parallel.mass_sweep",
            targets=len(target_ids),
            backend=self.backend,
        ):
            if self.backend == "process":
                executor = self._process_executor()
                with SharedArrayPack(
                    {"sources": source_ids, "weights": source_weights}
                ) as sweep_pack:
                    handles = sweep_pack.handles
                    self._incr("parallel.tasks", len(shards))
                    futures = [
                        executor.submit(
                            _process_mass_blocks,
                            handles["sources"],
                            handles["weights"],
                            [shard],
                        )
                        for shard in shards
                    ]
                    # Submission-order merge — deterministic.
                    parts = [
                        part
                        for future in futures
                        for part in future.result()
                    ]
            else:
                executor = self._thread_executor()
                self._incr("parallel.tasks", len(shards))
                parts = list(
                    executor.map(
                        lambda shard: np.asarray(
                            self.similarity.weighted_sims_sum(
                                shard, source_ids, source_weights
                            ),
                            dtype=np.float64,
                        ),
                        shards,
                    )
                )
        return np.concatenate(parts)

    def run_all(
        self, thunks: Sequence[Callable[[], Any]]
    ) -> list[tuple[Any, Exception | None]]:
        """Run thunks (concurrently when possible); ordered outcomes.

        Returns one ``(result, exception)`` pair per thunk: exactly one
        of the two is ``None``.  Used for the prefetcher's independent
        navigation kinds and the benchmark harness fan-out; thunks must
        not share mutable state unless they synchronize it themselves.
        """
        self._incr("parallel.fanouts")
        if not self.concurrent or len(thunks) <= 1:
            outcomes: list[tuple[Any, Exception | None]] = []
            for thunk in thunks:
                try:
                    outcomes.append((thunk(), None))
                except Exception as exc:
                    self._incr("parallel.task_failures")
                    outcomes.append((None, exc))
            return outcomes
        executor = self._thread_executor()
        self._incr("parallel.tasks", len(thunks))
        # Pool threads do not inherit the submitting context, so each
        # task carries the submitter's current span as explicit parent
        # — worker spans stay attached to the right navigation tree.
        parent = self.tracer.current()

        def traced(thunk: Callable[[], Any], index: int):
            def run():
                with self.tracer.span(
                    "parallel.task", parent=parent, index=index
                ):
                    return thunk()
            return run

        futures: list[Future] = [
            executor.submit(traced(thunk, i))
            for i, thunk in enumerate(thunks)
        ]
        outcomes = []
        for future in futures:
            try:
                outcomes.append((future.result(), None))
            except Exception as exc:
                self._incr("parallel.task_failures")
                outcomes.append((None, exc))
        return outcomes

    def map_ordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> list[Any]:
        """Ordered map of ``fn`` over ``items`` (threads when possible)."""
        if not self.concurrent or len(items) <= 1:
            return [fn(item) for item in items]
        executor = self._thread_executor()
        self._incr("parallel.tasks", len(items))
        return list(executor.map(fn, items))
