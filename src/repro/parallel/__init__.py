"""Shared-memory parallel execution engine for the selection stack.

The greedy engine's dominant cost is first-iteration gain computation —
an embarrassingly parallel sweep over candidate blocks — and the ISOS
prefetcher precomputes bounds for three independent navigation kinds.
This package supplies the machinery both use:

* :class:`WorkerPool` — a backend-agnostic worker pool (``serial`` /
  ``thread`` / ``process``) with ordered block mapping.  The process
  backend ships the dataset's coordinate/weight/feature arrays through
  ``multiprocessing.shared_memory`` (zero-copy views in every worker)
  and rebuilds the similarity model from its
  :meth:`~repro.similarity.SimilarityModel.process_spec`.
* :func:`resolve_workers` / :func:`resolve_backend` — ``"auto"``
  resolution against the host CPU count and the model's capabilities.
* :func:`iter_blocks` — deterministic candidate sharding.
* :class:`SharedArrayPack` — the shared-memory export/attach helpers.

Determinism contract: every parallel path in the library computes the
exact same floating-point values as its sequential twin (same kernels,
same per-row reductions) and merges block results by *block offset*,
never by completion order — selections are bit-identical at any worker
count.  ``docs/PERFORMANCE.md`` spells out the guarantees.
"""

from repro.parallel.config import (
    DEFAULT_BATCH_SIZE,
    SERIAL_SWEEP_FLOOR,
    SHARDS_PER_WORKER,
    group_blocks,
    iter_blocks,
    plan_shards,
    resolve_backend,
    resolve_workers,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.sharedmem import SharedArrayHandle, SharedArrayPack

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "SERIAL_SWEEP_FLOOR",
    "SHARDS_PER_WORKER",
    "SharedArrayHandle",
    "SharedArrayPack",
    "WorkerPool",
    "group_blocks",
    "iter_blocks",
    "plan_shards",
    "resolve_backend",
    "resolve_workers",
]
