"""Zero-copy array sharing through ``multiprocessing.shared_memory``.

The process backend must not pickle the dataset's coordinate, weight,
or feature arrays into every task — a 600k-object sweep would ship
megabytes per block.  Instead the parent exports each array once into a
named shared-memory segment (:class:`SharedArrayPack`); tasks carry
only the tiny :class:`SharedArrayHandle` descriptors, and workers map
the segments read-only and cache the attachment for the sweep's
lifetime.

Ownership protocol: the parent that creates a pack must
:meth:`~SharedArrayPack.close` it (which unlinks the segments) once no
further tasks will reference it.  Workers attach with
:func:`attach_array`; attached mappings stay valid after the parent
unlinks (POSIX semantics), and the attach helper deregisters the
segment from the worker's resource tracker so the tracker does not try
to unlink it a second time at worker exit (CPython registers on attach
as well as on create — bpo-39959).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np


@dataclass(frozen=True)
class SharedArrayHandle:
    """Picklable descriptor of one shared array (name + layout)."""

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(
            self.dtype
        ).itemsize


class SharedArrayPack:
    """Parent-side bundle of arrays exported to shared memory.

    ``pack = SharedArrayPack({"xs": xs, "ys": ys})`` copies each array
    into its own segment; :attr:`handles` maps the same keys to
    picklable :class:`SharedArrayHandle` descriptors for the workers.
    """

    def __init__(self, arrays: dict[str, np.ndarray]):
        self._segments: list[shared_memory.SharedMemory] = []
        self.handles: dict[str, SharedArrayHandle] = {}
        try:
            for key, array in arrays.items():
                array = np.ascontiguousarray(array)
                nbytes = max(1, array.nbytes)  # zero-size segments are invalid
                segment = shared_memory.SharedMemory(create=True, size=nbytes)
                self._segments.append(segment)
                view = np.ndarray(
                    array.shape, dtype=array.dtype, buffer=segment.buf
                )
                view[...] = array
                self.handles[key] = SharedArrayHandle(
                    name=segment.name,
                    shape=tuple(array.shape),
                    dtype=array.dtype.str,
                )
        except Exception:
            self.close()
            raise

    @property
    def total_nbytes(self) -> int:
        """Total payload bytes exported across all segments."""
        return sum(handle.nbytes for handle in self.handles.values())

    def close(self) -> None:
        """Unmap and unlink every segment (idempotent)."""
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # already unlinked
                pass
        self._segments = []

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort safety net
        self.close()


# Worker-side attachment cache: segment name -> (SharedMemory, ndarray).
# Keeping the SharedMemory object referenced keeps the mapping alive.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


def attach_array(handle: SharedArrayHandle) -> np.ndarray:
    """Worker-side view of a shared array (cached per segment name)."""
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[1]
    # CPython's resource tracker registers attachments too (bpo-39959);
    # under fork the tracker process is shared with the parent, so an
    # attach-then-unregister would cancel the *parent's* registration.
    # Suppress the registration instead: the parent owns the segment
    # and its tracker entry, the worker only borrows the mapping.
    orig_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        segment = shared_memory.SharedMemory(name=handle.name)
    finally:
        resource_tracker.register = orig_register
    view = np.ndarray(
        handle.shape, dtype=np.dtype(handle.dtype), buffer=segment.buf
    )
    _ATTACHED[handle.name] = (segment, view)
    return view


def release_attachments(keep: set[str] | None = None) -> None:
    """Drop worker-side attachments not named in ``keep``.

    Called when a new sweep context arrives so a long-lived worker does
    not accumulate mappings for every sweep it ever served.
    """
    keep = keep or set()
    for name in list(_ATTACHED):
        if name in keep:
            continue
        segment, _view = _ATTACHED.pop(name)
        try:
            segment.close()
        # repro-lint: disable=RL005 -- best-effort worker-side unmap; a dead segment is already detached
        except Exception:  # pragma: no cover - best effort
            pass
