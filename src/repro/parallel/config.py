"""Worker/batch resolution and candidate sharding.

Two knobs govern the execution engine, both wired through the CLI and
:class:`~repro.core.session.MapSession`:

* ``batch_size`` — how many candidates one kernel invocation evaluates
  (the Layer-1 batching of ``docs/PERFORMANCE.md``).  ``1`` recovers
  the scalar one-row-at-a-time engine; ``None`` means
  :data:`DEFAULT_BATCH_SIZE`.
* ``workers`` — how many pool workers shard the candidate blocks
  (Layer 2).  ``0`` runs in-process with no pool; ``"auto"`` asks the
  host.
"""

from __future__ import annotations

import os
from collections.abc import Iterator, Sequence

import numpy as np

# Large enough to amortize per-call Python overhead into one kernel
# invocation, small enough that a (batch, population) block matrix
# stays cache/memory friendly for the populations the paper's
# workloads produce (a 256 x 50k float64 block is ~100 MB at the
# extreme end; typical regions are far smaller).
DEFAULT_BATCH_SIZE = 256

BACKENDS = ("serial", "thread", "process")

# Dispatch-overhead floor for a pooled gain sweep, in estimated
# elementwise operations (candidate rows x population size).  The numpy
# kernels chew through roughly 1e9 row-elements/second, so a sweep
# below ~2e6 elements finishes in about two milliseconds — less than
# the cost of a round of executor submissions plus result pickling on
# the process backend.  Sweeps under the floor run inline on the
# calling thread (``parallel.shard_skipped_serial`` counts them).
SERIAL_SWEEP_FLOOR = 2_000_000

# Coarse-shard target: dispatch groups per worker per sweep.  One group
# per worker minimizes dispatch overhead but strands the tail when
# block costs are uneven; two lets a fast worker steal a second group.
# Higher values re-fragment the sweep toward the per-block dispatch
# this policy exists to avoid.
SHARDS_PER_WORKER = 2


def resolve_workers(workers: int | str | None) -> int:
    """Resolve a worker-count spec to a concrete count.

    ``None`` and ``0`` mean no pool (serial execution); ``"auto"``
    resolves to the host CPU count; a positive int passes through.
    """
    if workers is None:
        return 0
    if isinstance(workers, str):
        if workers != "auto":
            raise ValueError(
                f"workers must be an int or 'auto', got {workers!r}"
            )
        return os.cpu_count() or 1
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    return workers


def resolve_batch_size(batch_size: int | None) -> int:
    """Resolve a batch-size spec (``None`` -> :data:`DEFAULT_BATCH_SIZE`)."""
    if batch_size is None:
        return DEFAULT_BATCH_SIZE
    batch_size = int(batch_size)
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    return batch_size


def effective_batch_size(
    batch_size: int | None, similarity=None, pool=None
) -> int:
    """The batch size the greedy engine should actually use.

    An explicit ``batch_size`` is always honored.  When unset, models
    that declare themselves not :attr:`SimilarityModel.batch_friendly`
    (dense coordinate kernels whose scalar closures are already fully
    vectorized) keep the scalar engine — unless a pool is present,
    which needs blocks to shard.  Selections are bit-identical at any
    batch size; this is purely a speed default.
    """
    if batch_size is not None:
        return resolve_batch_size(batch_size)
    if pool is None and not getattr(similarity, "batch_friendly", True):
        return 1
    return DEFAULT_BATCH_SIZE


def resolve_backend(
    backend: str, workers: int, similarity=None
) -> str:
    """Resolve an ``"auto"`` backend against workers and model support.

    * 0 workers -> ``serial`` always.
    * ``process`` needs a model that can be rebuilt inside a worker
      from shared memory (:meth:`SimilarityModel.process_spec`); models
      that cannot fall back to ``thread``.
    * models that are not thread-safe (the memoizing
      :class:`~repro.cache.SimilarityCache`) fall back to ``serial``
      block execution — batching still applies, sharding does not.
    """
    if backend not in BACKENDS + ("auto",):
        raise ValueError(
            f"backend must be one of {BACKENDS + ('auto',)}, got {backend!r}"
        )
    if workers == 0:
        return "serial"
    thread_safe = getattr(similarity, "thread_safe", True)
    has_spec = (
        similarity is not None
        and getattr(similarity, "process_spec", lambda: None)() is not None
    )
    if backend == "process":
        if has_spec:
            return "process"
        return "thread" if thread_safe else "serial"
    if backend == "thread":
        return "thread" if thread_safe else "serial"
    if backend == "serial":
        return "serial"
    # auto: prefer processes only when the host has real parallelism
    # and the model supports shared-memory reconstruction; threads are
    # the cheap default (numpy kernels release the GIL).
    if has_spec and (os.cpu_count() or 1) > 1 and workers > 1:
        return "process"
    return "thread" if thread_safe else "serial"


def iter_blocks(
    ids: np.ndarray, batch_size: int
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(offset, block)`` slices of ``ids`` in order.

    The offset is the block's position in the original array — the
    merge key that keeps parallel sweeps deterministic regardless of
    completion order.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    for start in range(0, len(ids), batch_size):
        yield start, ids[start:start + batch_size]


def plan_shards(total_rows: int, population: int, workers: int) -> int:
    """Dispatch-group count for a gain sweep; ``0`` means run serial.

    The adaptive shard policy: estimate the sweep's work as
    ``total_rows * population`` elementwise operations and fall back to
    inline execution when it is under :data:`SERIAL_SWEEP_FLOOR` —
    dispatching such a sweep to a pool costs more than the sweep
    itself.  Above the floor, the sweep is split into at most
    ``workers * SHARDS_PER_WORKER`` contiguous groups of caller blocks
    (never more groups than rows).  Purely a scheduling decision: the
    per-block results and counter totals are identical either way.
    """
    if workers <= 0 or total_rows <= 0:
        return 0
    if total_rows * max(population, 1) < SERIAL_SWEEP_FLOOR:
        return 0
    return max(1, min(workers * SHARDS_PER_WORKER, total_rows))


def group_blocks(
    blocks: Sequence[np.ndarray], n_groups: int
) -> list[list[np.ndarray]]:
    """Partition ``blocks`` into ``n_groups`` contiguous, row-balanced runs.

    Blocks keep their caller order and granularity — a worker evaluates
    its group one caller block at a time, so kernel shapes (and the
    ``kernel_rows`` / ``kernel_calls`` accounting derived from block
    count) are independent of the grouping.  Group boundaries fall at
    the cumulative-row thresholds ``total * g / n_groups``, which is
    deterministic in the block sizes alone.
    """
    if n_groups < 1:
        raise ValueError(f"n_groups must be positive, got {n_groups}")
    total = sum(len(block) for block in blocks)
    groups: list[list[np.ndarray]] = [[]]
    seen = 0
    for block in blocks:
        # Advance to the group whose row range contains this block's
        # start; empty trailing groups are dropped below.
        while len(groups) < n_groups and seen * n_groups >= total * len(groups):
            groups.append([])
        groups[-1].append(block)
        seen += len(block)
    return [group for group in groups if group]
