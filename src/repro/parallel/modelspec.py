"""Rebuilding similarity models inside process workers.

The process backend cannot pickle a similarity model per task — the
coordinate arrays or TF-IDF matrix would travel with it.  Instead the
parent asks the model for its :meth:`~repro.similarity.SimilarityModel.
process_spec` — ``(kind, params, arrays)`` — exports the arrays to
shared memory once, and every worker calls :func:`build_model` over the
attached zero-copy views.  The rebuilt model runs the exact same
kernels as the parent's (same classes, same arrays), which is what
keeps process-parallel sweeps bit-identical.
"""

from __future__ import annotations

import numpy as np


def model_spec(model):
    """``model.process_spec()`` with a ``None``-model guard."""
    if model is None:
        return None
    spec_fn = getattr(model, "process_spec", None)
    return spec_fn() if callable(spec_fn) else None


def _csr_from_arrays(params: dict, arrays: dict):
    from scipy import sparse

    return sparse.csr_matrix(
        (arrays["data"], arrays["indices"], arrays["indptr"]),
        shape=tuple(params["shape"]),
        copy=False,
    )


def build_model(kind: str, params: dict, arrays: dict[str, np.ndarray]):
    """Reconstruct a similarity model from its process spec."""
    if kind == "euclidean":
        from repro.similarity.spatial import EuclideanSimilarity

        return EuclideanSimilarity(
            arrays["xs"], arrays["ys"], d_max=params["d_max"]
        )
    if kind == "gaussian":
        from repro.similarity.spatial import GaussianSpatialSimilarity

        return GaussianSpatialSimilarity(
            arrays["xs"], arrays["ys"], sigma=params["sigma"]
        )
    if kind == "matrix":
        from repro.similarity.base import MatrixSimilarity

        # The parent already validated the matrix at construction.
        return MatrixSimilarity(arrays["matrix"], validate=False)
    if kind == "cosine_text":
        from repro.similarity.text import CosineTextSimilarity

        return CosineTextSimilarity(_csr_from_arrays(params, arrays))
    if kind == "jaccard":
        from repro.similarity.text import JaccardSimilarity

        return JaccardSimilarity._from_parts(
            _csr_from_arrays(params, arrays), arrays["sizes"]
        )
    if kind == "minhash":
        from repro.similarity.minhash import MinHashSimilarity

        return MinHashSimilarity.from_signatures(arrays["signatures"])
    if kind == "combined":
        from repro.similarity.combined import CombinedSimilarity

        models = []
        for idx, child in enumerate(params["children"]):
            child_arrays = {
                key: arrays[f"{idx}:{key}"] for key in child["keys"]
            }
            models.append(
                build_model(child["kind"], child["params"], child_arrays)
            )
        return CombinedSimilarity(models, params["weights"])
    raise ValueError(f"unknown similarity process spec kind {kind!r}")
