"""Offline tile precompute: ``python -m repro tiles build``.

For every tile key this pass materializes the two per-tile artifacts
:class:`~repro.tiles.TileSelectionCache` serves from:

* **Lemma-5.1 masses** ``raw(v) = Σ_{o ∈ N(T)} ω_o · Sim(o, v)`` for
  each object ``v`` binned into the tile, decomposed *per source tile*
  of the 3x3 neighborhood ``N(T)`` — one ``weighted_sims_sum`` kernel
  sweep per (tile, neighbor) pair, so serving can sum only the
  neighbors a viewport actually touches (objects on shared tile edges
  may land in two sources' closed boxes; the double count only raises
  the bound, never invalidates it);
* **the tile's own selection** — a greedy run over the tile population
  (HiFIVE-style offline reduction, kept for previews and
  ``tiles info``).

Tiles are independent, so the pass fans out over the existing
:class:`~repro.parallel.WorkerPool` via ``run_all`` — thread workers
share the dataset arrays by reference, and the pool's backend
resolution already downgrades to serial when the similarity model is
not thread-safe.  Build order never affects stored values (each tile
only reads the immutable dataset).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.greedy import greedy_core
from repro.metrics import MetricsRegistry
from repro.parallel.pool import WorkerPool
from repro.tiles.scheme import TileKey, TileScheme
from repro.tiles.store import (
    StoreMeta,
    Tile,
    TileStore,
    dataset_fingerprint,
)
from repro.trace.tracer import NULL_TRACER, TracerLike

#: Default per-tile selection size (matches the session default k).
DEFAULT_TILE_K = 32
#: Default visibility threshold as a fraction of the tile's short side.
DEFAULT_THETA_FRACTION = 0.02


def bin_ids_per_tile(
    dataset: GeoDataset, scheme: TileScheme, zoom: int
) -> dict[TileKey, np.ndarray]:
    """Ids grouped by the tile they bin into at ``zoom`` (ids sorted).

    One vectorized binning sweep over the whole dataset instead of a
    region query per tile; every object lands in exactly one group.
    """
    if len(dataset) == 0:
        return {}
    n = scheme.tiles_per_axis(zoom)
    cells = scheme.cell_ids(zoom, dataset.xs, dataset.ys)
    order = np.argsort(cells, kind="stable")
    sorted_cells = cells[order]
    boundaries = np.flatnonzero(np.diff(sorted_cells)) + 1
    groups: dict[TileKey, np.ndarray] = {}
    for chunk in np.split(order, boundaries):
        cell = int(cells[chunk[0]])
        key = TileKey(zoom, cell % n, cell // n)
        # Stable argsort over the already-ordered id axis keeps each
        # group sorted, which Tile requires for searchsorted lookups.
        groups[key] = np.sort(chunk).astype(np.int64)
    return groups


def build_tile(
    dataset: GeoDataset,
    scheme: TileScheme,
    key: TileKey,
    tile_ids: np.ndarray,
    k: int = DEFAULT_TILE_K,
    theta_fraction: float = DEFAULT_THETA_FRACTION,
) -> Tile:
    """Materialize one tile: neighborhood masses + the tile selection."""
    # repro-lint: disable=RL002 -- reporting-only duration measurement (built_elapsed_s); never influences which objects are selected
    started = time.perf_counter()
    tile_ids = np.asarray(tile_ids, dtype=np.int64)
    source_keys = scheme.neighborhood_keys(key)
    source_masses = np.zeros(
        (len(source_keys), len(tile_ids)), dtype=np.float64
    )
    neighborhood_count = 0
    if len(tile_ids):
        for row, source in enumerate(source_keys):
            source_ids = dataset.objects_in(scheme.tile_box(source))
            neighborhood_count += int(len(source_ids))
            if len(source_ids):
                source_masses[row] = dataset.similarity.weighted_sims_sum(
                    tile_ids, source_ids, dataset.weights[source_ids]
                )
    if len(tile_ids):
        theta = theta_fraction * min(
            scheme.tile_width(key.zoom), scheme.tile_height(key.zoom)
        )
        result = greedy_core(
            dataset,
            region_ids=tile_ids,
            candidate_ids=tile_ids,
            mandatory_ids=np.empty(0, dtype=np.int64),
            k=k,
            theta=theta,
            init_mode="bulk",
        )
        selection = result.selected
    else:
        selection = np.empty(0, dtype=np.int64)
    # repro-lint: disable=RL002 -- reporting-only duration measurement (built_elapsed_s); never influences which objects are selected
    elapsed = time.perf_counter() - started
    return Tile(
        key=key,
        box=scheme.tile_box(key),
        ids=tile_ids,
        source_keys=np.array(
            [tuple(source) for source in source_keys], dtype=np.int64
        ).reshape(len(source_keys), 3),
        source_masses=source_masses,
        selection=selection,
        neighborhood_count=neighborhood_count,
        built_elapsed_s=elapsed,
    )


def build_tile_store(
    dataset: GeoDataset,
    scheme: TileScheme | None = None,
    zooms: list[int] | None = None,
    k: int = DEFAULT_TILE_K,
    theta_fraction: float = DEFAULT_THETA_FRACTION,
    byte_budget: int | None = None,
    pool: WorkerPool | None = None,
    metrics: MetricsRegistry | None = None,
    tracer: TracerLike | None = None,
) -> TileStore:
    """Precompute every tile of the requested zoom levels into a store.

    Parameters
    ----------
    scheme:
        Pyramid geometry; defaults to the dataset frame with the
        default depth.
    zooms:
        Levels to materialize; defaults to all of
        ``0..scheme.max_zoom``.  Serving only needs the level matched
        by :meth:`TileScheme.zoom_for`, so a partial build simply
        leaves the other levels to cold fallback / online refinement.
    pool:
        Optional :class:`~repro.parallel.WorkerPool`; tiles build
        concurrently when the pool (and similarity model) allow it.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    if scheme is None:
        scheme = TileScheme(frame=dataset.frame())
    if zooms is None:
        zooms = list(range(scheme.max_zoom + 1))
    for zoom in zooms:
        if not 0 <= zoom <= scheme.max_zoom:
            raise ValueError(
                f"zoom {zoom} outside scheme range [0, {scheme.max_zoom}]"
            )
    meta = StoreMeta(
        fingerprint=dataset_fingerprint(dataset),
        objects=len(dataset),
        k=k,
        theta_fraction=theta_fraction,
        frame=scheme.frame,
        max_zoom=scheme.max_zoom,
        zooms_built=sorted(set(zooms)),
    )
    store = TileStore(scheme, meta, byte_budget=byte_budget)

    work: list[tuple[TileKey, np.ndarray]] = []
    for zoom in sorted(set(zooms)):
        groups = bin_ids_per_tile(dataset, scheme, zoom)
        for key in scheme.keys_at(zoom):
            work.append(
                (key, groups.get(key, np.empty(0, dtype=np.int64)))
            )

    def make_thunk(key: TileKey, ids: np.ndarray):
        def thunk() -> Tile:
            return build_tile(
                dataset, scheme, key, ids,
                k=k, theta_fraction=theta_fraction,
            )
        return thunk

    with tracer.span(
        "tiles.build", tiles=len(work), zooms=len(set(zooms))
    ):
        if pool is not None:
            outcomes = pool.run_all(
                [make_thunk(key, ids) for key, ids in work]
            )
        else:
            outcomes = []
            for key, ids in work:
                try:
                    outcomes.append((make_thunk(key, ids)(), None))
                except Exception as exc:  # repro-lint: disable=RL005 -- captured into outcomes to mirror WorkerPool.run_all's contract; the first failure is re-raised below
                    outcomes.append((None, exc))

    failures = [exc for _tile, exc in outcomes if exc is not None]
    if failures:
        raise failures[0]
    for tile, _exc in outcomes:
        store.put(tile)
        if metrics is not None:
            metrics.incr("tiles.built")
            metrics.observe("tiles.build_seconds", tile.built_elapsed_s)
    if metrics is not None:
        metrics.incr("tiles.store_bytes", store.total_bytes)
    return store
