"""Tile-grain selection serving: compose cached tiles into heap bounds.

:class:`TileSelectionCache` turns a precomputed
:class:`~repro.tiles.TileStore` into per-navigation upper bounds for
the greedy engine's ``initial_bounds`` seeding:

1. pick the deepest zoom whose tiles dominate the viewport
   (:meth:`TileScheme.zoom_for` — at most a 2x2 block of tiles covers
   it there);
2. for every covering tile present in the store, map the viewport's
   candidates binned into that tile onto the tile's Lemma-5.1 masses,
   summing only the source tiles the viewport overlaps
   (``raw(v) / |On|`` is a valid first-iteration upper bound because
   every viewport object lies in some overlapping source's box; the
   3x3 neighborhood guarantee is re-verified geometrically per serve,
   so float-edge binning can never smuggle in an invalid bound);
3. candidates of missing/unverifiable tiles stay ``NaN`` — the greedy
   engine initializes those exactly (the "small ISOS repair pass"),
   so partial coverage degrades smoothly and the composed selection is
   **bit-identical** to a cold run via the strict CELF tie-break.

The cache is also the adaptive-refinement driver (GeoBlocks-style):
it records which tiles traffic missed, and :meth:`refine` — called off
the response path — builds the most-missed tiles plus children of the
hottest ones, while the store's byte budget evicts cold tiles.

A cache is safe to share across concurrent sessions: the store is
internally locked and the cache's own traffic state sits behind one
lock.  Every serve re-checks the dataset fingerprint, so a session
that swapped datasets can never replay tiles built from the old data
— it simply falls back cold (and the shared store stays valid for the
other sessions).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.dataset import GeoDataset
from repro.geo.bbox import BoundingBox
from repro.metrics import MetricsRegistry
from repro.tiles.build import build_tile
from repro.tiles.scheme import TileKey
from repro.tiles.store import Tile, TileStore, dataset_fingerprint
from repro.trace.tracer import NULL_TRACER, TracerLike

#: Serve bounds only when at least this fraction of candidates got one
#: (below it the exact repair pass dominates and cold init is cheaper).
DEFAULT_MIN_COVERAGE = 0.5
#: Serve bounds only for viewports with at least this many candidates.
#: Below it the cold batched init is cheaper than the lazy refreshes
#: the stale bounds trigger (measured breakeven ~8-10k candidates on
#: the 120k-object text dataset); serving would *slow the step down*.
DEFAULT_MIN_CANDIDATES = 8192
#: Tiles built per refinement call (kept small: refinement shares the
#: process with the response path, just not the timed section).
DEFAULT_REFINE_LIMIT = 2


class TileSelectionCache:
    """Serve navigation-step heap bounds from a tile store.

    Parameters
    ----------
    store:
        The tile store (precomputed offline and/or refined online).
    min_coverage:
        Minimum fraction of candidates that must receive a finite
        bound for the serve to count; otherwise ``bounds_for`` returns
        ``None`` and the step runs cold.
    min_candidates:
        Minimum viewport candidate count to serve at all — small
        viewports run their cold batched init faster than the lazy
        refreshes stale bounds would trigger.  Set ``0`` to always
        serve (tests use this; identity holds either way).
    refine_limit:
        Default number of tiles :meth:`refine` may build per call.
    """

    def __init__(
        self,
        store: TileStore,
        min_coverage: float = DEFAULT_MIN_COVERAGE,
        min_candidates: int = DEFAULT_MIN_CANDIDATES,
        refine_limit: int = DEFAULT_REFINE_LIMIT,
        metrics: MetricsRegistry | None = None,
        tracer: TracerLike | None = None,
    ) -> None:
        if not 0.0 <= min_coverage <= 1.0:
            raise ValueError("min_coverage must lie in [0, 1]")
        if min_candidates < 0:
            raise ValueError("min_candidates must be non-negative")
        if refine_limit < 0:
            raise ValueError("refine_limit must be non-negative")
        self.store = store
        self.min_coverage = min_coverage
        self.min_candidates = min_candidates
        self.refine_limit = refine_limit
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._lock = threading.Lock()
        # Tiles traffic asked for and did not get, by miss count —
        # the refinement queue.
        self._missed: dict[TileKey, int] = {}
        # Hot tiles already refined into children (never re-promote).
        self._promoted: set[TileKey] = set()

    def _incr(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.incr(name, amount)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def compatible_with(self, dataset: GeoDataset) -> bool:
        """Whether the store was built from exactly this dataset."""
        return (
            len(dataset) == self.store.meta.objects
            and dataset_fingerprint(dataset)
            == self.store.meta.fingerprint
        )

    def bounds_for(
        self,
        dataset: GeoDataset,
        region: BoundingBox,
        population_ids: np.ndarray,
        candidate_ids: np.ndarray,
    ) -> np.ndarray | None:
        """Upper bounds aligned with ``candidate_ids``, or ``None``.

        ``None`` means "serve this step cold": store built from a
        different dataset, viewport outside every zoom level, or tile
        coverage below :attr:`min_coverage`.  A returned array may
        still hold ``NaN`` entries (candidates of missing tiles); the
        greedy engine repairs those with exact gains.
        """
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        if len(population_ids) == 0 or len(candidate_ids) == 0:
            self._incr("tiles.skipped.empty")
            return None
        if len(candidate_ids) < self.min_candidates:
            self._incr("tiles.skipped.small")
            return None
        # Fingerprint check on every serve: a swapped dataset must
        # never replay tiles built from the old one, even through a
        # store shared with sessions still on the original dataset.
        if not self.compatible_with(dataset):
            self._incr("tiles.skipped.fingerprint")
            return None
        scheme = self.store.scheme
        zoom = scheme.zoom_for(region)
        if zoom is None:
            self._incr("tiles.skipped.zoom")
            return None
        with self.tracer.span(
            "tiles.compose", zoom=zoom, candidates=int(len(candidate_ids))
        ) as span:
            keys = scheme.keys_overlapping(zoom, region)
            tiles: dict[TileKey, Tile] = {}
            missing: list[TileKey] = []
            for key in keys:
                tile = self.store.get(key)
                if tile is not None and scheme.neighborhood_box(
                    key
                ).contains_box(region):
                    tiles[key] = tile
                else:
                    # Absent, or (float-edge case) the viewport escapes
                    # the tile's neighborhood guarantee: either way the
                    # tile cannot vouch for this serve.
                    missing.append(key)
            self._incr("tiles.lookup.hits", len(tiles))
            self._incr("tiles.lookup.misses", len(missing))
            if missing:
                with self._lock:
                    for key in missing:
                        self._missed[key] = self._missed.get(key, 0) + 1
            bounds = np.full(len(candidate_ids), np.nan, dtype=np.float64)
            if tiles:
                n = scheme.tiles_per_axis(zoom)
                cells = scheme.cell_ids(
                    zoom,
                    dataset.xs[candidate_ids],
                    dataset.ys[candidate_ids],
                )
                for key, tile in tiles.items():
                    member = cells == (key.y * n + key.x)
                    if not member.any():
                        continue
                    # Sum only the neighbor tiles the viewport touches:
                    # every viewport object lies in some overlapping
                    # source's closed box, so the partial sum is still
                    # a valid bound — just tighter by the mass of the
                    # untouched neighbors.
                    source_mask = np.array(
                        [
                            scheme.tile_box(
                                TileKey(*source)
                            ).intersects(region)
                            for source in tile.source_keys
                        ],
                        dtype=bool,
                    )
                    bounds[member] = tile.bounds_for(
                        candidate_ids[member],
                        len(population_ids),
                        source_mask=source_mask,
                    )
            covered = int(np.count_nonzero(~np.isnan(bounds)))
            coverage = covered / len(candidate_ids)
            span.annotate(
                tiles=len(tiles),
                missing=len(missing),
                coverage=round(coverage, 4),
            )
        if coverage < self.min_coverage:
            self._incr("tiles.skipped.coverage")
            return None
        self._incr("tiles.served")
        self._incr("tiles.candidates_bounded", covered)
        self._incr("tiles.candidates_repaired", len(candidate_ids) - covered)
        return bounds

    # ------------------------------------------------------------------
    # Adaptive refinement (GeoBlocks-style, off the response path)
    # ------------------------------------------------------------------

    def refine(
        self, dataset: GeoDataset, limit: int | None = None
    ) -> list[TileKey]:
        """Build up to ``limit`` tiles traffic wants; returns built keys.

        Priority order: tiles serves actually missed (most-missed
        first), then children of the hottest resident tiles (promotion
        to finer granularity).  The store's byte budget evicts cold
        tiles as new ones land.  No-ops instantly when neither queue
        has work, and never builds against a swapped dataset.
        """
        limit = self.refine_limit if limit is None else limit
        if limit <= 0:
            return []
        if not self.compatible_with(dataset):
            self._incr("tiles.refine.skipped.fingerprint")
            return []
        scheme = self.store.scheme
        targets: list[TileKey] = []
        with self._lock:
            queue = sorted(
                self._missed.items(), key=lambda item: (-item[1], item[0])
            )
            for key, _count in queue:
                if len(targets) >= limit:
                    break
                if key not in self.store:
                    targets.append(key)
                self._missed.pop(key, None)
        if len(targets) < limit:
            for hot in self.store.hottest(limit):
                with self._lock:
                    if hot in self._promoted:
                        continue
                    self._promoted.add(hot)
                for child in scheme.children(hot):
                    if len(targets) >= limit:
                        break
                    if child not in self.store and child not in targets:
                        targets.append(child)
                if len(targets) >= limit:
                    break
        if not targets:
            return []
        with self.tracer.span("tiles.refine", tiles=len(targets)):
            for key in targets:
                n = scheme.tiles_per_axis(key.zoom)
                cells = scheme.cell_ids(key.zoom, dataset.xs, dataset.ys)
                ids = np.flatnonzero(
                    cells == (key.y * n + key.x)
                ).astype(np.int64)
                tile = build_tile(
                    dataset,
                    scheme,
                    key,
                    ids,
                    k=self.store.meta.k,
                    theta_fraction=self.store.meta.theta_fraction,
                )
                evicted = self.store.put(tile)
                self._incr("tiles.refined")
                self._incr("tiles.evicted", len(evicted))
        return targets

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Store stats plus the refinement queue depth."""
        payload = self.store.stats()
        with self._lock:
            payload["missed_pending"] = len(self._missed)
            payload["promoted"] = len(self._promoted)
        return payload
