"""Zoom-pyramid tile precompute and tile-grain selection serving.

The tentpole of the O(viewport) → O(delta) navigation step: an offline
pass (:func:`build_tile_store`, ``python -m repro tiles build``)
materializes per-tile selections and Lemma-5.1 prefetch masses over a
quadtree pyramid (:class:`TileScheme`), and
:class:`TileSelectionCache` composes the cached tiles covering a
viewport into greedy heap bounds — bit-identical to direct computation
— with GeoBlocks-style adaptive refinement and byte-budget eviction.
See ``docs/TILES.md``.
"""

from repro.tiles.build import (
    DEFAULT_THETA_FRACTION,
    DEFAULT_TILE_K,
    bin_ids_per_tile,
    build_tile,
    build_tile_store,
)
from repro.tiles.cache import (
    DEFAULT_MIN_CANDIDATES,
    DEFAULT_MIN_COVERAGE,
    DEFAULT_REFINE_LIMIT,
    TileSelectionCache,
)
from repro.tiles.scheme import MAX_ZOOM_LIMIT, TileKey, TileScheme
from repro.tiles.store import (
    BOUND_SAFETY,
    StoreMeta,
    Tile,
    TileStore,
    dataset_fingerprint,
)

__all__ = [
    "BOUND_SAFETY",
    "DEFAULT_MIN_CANDIDATES",
    "DEFAULT_MIN_COVERAGE",
    "DEFAULT_REFINE_LIMIT",
    "DEFAULT_THETA_FRACTION",
    "DEFAULT_TILE_K",
    "MAX_ZOOM_LIMIT",
    "StoreMeta",
    "Tile",
    "TileKey",
    "TileScheme",
    "TileSelectionCache",
    "TileStore",
    "bin_ids_per_tile",
    "build_tile",
    "build_tile_store",
    "dataset_fingerprint",
]
