"""The zoom-pyramid tile scheme over a dataset frame.

A :class:`TileScheme` carves the dataset frame into a quadtree-style
pyramid: zoom level ``z`` is a ``2^z x 2^z`` grid of equally sized
tiles, addressed by :class:`TileKey` ``(zoom, x, y)`` with ``(0, 0)``
at the frame's min corner.  The scheme is pure geometry — it owns no
objects and no precomputed state; :mod:`repro.tiles.store` attaches
per-tile material to keys.

Two properties make the pyramid compose with the selection machinery:

* **binning is the grid index's arithmetic** — a point maps to exactly
  one tile per level via the same clipped ``floor((p - min) * inv)``
  binning :class:`~repro.index.GridIndex` uses, so
  :meth:`TileScheme.from_grid_index` can align tile edges with grid
  bins exactly (when the grid resolution divides evenly into the
  pyramid, every tile boundary is also a bin boundary).
* **the 3x3 neighborhood dominates any viewport of tile size**
  (Lemma 5.1 transfer): a viewport no larger than a tile that
  intersects tile ``T`` lies inside ``T`` expanded by one tile on
  every side.  Per-tile masses summed over that neighborhood are
  therefore valid upper bounds for *any* such viewport's population —
  the invariant :class:`~repro.tiles.TileSelectionCache` serves from.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.geo.bbox import BoundingBox
from repro.index.grid import GridIndex

#: Upper bound on pyramid depth: 2^12 tiles per axis is ~17M tiles at
#: the deepest level, far past any useful selection granularity.
MAX_ZOOM_LIMIT = 12


class TileKey(NamedTuple):
    """Address of one tile: zoom level plus column/row in that level."""

    zoom: int
    x: int
    y: int


@dataclass(frozen=True)
class TileScheme:
    """Quadtree pyramid of ``2^z x 2^z`` tiles over ``frame``.

    Parameters
    ----------
    frame:
        The world the pyramid covers (normally the dataset frame).
    max_zoom:
        Deepest level materialized by builders; keys beyond it are
        rejected.  Level ``z`` has ``4^z`` tiles.
    """

    frame: BoundingBox
    max_zoom: int = 4

    def __post_init__(self) -> None:
        if not 0 <= self.max_zoom <= MAX_ZOOM_LIMIT:
            raise ValueError(
                f"max_zoom must be in [0, {MAX_ZOOM_LIMIT}], "
                f"got {self.max_zoom}"
            )
        if self.frame.width <= 0 or self.frame.height <= 0:
            raise ValueError("tile scheme needs a frame with positive area")

    @classmethod
    def from_grid_index(
        cls, index: GridIndex, max_zoom: int | None = None
    ) -> "TileScheme":
        """Scheme aligned to a :class:`~repro.index.GridIndex`.

        Uses the index's own frame and, when ``max_zoom`` is omitted,
        the deepest level whose tile edges land exactly on grid-bin
        edges: the largest ``z`` with ``index.cells % 2^z == 0``
        (level-``z`` tiles then span exactly ``cells / 2^z`` bins).
        An odd bin count aligns only at ``z = 0``; pass ``max_zoom``
        explicitly to trade exact alignment for depth.
        """
        frame = BoundingBox.from_points(index.xs, index.ys) if len(
            index.xs
        ) else BoundingBox.unit()
        if max_zoom is None:
            max_zoom = 0
            while (
                max_zoom < MAX_ZOOM_LIMIT
                and index.cells % (2 ** (max_zoom + 1)) == 0
            ):
                max_zoom += 1
        return cls(frame=frame, max_zoom=max_zoom)

    # ------------------------------------------------------------------
    # Per-level geometry
    # ------------------------------------------------------------------

    def tiles_per_axis(self, zoom: int) -> int:
        """Tile count along each axis at ``zoom`` (``2^zoom``)."""
        self._check_zoom(zoom)
        return 1 << zoom

    def tile_width(self, zoom: int) -> float:
        return self.frame.width / self.tiles_per_axis(zoom)

    def tile_height(self, zoom: int) -> float:
        return self.frame.height / self.tiles_per_axis(zoom)

    def tile_box(self, key: TileKey) -> BoundingBox:
        """Closed bounding box of ``key``'s tile."""
        self._check_key(key)
        w = self.tile_width(key.zoom)
        h = self.tile_height(key.zoom)
        minx = self.frame.minx + key.x * w
        miny = self.frame.miny + key.y * h
        return BoundingBox(minx, miny, minx + w, miny + h)

    def neighborhood_box(self, key: TileKey) -> BoundingBox:
        """The 3x3 tile block centered on ``key``, unclipped.

        This is the superset population box of the tile's Lemma-5.1
        masses: any viewport no larger than one tile that intersects
        the tile lies inside it.  Deliberately *not* clipped to the
        frame — clipping would shave the guarantee for viewports
        hanging off the frame edge; the spatial index simply returns
        no objects outside the frame.
        """
        box = self.tile_box(key)
        return BoundingBox(
            box.minx - box.width, box.miny - box.height,
            box.maxx + box.width, box.maxy + box.height,
        )

    def neighborhood_keys(self, key: TileKey) -> list[TileKey]:
        """The existing tiles of ``key``'s 3x3 block, row-major.

        The frame-clipped decomposition of :meth:`neighborhood_box`:
        their closed boxes jointly cover the neighborhood's
        intersection with the frame, so per-source masses summed over
        any subset of them that covers a viewport remain valid
        Lemma-5.1 bounds for that viewport.
        """
        self._check_key(key)
        n = self.tiles_per_axis(key.zoom)
        return [
            TileKey(key.zoom, col, row)
            for row in range(max(0, key.y - 1), min(n, key.y + 2))
            for col in range(max(0, key.x - 1), min(n, key.x + 2))
        ]

    # ------------------------------------------------------------------
    # Point binning
    # ------------------------------------------------------------------

    def tile_cols(self, zoom: int, xs: np.ndarray) -> np.ndarray:
        """Column index per x coordinate (clipped, GridIndex arithmetic)."""
        n = self.tiles_per_axis(zoom)
        cols = ((np.asarray(xs) - self.frame.minx)
                * (n / self.frame.width)).astype(np.int64)
        return np.clip(cols, 0, n - 1)

    def tile_rows(self, zoom: int, ys: np.ndarray) -> np.ndarray:
        """Row index per y coordinate (clipped, GridIndex arithmetic)."""
        n = self.tiles_per_axis(zoom)
        rows = ((np.asarray(ys) - self.frame.miny)
                * (n / self.frame.height)).astype(np.int64)
        return np.clip(rows, 0, n - 1)

    def key_of(self, zoom: int, x: float, y: float) -> TileKey:
        """The single tile a point bins into at ``zoom``."""
        col = int(self.tile_cols(zoom, np.array([x]))[0])
        row = int(self.tile_rows(zoom, np.array([y]))[0])
        return TileKey(zoom, col, row)

    def cell_ids(self, zoom: int, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Flattened ``row * n + col`` tile id per point (for grouping)."""
        n = self.tiles_per_axis(zoom)
        return self.tile_rows(zoom, ys) * n + self.tile_cols(zoom, xs)

    # ------------------------------------------------------------------
    # Viewport resolution
    # ------------------------------------------------------------------

    def zoom_for(self, region: BoundingBox) -> int | None:
        """Deepest level whose tiles dominate ``region``, or ``None``.

        Returns the largest ``z`` with ``tile_width(z) >= region.width``
        and ``tile_height(z) >= region.height`` — the level where the
        3x3 neighborhood guarantee holds for this viewport.  ``None``
        when the viewport exceeds even the level-0 tile (a zoom-out
        beyond the frame): no level can serve it.
        """
        if region.width > self.frame.width or region.height > self.frame.height:
            return None
        zoom = 0
        while (
            zoom < self.max_zoom
            and self.tile_width(zoom + 1) >= region.width
            and self.tile_height(zoom + 1) >= region.height
        ):
            zoom += 1
        return zoom

    def keys_overlapping(self, zoom: int, region: BoundingBox) -> list[TileKey]:
        """Keys of the level-``zoom`` tiles intersecting ``region``."""
        self._check_zoom(zoom)
        n = self.tiles_per_axis(zoom)
        c0 = int(self.tile_cols(zoom, np.array([region.minx]))[0])
        c1 = int(self.tile_cols(zoom, np.array([region.maxx]))[0])
        r0 = int(self.tile_rows(zoom, np.array([region.miny]))[0])
        r1 = int(self.tile_rows(zoom, np.array([region.maxy]))[0])
        del n  # bounds already clipped by the binning helpers
        return [
            TileKey(zoom, col, row)
            for row in range(r0, r1 + 1)
            for col in range(c0, c1 + 1)
        ]

    def keys_at(self, zoom: int) -> Iterator[TileKey]:
        """Every key of one level, row-major."""
        n = self.tiles_per_axis(zoom)
        for row in range(n):
            for col in range(n):
                yield TileKey(zoom, col, row)

    def children(self, key: TileKey) -> list[TileKey]:
        """The four level-``zoom+1`` keys refining ``key`` (may be empty).

        Empty when ``key`` already sits at :attr:`max_zoom` — the
        refinement loop treats that as "nothing left to promote".
        """
        if key.zoom >= self.max_zoom:
            return []
        z = key.zoom + 1
        return [
            TileKey(z, 2 * key.x + dx, 2 * key.y + dy)
            for dy in (0, 1)
            for dx in (0, 1)
        ]

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _check_zoom(self, zoom: int) -> None:
        if not 0 <= zoom <= self.max_zoom:
            raise ValueError(
                f"zoom must be in [0, {self.max_zoom}], got {zoom}"
            )

    def _check_key(self, key: TileKey) -> None:
        self._check_zoom(key.zoom)
        n = self.tiles_per_axis(key.zoom)
        if not (0 <= key.x < n and 0 <= key.y < n):
            raise ValueError(
                f"tile ({key.x}, {key.y}) out of range for zoom "
                f"{key.zoom} ({n} tiles per axis)"
            )
