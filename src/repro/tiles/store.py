"""Materialized per-tile selection state and its byte-budgeted store.

A :class:`Tile` is the offline product of :mod:`repro.tiles.build` for
one :class:`~repro.tiles.TileKey`:

* ``ids`` — the objects binned into the tile (each object belongs to
  exactly one tile per level);
* ``source_masses`` — the Lemma-5.1 prefetch masses *decomposed by
  source tile*: row ``s`` holds ``Σ_{o ∈ S_s} ω_o · Sim(o, v)`` for
  each ``v ∈ ids``, where ``S_s`` ranges over the (frame-clipped) 3x3
  neighborhood tiles ``source_keys``.  At serve time only the rows
  whose source tile actually overlaps the viewport are summed and
  divided by the realized population ``|On|`` — a valid upper bound
  on every first-iteration gain (the overlapping sources' closed
  boxes cover every object of the viewport) that is ~2-4x tighter
  than a monolithic 3x3 mass, because non-overlapping neighbors
  contribute nothing;
* ``selection`` — the tile's own greedy selection (its ``k`` most
  representative, θ-feasible objects), the HiFIVE-style reduced form
  of the tile kept for previews and offline inspection.

:class:`TileStore` holds tiles under a byte budget with LRU eviction
and hit accounting, is safe for concurrent readers/writers (one lock —
operations are dict gets and small moves), and round-trips to a
compressed ``.npz`` so the offline ``python -m repro tiles build`` pass
and the serving processes can exchange it.  A store is bound to the
dataset it was computed from via :func:`dataset_fingerprint`;
consumers must reject a store whose fingerprint does not match the
live dataset (the session's ``swap_dataset`` invalidation relies on
exactly this check).
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.dataset import GeoDataset
from repro.geo.bbox import BoundingBox
from repro.tiles.scheme import TileKey, TileScheme

#: Coordinates sampled per array for the dataset fingerprint.
_FINGERPRINT_SAMPLES = 4096

#: Relative safety inflation applied to served bounds.  Per-source
#: masses are partial sums; re-summing them at serve time rounds
#: differently than the engine's single-sweep exact gain, so a
#: mathematically-equal bound can land a few ulps *below* the exact
#: gain and break the upper-bound contract.  Sequential accumulation
#: error grows like ``n_terms * eps`` (~1e-12 for 10^4-term rows);
#: 1e-9 dominates it with orders of magnitude to spare while loosening
#: the bound immeasurably relative to its built-in 4-6x superset slack.
BOUND_SAFETY = 1e-9


def dataset_fingerprint(dataset: GeoDataset) -> str:
    """Cheap content identity of a dataset's selectable state.

    Hashes the object count plus strided samples of coordinates and
    weights — enough to distinguish any real dataset swap (the
    session-level invalidation case) without touching the similarity
    model, whose values derive from the same object table.  Stable
    across processes and platforms (little-endian float64 bytes).
    """
    digest = hashlib.sha256()
    digest.update(str(len(dataset)).encode("ascii"))
    stride = max(1, len(dataset) // _FINGERPRINT_SAMPLES)
    for arr in (dataset.xs, dataset.ys, dataset.weights):
        sample = np.ascontiguousarray(arr[::stride], dtype="<f8")
        digest.update(sample.tobytes())
    return digest.hexdigest()


@dataclass
class Tile:
    """Precomputed selection material for one tile (see module doc).

    ``source_keys`` is an ``(m, 3)`` int64 array of ``(zoom, x, y)``
    rows — the frame-clipped 3x3 neighborhood tiles — and
    ``source_masses`` the aligned ``(m, len(ids))`` float64 matrix of
    per-source Lemma-5.1 masses.
    """

    key: TileKey
    box: BoundingBox
    ids: np.ndarray
    source_keys: np.ndarray
    source_masses: np.ndarray
    selection: np.ndarray
    neighborhood_count: int = 0
    built_elapsed_s: float = 0.0

    def __post_init__(self) -> None:
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.source_keys = np.asarray(
            self.source_keys, dtype=np.int64
        ).reshape(-1, 3)
        self.source_masses = np.asarray(
            self.source_masses, dtype=np.float64
        ).reshape(len(self.source_keys), -1)
        self.selection = np.asarray(self.selection, dtype=np.int64)
        if self.source_masses.shape != (len(self.source_keys), len(self.ids)):
            raise ValueError("source_masses must be (sources, ids)-shaped")
        if len(self.ids) > 1 and not bool(np.all(np.diff(self.ids) > 0)):
            raise ValueError("tile ids must be strictly sorted")

    @property
    def raw_sums(self) -> np.ndarray:
        """Total neighborhood mass per id (all sources summed)."""
        if len(self.ids) == 0:
            return np.zeros(0, dtype=np.float64)
        return self.source_masses.sum(axis=0)

    @property
    def nbytes(self) -> int:
        """Approximate resident size (the eviction currency)."""
        return int(
            self.ids.nbytes
            + self.source_keys.nbytes
            + self.source_masses.nbytes
            + self.selection.nbytes
        )

    def bounds_for(
        self,
        candidate_ids: np.ndarray,
        population_size: int,
        source_mask: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-candidate upper bounds; ``NaN`` where the tile lacks an id.

        ``population_size`` is ``|On|`` of the realized viewport — the
        score normalizer only known at serve time.  ``source_mask``
        selects which source-tile rows to sum (the serve path passes
        the sources overlapping the viewport, which tightens the bound
        by the mass of the untouched neighbors); ``None`` sums all.
        """
        if population_size <= 0:
            raise ValueError("population_size must be positive")
        candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        out = np.full(len(candidate_ids), np.nan, dtype=np.float64)
        if len(self.ids) == 0 or len(candidate_ids) == 0:
            return out
        if source_mask is None:
            masses = self.raw_sums
        else:
            source_mask = np.asarray(source_mask, dtype=bool)
            if source_mask.shape != (len(self.source_keys),):
                raise ValueError("source_mask must align with source_keys")
            masses = self.source_masses[source_mask].sum(axis=0)
        pos = np.searchsorted(self.ids, candidate_ids)
        pos_safe = np.minimum(pos, len(self.ids) - 1)
        found = self.ids[pos_safe] == candidate_ids
        out[found] = (
            masses[pos_safe[found]]
            * (1.0 + BOUND_SAFETY)
            / float(population_size)
        )
        return out


@dataclass
class StoreMeta:
    """Provenance the store carries: what it was built from and how."""

    fingerprint: str
    objects: int
    k: int
    theta_fraction: float
    frame: BoundingBox
    max_zoom: int
    zooms_built: list[int] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "objects": self.objects,
            "k": self.k,
            "theta_fraction": self.theta_fraction,
            "frame": list(self.frame),
            "max_zoom": self.max_zoom,
            "zooms_built": list(self.zooms_built),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "StoreMeta":
        return cls(
            fingerprint=str(payload["fingerprint"]),
            objects=int(payload["objects"]),
            k=int(payload["k"]),
            theta_fraction=float(payload["theta_fraction"]),
            frame=BoundingBox(*(float(v) for v in payload["frame"])),
            max_zoom=int(payload["max_zoom"]),
            zooms_built=[int(z) for z in payload.get("zooms_built", [])],
        )


class TileStore:
    """Thread-safe LRU tile container under an optional byte budget.

    Parameters
    ----------
    scheme:
        The pyramid geometry the tiles belong to.
    meta:
        Build provenance (dataset fingerprint, selection parameters).
    byte_budget:
        Optional cap on the summed :attr:`Tile.nbytes`.  Inserting past
        it evicts least-recently-*hit* tiles first (GeoBlocks-style:
        traffic keeps tiles alive, cold regions age out).  ``None``
        disables eviction.
    """

    def __init__(
        self,
        scheme: TileScheme,
        meta: StoreMeta,
        byte_budget: int | None = None,
    ) -> None:
        if byte_budget is not None and byte_budget <= 0:
            raise ValueError(
                f"byte_budget must be positive or None, got {byte_budget}"
            )
        self.scheme = scheme
        self.meta = meta
        self.byte_budget = byte_budget
        self._lock = threading.Lock()
        self._tiles: OrderedDict[TileKey, Tile] = OrderedDict()
        self._hits: dict[TileKey, int] = {}
        self._total_bytes = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(self, key: TileKey, touch: bool = True) -> Tile | None:
        """The tile at ``key``, or ``None``; ``touch`` refreshes LRU."""
        with self._lock:
            tile = self._tiles.get(key)
            if tile is not None and touch:
                self._tiles.move_to_end(key)
                self._hits[key] = self._hits.get(key, 0) + 1
            return tile

    def put(self, tile: Tile) -> list[TileKey]:
        """Insert/replace a tile; returns any keys evicted for budget."""
        with self._lock:
            old = self._tiles.pop(tile.key, None)
            if old is not None:
                self._total_bytes -= old.nbytes
            self._tiles[tile.key] = tile
            self._total_bytes += tile.nbytes
            return self._evict_locked(protect=tile.key)

    def __contains__(self, key: TileKey) -> bool:
        with self._lock:
            return key in self._tiles

    def __len__(self) -> int:
        with self._lock:
            return len(self._tiles)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes

    def keys(self) -> list[TileKey]:
        """Current keys, LRU order (coldest first)."""
        with self._lock:
            return list(self._tiles)

    def hit_counts(self) -> dict[TileKey, int]:
        """Lifetime hit count per key (includes evicted keys)."""
        with self._lock:
            return dict(self._hits)

    def hottest(self, limit: int) -> list[TileKey]:
        """Up to ``limit`` resident keys by descending hit count."""
        with self._lock:
            resident = [k for k in self._tiles if self._hits.get(k, 0) > 0]
            resident.sort(key=lambda k: (-self._hits.get(k, 0), k))
            return resident[:limit]

    def _evict_locked(self, protect: TileKey | None = None) -> list[TileKey]:
        evicted: list[TileKey] = []
        if self.byte_budget is None:
            return evicted
        while self._total_bytes > self.byte_budget and len(self._tiles) > 1:
            victim = next(iter(self._tiles))
            if victim == protect:
                # The newest insert is the LRU head only when it is the
                # sole other entry; skip it and take the next-coldest.
                it = iter(self._tiles)
                next(it)
                victim = next(it, None)
                if victim is None:
                    break
            tile = self._tiles.pop(victim)
            self._total_bytes -= tile.nbytes
            self.evictions += 1
            evicted.append(victim)
        return evicted

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Snapshot for the CLI / service health payloads."""
        with self._lock:
            per_zoom: dict[int, int] = {}
            for key in self._tiles:
                per_zoom[key.zoom] = per_zoom.get(key.zoom, 0) + 1
            return {
                "tiles": len(self._tiles),
                "bytes": self._total_bytes,
                "byte_budget": self.byte_budget,
                "evictions": self.evictions,
                "tiles_per_zoom": {str(z): c for z, c in sorted(per_zoom.items())},
                "objects": self.meta.objects,
                "max_zoom": self.meta.max_zoom,
            }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the store as a compressed ``.npz`` archive."""
        with self._lock:
            arrays: dict[str, np.ndarray] = {
                "__meta__": np.array(
                    json.dumps(
                        {
                            "meta": self.meta.to_json(),
                            "byte_budget": self.byte_budget,
                            "scheme_frame": list(self.scheme.frame),
                            "scheme_max_zoom": self.scheme.max_zoom,
                        }
                    )
                )
            }
            for key, tile in self._tiles.items():
                stem = f"t{key.zoom}_{key.x}_{key.y}"
                arrays[f"{stem}.ids"] = tile.ids
                arrays[f"{stem}.src"] = tile.source_keys
                arrays[f"{stem}.mass"] = tile.source_masses
                arrays[f"{stem}.sel"] = tile.selection
                arrays[f"{stem}.aux"] = np.array(
                    [float(tile.neighborhood_count), tile.built_elapsed_s]
                )
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "TileStore":
        """Rebuild a store written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(str(archive["__meta__"]))
            meta = StoreMeta.from_json(header["meta"])
            scheme = TileScheme(
                frame=BoundingBox(
                    *(float(v) for v in header["scheme_frame"])
                ),
                max_zoom=int(header["scheme_max_zoom"]),
            )
            store = cls(
                scheme, meta, byte_budget=header.get("byte_budget")
            )
            stems = sorted(
                name[: -len(".ids")]
                for name in archive.files
                if name.endswith(".ids")
            )
            for stem in stems:
                zoom, x, y = (int(p) for p in stem[1:].split("_"))
                key = TileKey(zoom, x, y)
                aux = archive[f"{stem}.aux"]
                store.put(
                    Tile(
                        key=key,
                        box=scheme.tile_box(key),
                        ids=archive[f"{stem}.ids"],
                        source_keys=archive[f"{stem}.src"],
                        source_masses=archive[f"{stem}.mass"],
                        selection=archive[f"{stem}.sel"],
                        neighborhood_count=int(aux[0]),
                        built_elapsed_s=float(aux[1]),
                    )
                )
        return store
