"""Experiment harness: sweeps, timing, and paper-style reporting.

The benchmark scripts under ``benchmarks/`` are thin: each one binds a
workload to the sweep driver here and prints the same rows/series its
paper figure reports.  Keeping the machinery in the library makes the
experiments scriptable by downstream users too.
"""

from repro.experiments.charts import render_chart
from repro.experiments.harness import (
    MethodResult,
    compare_methods,
    run_selector,
    selector_catalog,
)
from repro.experiments.reporting import (
    format_series,
    format_table,
    print_series,
    print_table,
)
from repro.experiments.timing import measure

__all__ = [
    "MethodResult",
    "compare_methods",
    "format_series",
    "format_table",
    "measure",
    "print_series",
    "print_table",
    "render_chart",
    "run_selector",
    "selector_catalog",
]
