"""Small timing utilities for the experiment harness."""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.metrics import percentile


@dataclass(frozen=True)
class Measurement:
    """Wall-clock statistics over repeated calls."""

    mean_s: float
    stdev_s: float
    min_s: float
    max_s: float
    repeats: int
    last_result: object
    samples_s: tuple[float, ...] = field(default=())

    @property
    def mean_ms(self) -> float:
        """Mean wall time in milliseconds."""
        return self.mean_s * 1000.0

    def percentile_s(self, q: float) -> float:
        """``q``-th percentile (0–100) of the raw samples, in seconds."""
        if not self.samples_s:
            raise ValueError("no raw samples were recorded")
        return percentile(list(self.samples_s), q)

    @property
    def p50_ms(self) -> float:
        """Median wall time in milliseconds."""
        return self.percentile_s(50.0) * 1000.0

    @property
    def p95_ms(self) -> float:
        """95th-percentile wall time in milliseconds."""
        return self.percentile_s(95.0) * 1000.0


def measure(
    fn: Callable[[], object], repeats: int = 3, warmup: int = 0
) -> Measurement:
    """Time ``fn()`` ``repeats`` times (after ``warmup`` throwaway calls)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    times: list[float] = []
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return Measurement(
        mean_s=statistics.fmean(times),
        stdev_s=statistics.stdev(times) if len(times) > 1 else 0.0,
        min_s=min(times),
        max_s=max(times),
        repeats=repeats,
        last_result=result,
        samples_s=tuple(times),
    )
