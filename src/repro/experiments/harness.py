"""Selector catalog and method-comparison driver.

:func:`selector_catalog` exposes every selection method under the names
the paper's figures use (Greedy, SASS, Random, K-means, MaxMin, MaxSum,
DisC), each behind the same ``(dataset, query, rng) -> SelectionResult``
signature.  :func:`compare_methods` runs a set of them over a query
workload and aggregates runtime and representative score — the shape of
Figures 7 and 8.
"""

from __future__ import annotations

import statistics
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    disc_select,
    kmeans_select,
    maxmin_select,
    maxsum_select,
    random_select,
    topweight_select,
)
from repro.core.dataset import GeoDataset
from repro.core.greedy import greedy_select
from repro.core.problem import RegionQuery, SelectionResult
from repro.core.sampling import sass_select

Selector = Callable[..., SelectionResult]


def selector_catalog() -> dict[str, Selector]:
    """All selectors under their paper names."""

    def greedy(dataset: GeoDataset, query: RegionQuery, rng=None):
        return greedy_select(dataset, query)

    def sass(dataset: GeoDataset, query: RegionQuery, rng=None):
        # Score against the full region population so SaSS's quality is
        # directly comparable to the other methods (the sample score is
        # what the algorithm optimizes, but figures report full data).
        return sass_select(dataset, query, rng=rng, evaluate_full_score=True)

    return {
        "Greedy": greedy,
        "SASS": sass,
        "Random": random_select,
        "K-means": kmeans_select,
        "MaxMin": maxmin_select,
        "MaxSum": maxsum_select,
        "DisC": disc_select,
        "TopWeight": topweight_select,
    }


@dataclass
class MethodResult:
    """Aggregated runtime/score of one method over a workload."""

    method: str
    mean_runtime_s: float
    stdev_runtime_s: float
    mean_score: float
    stdev_score: float
    runs: int

    def row(self) -> list:
        """Cells for the Fig. 7/8-style comparison table."""
        return [
            self.method,
            f"{self.mean_runtime_s:.4f}",
            f"{self.mean_score:.4f}",
            self.runs,
        ]


def run_selector(
    name: str,
    dataset: GeoDataset,
    query: RegionQuery,
    rng: np.random.Generator | None = None,
) -> SelectionResult:
    """Run one catalog selector by name."""
    catalog = selector_catalog()
    try:
        selector = catalog[name]
    except KeyError:
        raise ValueError(
            f"unknown selector {name!r}; choose from {sorted(catalog)}"
        ) from None
    return selector(dataset, query, rng=rng)


def compare_methods(
    dataset: GeoDataset,
    queries: Sequence[RegionQuery],
    methods: Sequence[str],
    seed: int = 7,
    workers: int | str | None = None,
    tracer=None,
) -> list[MethodResult]:
    """Run each method over every query; aggregate runtime and score.

    Runtime is the selector's own ``stats['elapsed_s']`` (excludes
    query generation and region fetching, matching the paper's "we
    report the runtime after the object fetching is finished").

    ``workers`` fans the per-query runs of each method across a
    :class:`~repro.parallel.WorkerPool` (thread-backed).  Selections
    and scores are unaffected — each run keeps its own seeded RNG — but
    concurrent runs contend for cores, so per-run *timings* skew high;
    use it to grind out score comparisons quickly, not for the
    runtime panels.

    ``tracer``, when given, wraps every run in a
    ``harness.<method>`` root span (annotated with the query index),
    so one comparison produces a per-method span-tree profile.
    """
    from repro.parallel import WorkerPool, resolve_workers
    from repro.trace.tracer import NULL_TRACER

    tracer = tracer if tracer is not None else NULL_TRACER
    catalog = selector_catalog()
    pool: "WorkerPool | None" = None
    if resolve_workers(workers) > 0:
        pool = WorkerPool(workers, backend="thread")
    results: list[MethodResult] = []
    try:
        for name in methods:
            selector = catalog[name]

            def run_one(
                q_index: int,
                selector: Selector = selector,
                name: str = name,
            ) -> SelectionResult:
                rng = np.random.default_rng(seed + q_index)
                with tracer.span(f"harness.{name}", query=q_index):
                    return selector(dataset, queries[q_index], rng=rng)

            if pool is not None:
                outcomes = pool.map_ordered(run_one, range(len(queries)))
            else:
                outcomes = [run_one(i) for i in range(len(queries))]
            times = [float(o.stats.get("elapsed_s", 0.0)) for o in outcomes]
            # SaSS records its full-population score separately.
            scores = [
                float(o.stats.get("full_score", o.score)) for o in outcomes
            ]
            results.append(
                MethodResult(
                    method=name,
                    mean_runtime_s=statistics.fmean(times),
                    stdev_runtime_s=(
                        statistics.stdev(times) if len(times) > 1 else 0.0
                    ),
                    mean_score=statistics.fmean(scores),
                    stdev_score=(
                        statistics.stdev(scores) if len(scores) > 1 else 0.0
                    ),
                    runs=len(queries),
                )
            )
    finally:
        if pool is not None:
            pool.close()
    return results
