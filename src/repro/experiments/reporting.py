"""Plain-text table/series formatting for benchmark output.

Benchmarks print the same rows and series the paper's tables and
figures report; these helpers keep that output aligned and paste-able
into EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for col, cell in enumerate(row):
            widths[col] = max(widths[col], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(cells))

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> None:
    """Print :func:`format_table` output followed by a blank line."""
    print(format_table(headers, rows, title))
    print()


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
    fmt: str = "{:.4f}",
) -> str:
    """A figure as text: one row per x value, one column per curve."""
    headers = [x_label, *series.keys()]
    rows = []
    for row_index, x in enumerate(xs):
        row = [str(x)]
        for values in series.values():
            row.append(fmt.format(values[row_index]))
        rows.append(row)
    return format_table(headers, rows, title)


def print_series(
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str = "",
    fmt: str = "{:.4f}",
) -> None:
    """Print :func:`format_series` output followed by a blank line."""
    print(format_series(x_label, xs, series, title, fmt))
    print()
