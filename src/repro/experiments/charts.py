"""ASCII chart rendering for benchmark series.

The benchmark harness prints figures as aligned tables; for a quick
visual read in a terminal, :func:`render_chart` draws the same series
as a character plot — one symbol per curve, optional log-scale y axis
(most of the paper's runtime figures are log-scale).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

_SYMBOLS = "ox+*#@%&"


def render_chart(
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Plot curves as ASCII; returns the chart as a string.

    Each series gets the next symbol from ``o x + * # @ % &``; a legend
    line maps symbols to names.  With ``log_y`` the vertical axis is
    log10 (non-positive values are clamped to the smallest positive
    value present).
    """
    if not series:
        raise ValueError("need at least one series")
    if len(series) > len(_SYMBOLS):
        raise ValueError(f"at most {len(_SYMBOLS)} series supported")
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4")
    n_points = len(xs)
    for name, values in series.items():
        if len(values) != n_points:
            raise ValueError(f"series {name!r} length mismatch")
    if n_points == 0:
        raise ValueError("need at least one x value")

    flat = [v for values in series.values() for v in values]
    if log_y:
        positive = [v for v in flat if v > 0]
        floor = min(positive) if positive else 1.0
        flat = [math.log10(max(v, floor)) for v in flat]

        def transform(v: float) -> float:
            return math.log10(max(v, floor))
    else:
        def transform(v: float) -> float:
            return v

    lo, hi = min(flat), max(flat)
    span = hi - lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_index, (name, values) in enumerate(series.items()):
        symbol = _SYMBOLS[s_index]
        for p_index, value in enumerate(values):
            col = (
                0 if n_points == 1
                else round(p_index * (width - 1) / (n_points - 1))
            )
            level = (transform(value) - lo) / span
            row = height - 1 - round(level * (height - 1))
            grid[row][col] = symbol

    lines = []
    if title:
        lines.append(title)
    axis_hi = f"{10 ** hi:.3g}" if log_y else f"{hi:.3g}"
    axis_lo = f"{10 ** lo:.3g}" if log_y else f"{lo:.3g}"
    label_width = max(len(axis_hi), len(axis_lo))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = axis_hi.rjust(label_width)
        elif row_index == height - 1:
            label = axis_lo.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(
        " " * label_width + " +" + "-" * width
    )
    x_axis = f"{xs[0]} .. {xs[-1]}"
    lines.append(" " * (label_width + 2) + x_axis)
    legend = "  ".join(
        f"{_SYMBOLS[i]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)
