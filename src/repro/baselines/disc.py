"""DisC diversity baseline [16].

DisC selects a maximal independent set of radius ``r``: every object of
the population is within ``r`` of some selected object, and no two
selected objects are within ``r`` of each other.  DisC does not take a
``k``; following the paper ("we tune the parameter radius r carefully
until the size of output is close to k", Sec. 7.2) the radius is found
by bisection — the output size is monotonically non-increasing in
``r``, so a logarithmic number of greedy covers suffices.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.problem import Aggregation, RegionQuery, SelectionResult
from repro.core.scoring import representative_score


def disc_cover(
    dataset: GeoDataset,
    region_ids: np.ndarray,
    radius: float,
    rng: np.random.Generator,
) -> list[int]:
    """Greedy maximal independent set at distance ``radius``.

    Objects are visited in random order; an object is selected when no
    already-selected object lies within ``radius`` of it.  The result
    both covers the population (maximality) and is an independent set.
    """
    selected: list[int] = []
    if len(region_ids) == 0:
        return selected
    sel_xs: list[float] = []
    sel_ys: list[float] = []
    for obj in rng.permutation(region_ids):
        x = float(dataset.xs[obj])
        y = float(dataset.ys[obj])
        if selected:
            dists = np.hypot(np.asarray(sel_xs) - x, np.asarray(sel_ys) - y)
            if float(dists.min()) <= radius:
                continue
        selected.append(int(obj))
        sel_xs.append(x)
        sel_ys.append(y)
    return selected


def disc_select(
    dataset: GeoDataset,
    query: RegionQuery,
    rng: np.random.Generator | None = None,
    aggregation: Aggregation = Aggregation.MAX,
    max_bisections: int = 24,
    size_tolerance: float = 0.1,
) -> SelectionResult:
    """DisC selection with the radius bisected to land near ``k``.

    The bisection stops when the output size is within
    ``size_tolerance * k`` of ``k`` or after ``max_bisections`` rounds;
    the closest-sized cover seen is returned.  Output size is not
    exactly ``k`` by design — DisC has no cardinality parameter.
    """
    # Seeded default: an omitted rng must still give run-to-run
    # reproducible selections (the paper's evaluation contract).
    rng = rng or np.random.default_rng(0)
    region_ids = dataset.objects_in(query.region)
    # Timed after the region fetch (paper Sec. 7.1 convention).
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    started = time.perf_counter()

    best: list[int] = []
    if len(region_ids) > 0:
        lo = 0.0
        hi = max(query.region.width, query.region.height) * np.sqrt(2.0)
        best_gap = np.inf
        for _ in range(max_bisections):
            mid = (lo + hi) / 2.0
            cover = disc_cover(dataset, region_ids, mid, rng)
            gap = abs(len(cover) - query.k)
            if gap < best_gap:
                best_gap = gap
                best = cover
            if gap <= size_tolerance * query.k:
                break
            if len(cover) > query.k:
                lo = mid  # too many points: grow the radius
            else:
                hi = mid
    selected_arr = np.asarray(sorted(best), dtype=np.int64)
    score = representative_score(dataset, region_ids, selected_arr, aggregation)
    return SelectionResult(
        selected=selected_arr,
        score=score,
        region_ids=region_ids,
        stats={
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            "elapsed_s": time.perf_counter() - started,
            "population": int(len(region_ids)),
            "radius_gap": int(abs(len(best) - query.k)),
        },
    )
