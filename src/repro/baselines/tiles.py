"""Tile-precomputation baseline (the map-thinning approach of [14, 31]).

The paper's closest related work pre-computes selections *offline* for
a fixed pyramid of map tiles and zoom levels (Sarma et al.'s map
thinning; Kefaloukos et al. add a visibility-like constraint).  At
query time the viewer just unions the stored selections of the tiles
its viewport touches — O(1)-ish response, but two structural
weaknesses the paper calls out (Sec. 2):

* *Pre-defined granularity & region cells vs arbitrary regions*: a
  user viewport rarely aligns with tile boundaries, so the union of
  per-tile selections is not a good solution for the actual region —
  too many objects near tile borders, no global representativeness,
  possible visibility violations across tile seams.
* *No filtering*: precomputed picks cannot respect ad-hoc conditions.

:class:`TilePyramid` implements the approach faithfully so those
trade-offs can be measured (see ``bench_ablation_tiles``): per tile
and per zoom level it runs the same greedy SOS with a per-tile budget
and the level's visibility threshold; :meth:`TilePyramid.select`
answers a viewport query from the precomputed material only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.greedy import greedy_core
from repro.core.problem import Aggregation, RegionQuery, SelectionResult
from repro.core.scoring import representative_score
from repro.geo.bbox import BoundingBox


@dataclass(frozen=True)
class TileKey:
    """Address of one tile: zoom level plus column/row."""

    level: int
    col: int
    row: int


class TilePyramid:
    """Offline per-tile SOS selections over a zoom pyramid.

    Level ``z`` divides the dataset frame into ``2^z x 2^z`` tiles.
    Each tile stores a greedy SOS selection of at most
    ``per_tile_budget`` objects with ``θ = theta_fraction·tile_side``
    — the same machinery a live query would use, just frozen into the
    grid.  Build cost is the point of the approach (it is offline);
    query cost is a dictionary lookup per touched tile.
    """

    def __init__(
        self,
        dataset: GeoDataset,
        max_level: int = 4,
        per_tile_budget: int = 25,
        theta_fraction: float = 0.003,
        aggregation: Aggregation = Aggregation.MAX,
        tile_sample_cap: int = 4000,
        seed: int = 0,
    ):
        if max_level < 0:
            raise ValueError("max_level must be non-negative")
        if per_tile_budget < 1:
            raise ValueError("per_tile_budget must be positive")
        if tile_sample_cap < per_tile_budget:
            raise ValueError("tile_sample_cap must cover the budget")
        self.dataset = dataset
        self.max_level = max_level
        self.per_tile_budget = per_tile_budget
        self.theta_fraction = theta_fraction
        self.aggregation = aggregation
        # Coarse tiles can hold the whole dataset; precomputation
        # systems subsample them (Sarma et al.'s map thinning is
        # explicitly sampling-based).  The cap bounds per-tile work.
        self.tile_sample_cap = tile_sample_cap
        self._rng = np.random.default_rng(seed)
        self.frame = dataset.frame()
        self._tiles: dict[TileKey, np.ndarray] = {}
        self.build_elapsed_s = 0.0
        self._build()

    # ------------------------------------------------------------------
    # Offline phase
    # ------------------------------------------------------------------

    def tile_box(self, key: TileKey) -> BoundingBox:
        """Geometry of one tile."""
        tiles = 2**key.level
        width = self.frame.width / tiles
        height = self.frame.height / tiles
        minx = self.frame.minx + key.col * width
        miny = self.frame.miny + key.row * height
        return BoundingBox(minx, miny, minx + width, miny + height)

    def _build(self) -> None:
        # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
        started = time.perf_counter()
        empty = np.empty(0, dtype=np.int64)
        for level in range(self.max_level + 1):
            tiles = 2**level
            for col in range(tiles):
                for row in range(tiles):
                    key = TileKey(level, col, row)
                    box = self.tile_box(key)
                    ids = self.dataset.objects_in(box)
                    if len(ids) == 0:
                        continue
                    if len(ids) > self.tile_sample_cap:
                        ids = np.sort(
                            self._rng.choice(
                                ids, size=self.tile_sample_cap,
                                replace=False,
                            )
                        )
                    theta = self.theta_fraction * max(box.width, box.height)
                    result = greedy_core(
                        self.dataset,
                        region_ids=ids,
                        candidate_ids=ids,
                        mandatory_ids=empty,
                        k=self.per_tile_budget,
                        theta=theta,
                        aggregation=self.aggregation,
                    )
                    self._tiles[key] = result.selected
        # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
        self.build_elapsed_s = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Online phase
    # ------------------------------------------------------------------

    def level_for(self, region: BoundingBox) -> int:
        """Zoom level whose tiles best match the viewport size.

        Chooses the deepest level whose tile side is still at least
        half the viewport side — the standard slippy-map rule.
        """
        frame_side = max(self.frame.width, self.frame.height)
        region_side = max(region.width, region.height)
        if region_side <= 0:
            return self.max_level
        level = int(np.floor(np.log2(max(frame_side / region_side, 1.0))))
        return int(np.clip(level, 0, self.max_level))

    def tiles_touching(self, region: BoundingBox, level: int) -> list[TileKey]:
        """Keys of the tiles of ``level`` intersecting ``region``."""
        tiles = 2**level
        width = self.frame.width / tiles
        height = self.frame.height / tiles

        def clamp(value: int) -> int:
            return int(np.clip(value, 0, tiles - 1))

        c0 = clamp(int((region.minx - self.frame.minx) / width))
        c1 = clamp(int((region.maxx - self.frame.minx) / width))
        r0 = clamp(int((region.miny - self.frame.miny) / height))
        r1 = clamp(int((region.maxy - self.frame.miny) / height))
        return [
            TileKey(level, col, row)
            for col in range(c0, c1 + 1)
            for row in range(r0, r1 + 1)
        ]

    def select(self, query: RegionQuery) -> SelectionResult:
        """Answer a viewport query from precomputed tiles only.

        Unions the stored selections of the touched tiles, keeps those
        inside the viewport, and truncates to ``query.k`` by greedy
        conflict-free order (stored per-tile order).  Mirrors what a
        tile-serving map does; all the weaknesses measured by the
        ablation are inherent, not implementation shortcuts.
        """
        # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
        started = time.perf_counter()
        level = self.level_for(query.region)
        picked: list[int] = []
        seen: set[int] = set()
        for key in self.tiles_touching(query.region, level):
            for obj in self._tiles.get(key, ()):
                obj = int(obj)
                if obj in seen:
                    continue
                if query.region.contains_point(
                    float(self.dataset.xs[obj]), float(self.dataset.ys[obj])
                ):
                    seen.add(obj)
                    picked.append(obj)
        picked = picked[: query.k]
        selected = np.asarray(sorted(picked), dtype=np.int64)
        region_ids = self.dataset.objects_in(query.region)
        score = representative_score(
            self.dataset, region_ids, selected, self.aggregation
        )
        return SelectionResult(
            selected=selected,
            score=score,
            region_ids=region_ids,
            stats={
                # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
                "elapsed_s": time.perf_counter() - started,
                "population": int(len(region_ids)),
                "level": level,
                "tiles_touched": len(self.tiles_touching(query.region, level)),
            },
        )

    @property
    def tile_count(self) -> int:
        """Number of non-empty tiles stored."""
        return len(self._tiles)

    def stored_objects(self) -> int:
        """Total stored selection entries across all tiles/levels."""
        return int(sum(len(sel) for sel in self._tiles.values()))
