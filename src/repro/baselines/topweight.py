"""Top-weight baseline (the default policy of existing map services).

"Without the user's query, Google Maps chooses objects to be shown on
map according to their weight by default, i.e., those objects that can
maximize the total weights are selected [14]" (Sec. 2).  We implement
that policy with the visibility constraint enforced, so it is a fair
comparator for the SOS setting: visit objects by descending weight and
keep those that stay ``θ``-apart from everything kept so far.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.problem import Aggregation, RegionQuery, SelectionResult
from repro.core.scoring import representative_score


def topweight_select(
    dataset: GeoDataset,
    query: RegionQuery,
    rng: np.random.Generator | None = None,
    aggregation: Aggregation = Aggregation.MAX,
) -> SelectionResult:
    """Highest-weight-first selection under the visibility constraint.

    ``rng`` only breaks ties among equal weights (by shuffling before
    the stable sort), keeping the signature uniform with the other
    selectors.
    """
    region_ids = dataset.objects_in(query.region)
    # Timed after the region fetch (paper Sec. 7.1 convention).
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    started = time.perf_counter()

    selected: list[int] = []
    if len(region_ids):
        order = region_ids
        if rng is not None:
            order = rng.permutation(region_ids)
        by_weight = order[np.argsort(-dataset.weights[order], kind="stable")]
        sel_xs: list[float] = []
        sel_ys: list[float] = []
        for obj in by_weight:
            if len(selected) == query.k:
                break
            x = float(dataset.xs[obj])
            y = float(dataset.ys[obj])
            if selected:
                dists = np.hypot(
                    np.asarray(sel_xs) - x, np.asarray(sel_ys) - y
                )
                if float(dists.min()) < query.theta:
                    continue
            selected.append(int(obj))
            sel_xs.append(x)
            sel_ys.append(y)

    selected_arr = np.asarray(selected, dtype=np.int64)
    score = representative_score(dataset, region_ids, selected_arr, aggregation)
    return SelectionResult(
        selected=selected_arr,
        score=score,
        region_ids=region_ids,
        stats={
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            "elapsed_s": time.perf_counter() - started,
            "population": int(len(region_ids)),
        },
    )
