"""Uniform random selection with the visibility constraint.

The paper's main baseline ("Random is a uniform random selection
strategy used in [48, 49] ... we repeatedly pick a random object o if
adding o into the current result does not break the visibility
constraint", Sec. 7.1).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.problem import Aggregation, RegionQuery, SelectionResult
from repro.core.scoring import representative_score


def random_select(
    dataset: GeoDataset,
    query: RegionQuery,
    rng: np.random.Generator | None = None,
    aggregation: Aggregation = Aggregation.MAX,
) -> SelectionResult:
    """Pick ``k`` random region objects that stay mutually ``θ``-apart.

    Objects are visited in a random permutation; each is kept if it
    does not conflict with anything already kept.  Terminates when
    ``k`` objects are selected or the permutation is exhausted (the
    region may admit fewer than ``k`` visible objects).
    """
    # Seeded default: an omitted rng must still give run-to-run
    # reproducible selections (the paper's evaluation contract).
    rng = rng or np.random.default_rng(0)
    region_ids = dataset.objects_in(query.region)
    # Timed after the region fetch, matching the paper's "we report the
    # runtime after the object fetching is finished" (Sec. 7.1).
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    started = time.perf_counter()

    selected: list[int] = []
    if len(region_ids):
        order = rng.permutation(region_ids)
        sel_xs: list[float] = []
        sel_ys: list[float] = []
        for obj in order:
            if len(selected) == query.k:
                break
            x = float(dataset.xs[obj])
            y = float(dataset.ys[obj])
            if selected:
                dists = np.hypot(
                    np.asarray(sel_xs) - x, np.asarray(sel_ys) - y
                )
                if float(dists.min()) < query.theta:
                    continue
            selected.append(int(obj))
            sel_xs.append(x)
            sel_ys.append(y)

    selected_arr = np.asarray(selected, dtype=np.int64)
    score = representative_score(dataset, region_ids, selected_arr, aggregation)
    return SelectionResult(
        selected=selected_arr,
        score=score,
        region_ids=region_ids,
        stats={
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            "elapsed_s": time.perf_counter() - started,
            "population": int(len(region_ids)),
        },
    )
