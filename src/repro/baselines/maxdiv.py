"""k-diversity baselines: MaxMin and MaxSum [17].

Both maximize a diversity objective over pairwise *dissimilarities*
``1 - Sim(oi, oj)``:

* MaxMin: ``f_MIN(S) = min_{oi ≠ oj ∈ S} (1 - Sim(oi, oj))``
* MaxSum: ``f_SUM(S) = Σ_{oi ≠ oj ∈ S} (1 - Sim(oi, oj))``

The implementations are the standard greedy heuristics: seed with the
most mutually dissimilar pair, then repeatedly add the object that
maximizes the objective's increase.  Neither enforces the visibility
constraint (matching the paper's setup, where these baselines are only
compared on representativeness).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.problem import Aggregation, RegionQuery, SelectionResult
from repro.core.scoring import representative_score


def _seed_pair(
    dataset: GeoDataset, region_ids: np.ndarray, rng: np.random.Generator
) -> tuple[int, int]:
    """A highly dissimilar pair to seed the diversity greedy.

    Exact max-dissimilarity search is quadratic; for large regions we
    approximate by scanning from a random anchor: the object farthest
    (most dissimilar) from the anchor, then the object most dissimilar
    from that one — the classic 2-sweep heuristic.
    """
    anchor = int(rng.choice(region_ids))
    sims = dataset.similarity.sims_to(anchor, region_ids)
    first = int(region_ids[int(np.argmin(sims))])
    sims = dataset.similarity.sims_to(first, region_ids)
    order = np.argsort(sims)
    second = int(region_ids[int(order[0])])
    if second == first and len(order) > 1:
        second = int(region_ids[int(order[1])])
    return first, second


def _diversity_greedy(
    dataset: GeoDataset,
    query: RegionQuery,
    rng: np.random.Generator | None,
    aggregation: Aggregation,
    objective: str,
) -> SelectionResult:
    # Seeded default: an omitted rng must still give run-to-run
    # reproducible selections (the paper's evaluation contract).
    rng = rng or np.random.default_rng(0)
    region_ids = dataset.objects_in(query.region)
    # Timed after the region fetch (paper Sec. 7.1 convention).
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    started = time.perf_counter()
    n = len(region_ids)

    selected: list[int] = []
    if n > 0:
        if n == 1:
            selected = [int(region_ids[0])]
        else:
            first, second = _seed_pair(dataset, region_ids, rng)
            selected = [first] if first == second else [first, second]

        # `key[i]` tracks, per remaining object, the quantity the next
        # pick maximizes: min dissimilarity to S (MaxMin) or total
        # dissimilarity to S (MaxSum).
        def dissim(v: int) -> np.ndarray:
            return 1.0 - dataset.similarity.sims_to(v, region_ids)
        if objective == "maxmin":
            key = np.minimum(dissim(selected[0]),
                             dissim(selected[-1]))
        else:
            key = dissim(selected[0])
            if len(selected) > 1:
                key = key + dissim(selected[-1])

        chosen = {int(i) for i in selected}
        pos_of = {int(obj): pos for pos, obj in enumerate(region_ids)}
        for obj in selected:
            key[pos_of[obj]] = -np.inf
        while len(selected) < min(query.k, n):
            best_pos = int(np.argmax(key))
            if not np.isfinite(key[best_pos]):
                break
            pick = int(region_ids[best_pos])
            selected.append(pick)
            chosen.add(pick)
            key[best_pos] = -np.inf
            update = 1.0 - dataset.similarity.sims_to(pick, region_ids)
            if objective == "maxmin":
                np.minimum(key, update, out=key, where=np.isfinite(key))
            else:
                key = np.where(np.isfinite(key), key + update, key)

    selected_arr = np.asarray(selected, dtype=np.int64)
    score = representative_score(dataset, region_ids, selected_arr, aggregation)
    return SelectionResult(
        selected=selected_arr,
        score=score,
        region_ids=region_ids,
        stats={
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            "elapsed_s": time.perf_counter() - started,
            "population": int(n),
            "objective": objective,
        },
    )


def maxmin_select(
    dataset: GeoDataset,
    query: RegionQuery,
    rng: np.random.Generator | None = None,
    aggregation: Aggregation = Aggregation.MAX,
) -> SelectionResult:
    """Greedy MaxMin diversity selection (no visibility constraint)."""
    return _diversity_greedy(dataset, query, rng, aggregation, "maxmin")


def maxsum_select(
    dataset: GeoDataset,
    query: RegionQuery,
    rng: np.random.Generator | None = None,
    aggregation: Aggregation = Aggregation.MAX,
) -> SelectionResult:
    """Greedy MaxSum diversity selection (no visibility constraint)."""
    return _diversity_greedy(dataset, query, rng, aggregation, "maxsum")
