"""k-means clustering baseline.

The paper's clustering comparator (Sec. 7.2): cluster region objects on
their locations into ``k`` clusters, then "for each cluster we select
the object which is the closest to the cluster centroid".

Implemented from scratch: k-means++ seeding and Lloyd iterations over
numpy arrays.  Visibility is not enforced (per the paper).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.problem import Aggregation, RegionQuery, SelectionResult
from repro.core.scoring import representative_score


def kmeans_plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: centers spread proportionally to squared distance."""
    n = len(points)
    centers = np.empty((k, points.shape[1]), dtype=np.float64)
    centers[0] = points[rng.integers(n)]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for c in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All points coincide with existing centers; duplicate one.
            centers[c:] = centers[0]
            break
        probs = closest_sq / total
        centers[c] = points[rng.choice(n, p=probs)]
        dist_sq = np.sum((points - centers[c]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


def lloyd_iterations(
    points: np.ndarray,
    centers: np.ndarray,
    max_iters: int = 50,
    tol: float = 1e-7,
) -> tuple[np.ndarray, np.ndarray]:
    """Standard Lloyd loop; returns final centers and assignments."""
    k = len(centers)
    assignment = np.zeros(len(points), dtype=np.int64)
    for _ in range(max_iters):
        # Assignment step (squared distances to every center).
        dists = (
            np.sum(points**2, axis=1)[:, None]
            - 2.0 * points @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        assignment = np.argmin(dists, axis=1)
        new_centers = centers.copy()
        for c in range(k):
            members = points[assignment == c]
            if len(members):
                new_centers[c] = members.mean(axis=0)
        shift = float(np.max(np.abs(new_centers - centers)))
        centers = new_centers
        if shift < tol:
            break
    return centers, assignment


def kmeans_select(
    dataset: GeoDataset,
    query: RegionQuery,
    rng: np.random.Generator | None = None,
    aggregation: Aggregation = Aggregation.MAX,
    max_iters: int = 50,
) -> SelectionResult:
    """Cluster the region spatially; pick each cluster's medoid-by-centroid."""
    # Seeded default: an omitted rng must still give run-to-run
    # reproducible selections (the paper's evaluation contract).
    rng = rng or np.random.default_rng(0)
    region_ids = dataset.objects_in(query.region)
    # Timed after the region fetch (paper Sec. 7.1 convention).
    # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
    started = time.perf_counter()
    n = len(region_ids)

    selected: list[int] = []
    if n > 0:
        k = min(query.k, n)
        points = np.column_stack(
            [dataset.xs[region_ids], dataset.ys[region_ids]]
        )
        centers = kmeans_plus_plus_init(points, k, rng)
        centers, assignment = lloyd_iterations(points, centers, max_iters)
        for c in range(k):
            member_pos = np.flatnonzero(assignment == c)
            if len(member_pos) == 0:
                continue
            deltas = points[member_pos] - centers[c]
            nearest = member_pos[int(np.argmin(np.sum(deltas**2, axis=1)))]
            selected.append(int(region_ids[nearest]))
        selected = sorted(set(selected))

    selected_arr = np.asarray(selected, dtype=np.int64)
    score = representative_score(dataset, region_ids, selected_arr, aggregation)
    return SelectionResult(
        selected=selected_arr,
        score=score,
        region_ids=region_ids,
        stats={
            # repro-lint: disable=RL002 -- reporting-only duration measurement (elapsed_s/op timing); never influences which objects are selected
            "elapsed_s": time.perf_counter() - started,
            "population": int(n),
        },
    )
