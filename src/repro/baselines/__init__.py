"""Baseline selectors the paper compares against (Sec. 7.1–7.2).

* :func:`random_select` — uniform random selection with the visibility
  constraint enforced, the sampling strategy of [48, 49].
* :func:`maxmin_select` / :func:`maxsum_select` — k-diversity
  maximization [17]: maximize the minimum (resp. sum) of pairwise
  dissimilarities.
* :func:`disc_select` — DisC diversity [16]: an independent-set cover
  whose radius is tuned until the output size is close to ``k``.
* :func:`kmeans_select` — k-means clustering on locations, selecting
  the object closest to each centroid.
* :func:`topweight_select` — highest-weight objects first (the
  Google-Maps-style default of [14]), visibility-constrained.

Per the paper, MaxMin, MaxSum, DisC and k-means do **not** enforce the
visibility constraint; Random and TopWeight do.  All selectors return
:class:`~repro.core.problem.SelectionResult` with the representative
score evaluated on the full region population, so they are directly
comparable to the greedy.
"""

from repro.baselines.disc import disc_select
from repro.baselines.kmeans import kmeans_select
from repro.baselines.maxdiv import maxmin_select, maxsum_select
from repro.baselines.random_select import random_select
from repro.baselines.tiles import TilePyramid
from repro.baselines.topweight import topweight_select

SELECTOR_REGISTRY = {
    "random": random_select,
    "maxmin": maxmin_select,
    "maxsum": maxsum_select,
    "disc": disc_select,
    "kmeans": kmeans_select,
    "topweight": topweight_select,
}

__all__ = [
    "SELECTOR_REGISTRY",
    "TilePyramid",
    "disc_select",
    "kmeans_select",
    "maxmin_select",
    "maxsum_select",
    "random_select",
    "topweight_select",
]
