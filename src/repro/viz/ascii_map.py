"""Terminal map renderer.

Draws a region as a character grid: unselected objects as light dots
(with density shading), selected objects as ``#`` markers.  Good enough
to *see* the paper's point — selections spread across the data while
following its density — without a graphics stack.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import GeoDataset
from repro.geo.bbox import BoundingBox

_DENSITY_RAMP = " .:-=+*"


def render_ascii(
    dataset: GeoDataset,
    region: BoundingBox,
    selected: np.ndarray | None = None,
    width: int = 72,
    height: int = 28,
    border: bool = True,
) -> str:
    """Render ``region`` of the dataset to a text grid.

    Unselected objects shade cells by count through a density ramp;
    cells holding a selected object always show ``#``.
    """
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    ids = dataset.objects_in(region)
    counts = np.zeros((height, width), dtype=np.int64)
    marks = np.zeros((height, width), dtype=bool)

    def cell_of(x: float, y: float) -> tuple[int, int]:
        col = int((x - region.minx) / max(region.width, 1e-300) * width)
        row = int((y - region.miny) / max(region.height, 1e-300) * height)
        # y grows upward; terminal rows grow downward.
        return (
            min(height - 1, max(0, height - 1 - row)),
            min(width - 1, max(0, col)),
        )

    for obj in ids:
        row, col = cell_of(float(dataset.xs[obj]), float(dataset.ys[obj]))
        counts[row, col] += 1

    if selected is not None:
        for obj in np.asarray(selected, dtype=np.int64):
            if not region.contains_point(
                float(dataset.xs[obj]), float(dataset.ys[obj])
            ):
                continue
            row, col = cell_of(float(dataset.xs[obj]), float(dataset.ys[obj]))
            marks[row, col] = True

    max_count = max(int(counts.max()), 1)
    lines: list[str] = []
    for row in range(height):
        chars: list[str] = []
        for col in range(width):
            if marks[row, col]:
                chars.append("#")
            elif counts[row, col] == 0:
                chars.append(" ")
            else:
                level = counts[row, col] / max_count
                ramp_pos = min(
                    len(_DENSITY_RAMP) - 1,
                    1 + int(level * (len(_DENSITY_RAMP) - 2)),
                )
                chars.append(_DENSITY_RAMP[ramp_pos])
        lines.append("".join(chars))

    if border:
        top = "+" + "-" * width + "+"
        lines = [top] + [f"|{line}|" for line in lines] + [top]
    return "\n".join(lines)
