"""Visualization surface: render selections onto terminal or SVG maps.

This package is the "visualized exploration" face of the library —
what Figures 1 and 6 of the paper show as map screenshots.  The ASCII
renderer is used by the examples to make selections legible in a
terminal; the SVG renderer writes standalone files for the selection
gallery (Fig. 6 analogue).
"""

from repro.viz.ascii_map import render_ascii
from repro.viz.svg_map import render_svg

__all__ = ["render_ascii", "render_svg"]
