"""SVG map renderer.

Writes a standalone SVG of a region: the population as small grey
dots, the selection as red circled markers — the same visual language
as the paper's Figure 6 selection gallery.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

import numpy as np

from repro.core.dataset import GeoDataset
from repro.geo.bbox import BoundingBox


def render_svg(
    dataset: GeoDataset,
    region: BoundingBox,
    selected: np.ndarray | None = None,
    size: int = 480,
    title: str = "",
    path: str | Path | None = None,
    max_background_points: int = 20_000,
) -> str:
    """Render ``region`` to an SVG string (optionally written to ``path``).

    When the region holds more than ``max_background_points`` objects a
    uniform subsample is drawn for the background layer (the selection
    is always drawn in full).
    """
    if size < 16:
        raise ValueError("size must be at least 16 px")
    ids = dataset.objects_in(region)
    if len(ids) > max_background_points:
        step = int(np.ceil(len(ids) / max_background_points))
        ids = ids[::step]

    def px(x: float, y: float) -> tuple[float, float]:
        sx = (x - region.minx) / max(region.width, 1e-300) * size
        sy = size - (y - region.miny) / max(region.height, 1e-300) * size
        return (round(sx, 2), round(sy, 2))

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="#fcfcf8" '
        f'stroke="#888" stroke-width="1"/>',
    ]
    if title:
        parts.append(
            f'<text x="8" y="16" font-size="12" font-family="sans-serif" '
            f'fill="#333">{escape(title)}</text>'
        )
    for obj in ids:
        cx, cy = px(float(dataset.xs[obj]), float(dataset.ys[obj]))
        parts.append(
            f'<circle cx="{cx}" cy="{cy}" r="1.2" fill="#9aa" opacity="0.6"/>'
        )
    if selected is not None:
        for obj in np.asarray(selected, dtype=np.int64):
            x = float(dataset.xs[obj])
            y = float(dataset.ys[obj])
            if not region.contains_point(x, y):
                continue
            cx, cy = px(x, y)
            parts.append(
                f'<circle cx="{cx}" cy="{cy}" r="4" fill="#d33" '
                f'stroke="#fff" stroke-width="1.2"/>'
            )
    parts.append("</svg>")
    svg = "\n".join(parts)
    if path is not None:
        Path(path).write_text(svg, encoding="utf-8")
    return svg
