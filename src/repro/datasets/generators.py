"""Synthetic geospatial corpus generators.

:func:`generate_clustered` produces the raw material — hierarchically
clustered coordinates, weights, topic-leaning texts — and the named
presets (:func:`uk_tweets`, :func:`us_tweets`, :func:`sg_pois`)
configure it to mirror the paper's three datasets at laptop scale.
Scale factors are deliberate and documented (DESIGN.md substitution
table): the paper's absolute sizes (up to 200M tweets) are far beyond
pure-Python RAM, but every experiment's *shape* is scale-free.

Weights are drawn uniformly from [0, 1], exactly as the paper does
("for each geospatial object, we randomly set the weight ω in [0,1]",
Sec. 7.1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.dataset import GeoDataset
from repro.datasets.vocab import TopicModel


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for a synthetic corpus.

    Spatial structure is two-level, like real geo-tagged data:

    * **cities** (``n_clusters`` of them) carry the density skew —
      Gaussian blobs with heavy-tailed sizes and standard deviations
      drawn log-uniformly in ``[city_min_std, city_max_std]``;
    * **neighbourhoods** partition each city into tiny topic patches
      (~``objects_per_topic`` objects each, σ drawn from
      ``[min_std, max_std]``), and every neighbourhood leans toward its
      own slice of the vocabulary.

    The neighbourhood level is what localizes textual similarity in
    space: an object's near-duplicates sit within a viewport of it.
    That locality is a genuine property of geo-text corpora (tweets
    talk about local places, POIs repeat neighbourhood categories) and
    is what makes the paper's prefetch upper bounds (Lemmas 5.1–5.3)
    tight in practice.  ``cluster_fraction`` of objects follow this
    structure; the rest are uniform background noise with random
    topics.
    """

    name: str
    n: int
    n_clusters: int
    cluster_fraction: float = 0.85
    city_min_std: float = 0.01
    city_max_std: float = 0.05
    min_std: float = 0.001
    max_std: float = 0.004
    objects_per_topic: int = 80
    text_length_low: int = 4
    text_length_high: int = 12
    vocab_size: int | None = None
    topic_words: int = 24
    background_words: int = 20_000
    common_words: int = 420
    # Fraction of objects whose text duplicates another object of the
    # same topic — the "retweet" effect.  Real geo-tagged corpora are
    # heavily duplicated, which is what makes small representative
    # sets score highly on them.
    duplicate_fraction: float = 0.0
    seed: int = 2018

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if self.n_clusters < 1:
            raise ValueError("need at least one cluster")
        if not 0.0 <= self.cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be in [0, 1]")
        if not 0.0 <= self.duplicate_fraction < 1.0:
            raise ValueError("duplicate_fraction must be in [0, 1)")
        if self.objects_per_topic < 1:
            raise ValueError("objects_per_topic must be >= 1")

    def max_topics(self) -> int:
        """Upper bound on the number of neighbourhood topics."""
        clustered = int(round(self.n * self.cluster_fraction))
        # One topic per full neighbourhood, plus one spare per city so
        # small cities still get a topic of their own.
        return max(1, clustered // self.objects_per_topic) + self.n_clusters

    def effective_vocab_size(self) -> int:
        """Explicit vocab size, or one sized to fit every topic slice."""
        needed = self.common_words + self.max_topics() * self.topic_words
        if self.vocab_size is None:
            return needed + self.background_words
        if self.vocab_size < needed:
            raise ValueError(
                f"vocab_size {self.vocab_size} too small for "
                f"{self.max_topics()} topics ({needed} words needed)"
            )
        return self.vocab_size


def generate_clustered(
    spec: DatasetSpec,
    with_texts: bool = True,
    index_kind: str = "rtree",
    with_timestamps: bool = False,
) -> GeoDataset:
    """Materialize a :class:`GeoDataset` from a :class:`DatasetSpec`.

    Deterministic under ``spec.seed``.  With ``with_texts=True`` the
    similarity model is TF-IDF cosine over the generated texts (the
    paper's metric); otherwise it is Euclidean-distance similarity and
    no text is stored (much lighter, used by pure-spatial experiments).

    ``with_timestamps=True`` attaches per-object event times in
    ``[0, 1]``: each topic gets a burst center and its objects cluster
    around it (events are stories that flare up and fade), so time
    windows see topical churn the way viewports see spatial clusters.
    Timestamps come from a *derived* RNG seeded off ``spec.seed``, so
    the coordinates/weights/texts are bit-identical with and without
    timestamps.
    """
    rng = np.random.default_rng(spec.seed)

    n_clustered = int(round(spec.n * spec.cluster_fraction))
    n_background = spec.n - n_clustered

    city_centers = rng.random((spec.n_clusters, 2))
    city_stds = np.exp(
        rng.uniform(
            np.log(spec.city_min_std), np.log(spec.city_max_std),
            spec.n_clusters,
        )
    )
    # City sizes follow a heavy-tailed split, like real populations.
    city_sizes = rng.dirichlet(np.full(spec.n_clusters, 0.6))
    city_counts = rng.multinomial(n_clustered, city_sizes)

    xs_parts: list[np.ndarray] = []
    ys_parts: list[np.ndarray] = []
    topic_parts: list[np.ndarray] = []
    next_topic = 0
    for c, count in enumerate(city_counts):
        if count == 0:
            continue
        # Partition the city into neighbourhood-scale topic patches.
        n_hoods = max(1, int(round(count / spec.objects_per_topic)))
        hood_centers = city_centers[c] + rng.normal(
            0.0, city_stds[c], (n_hoods, 2)
        )
        hood_stds = np.exp(
            rng.uniform(np.log(spec.min_std), np.log(spec.max_std), n_hoods)
        )
        hood_counts = rng.multinomial(
            count, rng.dirichlet(np.full(n_hoods, 2.0))
        )
        for h, hood_count in enumerate(hood_counts):
            if hood_count == 0:
                continue
            xs_parts.append(
                rng.normal(hood_centers[h, 0], hood_stds[h], hood_count)
            )
            ys_parts.append(
                rng.normal(hood_centers[h, 1], hood_stds[h], hood_count)
            )
            topic_parts.append(
                np.full(hood_count, next_topic + h, dtype=np.int64)
            )
        next_topic += n_hoods

    n_topics = max(next_topic, 1)
    if n_background:
        xs_parts.append(rng.random(n_background))
        ys_parts.append(rng.random(n_background))
        topic_parts.append(
            rng.integers(0, n_topics, n_background, dtype=np.int64)
        )

    xs = np.clip(np.concatenate(xs_parts), 0.0, 1.0)
    ys = np.clip(np.concatenate(ys_parts), 0.0, 1.0)
    topics = np.concatenate(topic_parts)

    # Shuffle so object ids carry no cluster information.
    order = rng.permutation(spec.n)
    xs, ys, topics = xs[order], ys[order], topics[order]
    weights = rng.random(spec.n)

    texts: list[str] | None = None
    if with_texts:
        topic_model = TopicModel(
            n_topics=n_topics,
            vocab_size=spec.effective_vocab_size(),
            topic_words=spec.topic_words,
            common_words=spec.common_words,
            rng=rng,
        )
        lengths = rng.integers(
            spec.text_length_low, spec.text_length_high + 1, spec.n
        )
        texts = topic_model.sample_texts(topics, lengths, rng)
        if spec.duplicate_fraction > 0.0:
            texts, xs, ys = _duplicate_objects(
                texts, xs, ys, topics, spec.duplicate_fraction, rng
            )

    ts: np.ndarray | None = None
    if with_timestamps:
        # Derived RNG: never consumes from `rng`, so every draw above
        # is bit-identical to the with_timestamps=False stream and
        # previously-pinned datasets are unchanged.
        ts_rng = np.random.default_rng((spec.seed, 0x7E3A))
        burst_centers = ts_rng.random(n_topics)
        ts = np.clip(
            burst_centers[topics] + ts_rng.normal(0.0, 0.08, spec.n),
            0.0,
            1.0,
        )

    dataset = GeoDataset.build(
        xs, ys,
        weights=weights,
        texts=texts,
        index_kind=index_kind,
        meta={"spec": spec, "topics": topics},
        ts=ts,
    )
    return dataset


# Spatial jitter for duplicated objects: well below any realistic
# visibility threshold (the paper's default is 3e-3 of a viewport
# side), so a duplicate group behaves like one venue on the map.
_DUPLICATE_JITTER = 5e-6


def _duplicate_objects(
    texts: list[str],
    xs: np.ndarray,
    ys: np.ndarray,
    topics: np.ndarray,
    fraction: float,
    rng: np.random.Generator,
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """Replace a fraction of objects with near-copies of topic mates.

    Models retweets / same-venue posts: a duplicated object repeats
    another object's content *and location* (plus a metre-scale
    jitter), keeping its own weight.  Co-location is the realistic
    part that matters algorithmically — the visibility constraint can
    then suppress a duplicate group with a single selection, exactly
    as one map marker stands for one venue's many posts.
    """
    from repro.datasets.vocab import zipf_weights

    texts = list(texts)
    xs = xs.copy()
    ys = ys.copy()
    by_topic: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    duplicate_mask = rng.random(len(texts)) < fraction
    for i in np.flatnonzero(duplicate_mask):
        topic = int(topics[i])
        entry = by_topic.get(topic)
        if entry is None:
            pool = np.flatnonzero((topics == topic) & ~duplicate_mask)
            # Virality is heavy-tailed: a few posts collect most of the
            # reposts (shuffle first so popularity is not id-correlated).
            pool = rng.permutation(pool)
            entry = (pool, zipf_weights(len(pool), 1.2) if len(pool) else None)
            by_topic[topic] = entry
        pool, popularity = entry
        if len(pool) == 0:
            continue  # every object of this topic was marked duplicate
        source = int(rng.choice(pool, p=popularity))
        texts[i] = texts[source]
        xs[i] = xs[source] + rng.normal(0.0, _DUPLICATE_JITTER)
        ys[i] = ys[source] + rng.normal(0.0, _DUPLICATE_JITTER)
    return texts, xs, ys


def _scaled(default: int) -> int:
    """Apply the REPRO_SCALE env multiplier to a default object count.

    Benchmarks read dataset sizes through this hook so a single
    environment variable scales the whole suite up (toward the paper's
    sizes) or down (for quick smoke runs).
    """
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    return max(1000, int(default * scale))


def uk_tweets(
    n: int | None = None,
    seed: int = 2018,
    with_texts: bool = True,
    with_timestamps: bool = False,
) -> GeoDataset:
    """Analogue of the paper's UK Twitter crawl (1–2M tweets; here ~120k).

    A moderate number of cities with neighbourhood-scale topic patches;
    heavy retweet duplication.
    """
    spec = DatasetSpec(
        name="uk",
        n=n if n is not None else _scaled(120_000),
        n_clusters=14,
        duplicate_fraction=0.45,
        seed=seed,
    )
    return generate_clustered(
        spec, with_texts=with_texts, with_timestamps=with_timestamps
    )


def us_tweets(
    n: int | None = None,
    seed: int = 2018,
    with_texts: bool = True,
    with_timestamps: bool = False,
) -> GeoDataset:
    """Analogue of the paper's US Twitter crawl (100–200M; here ~600k).

    Many cities over a large frame; the workhorse of the SaSS
    experiments, where only a few thousand samples are ever touched.
    """
    spec = DatasetSpec(
        name="us",
        n=n if n is not None else _scaled(600_000),
        n_clusters=40,
        city_min_std=0.006,
        city_max_std=0.035,
        duplicate_fraction=0.45,
        seed=seed,
    )
    return generate_clustered(
        spec, with_texts=with_texts, with_timestamps=with_timestamps
    )


def sg_pois(
    n: int | None = None,
    seed: int = 2018,
    with_texts: bool = True,
    with_timestamps: bool = False,
) -> GeoDataset:
    """Analogue of the paper's Singapore Foursquare POIs (322k; here ~60k).

    Dense, compact clusters (a city-state), shorter category-like
    texts, moderate duplication (POI categories repeat).
    """
    spec = DatasetSpec(
        name="poi",
        n=n if n is not None else _scaled(60_000),
        n_clusters=24,
        cluster_fraction=0.92,
        city_min_std=0.008,
        city_max_std=0.04,
        text_length_low=2,
        text_length_high=6,
        objects_per_topic=60,
        duplicate_fraction=0.3,
        seed=seed,
    )
    return generate_clustered(
        spec, with_texts=with_texts, with_timestamps=with_timestamps
    )
