"""Synthetic vocabulary and topic model for generated corpora.

Words are pronounceable consonant-vowel syllable strings (so demo
output reads naturally) generated deterministically from a seed.  A
:class:`TopicModel` assigns each topic a Zipf-weighted distribution
over a topic-specific slice of the vocabulary plus a shared common
slice, mimicking how real geo-tagged text mixes local vocabulary
("brunch", "gallery") with ubiquitous terms.
"""

from __future__ import annotations

import numpy as np

_CONSONANTS = list("bcdfghjklmnprstvz")
_VOWELS = list("aeiou")


def make_vocabulary(size: int, rng: np.random.Generator) -> list[str]:
    """``size`` distinct pronounceable pseudo-words."""
    words: list[str] = []
    seen: set[str] = set()
    while len(words) < size:
        syllables = rng.integers(2, 5)
        word = "".join(
            _CONSONANTS[rng.integers(len(_CONSONANTS))]
            + _VOWELS[rng.integers(len(_VOWELS))]
            for _ in range(syllables)
        )
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


def zipf_weights(size: int, exponent: float = 1.1) -> np.ndarray:
    """Normalized Zipf weights ``rank^-exponent`` over ``size`` items."""
    ranks = np.arange(1, size + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


class TopicModel:
    """Topics over a synthetic vocabulary.

    Each word of a document comes from one of three pools:

    * the **common** pool (probability ``common_prob``) — ubiquitous
      terms shared by everything, Zipf-weighted;
    * the document's **topic slice** (probability ``topic_prob``) —
      the neighbourhood's local vocabulary;
    * the large **background** pool (the rest) — the long tail of
      ordinary language, sampled uniformly, so two *distinct* documents
      are nearly orthogonal even within a topic.

    This mirrors real geo-text: distinct posts from the same place are
    mostly unrelated; strong similarity comes from repeated content
    (retweets, venue posts), which the generator adds separately via
    duplication.
    """

    def __init__(
        self,
        n_topics: int,
        vocab_size: int = 4000,
        topic_words: int = 24,
        common_words: int = 300,
        zipf_exponent: float = 0.6,
        common_prob: float = 0.02,
        topic_prob: float = 0.10,
        rng: np.random.Generator | None = None,
    ):
        if n_topics < 1:
            raise ValueError(f"need at least one topic, got {n_topics}")
        needed = common_words + n_topics * topic_words + 1
        if vocab_size < needed:
            raise ValueError(
                f"vocab_size {vocab_size} too small for {n_topics} topics "
                f"({needed} words needed)"
            )
        if not 0.0 <= common_prob < 1.0:
            raise ValueError("common_prob must be in [0, 1)")
        if not 0.0 <= topic_prob <= 1.0 - common_prob:
            raise ValueError("topic_prob must be in [0, 1 - common_prob]")
        rng = rng or np.random.default_rng()
        self.n_topics = n_topics
        self.common_prob = common_prob
        self.topic_prob = topic_prob
        self.words = make_vocabulary(vocab_size, rng)

        self._common = np.arange(common_words)
        self._common_weights = zipf_weights(common_words, zipf_exponent)
        self._topic_slices = []
        for t in range(n_topics):
            start = common_words + t * topic_words
            self._topic_slices.append(np.arange(start, start + topic_words))
        self._topic_weights = zipf_weights(topic_words, zipf_exponent)
        background_start = common_words + n_topics * topic_words
        self._background = np.arange(background_start, vocab_size)

    def sample_text(
        self, topic: int, length: int, rng: np.random.Generator
    ) -> str:
        """A ``length``-word document leaning toward ``topic``."""
        if not 0 <= topic < self.n_topics:
            raise ValueError(f"topic {topic} out of range")
        ids = []
        pools = rng.random(length)
        n_common = int((pools < self.common_prob).sum())
        n_topic = int(
            (pools < self.common_prob + self.topic_prob).sum()
        ) - n_common
        n_background = length - n_common - n_topic
        if n_common:
            ids.extend(
                rng.choice(self._common, size=n_common, p=self._common_weights)
            )
        if n_topic:
            ids.extend(
                rng.choice(
                    self._topic_slices[topic],
                    size=n_topic,
                    p=self._topic_weights,
                )
            )
        if n_background:
            ids.extend(rng.choice(self._background, size=n_background))
        return " ".join(self.words[int(i)] for i in ids)

    def sample_texts(
        self,
        topics: np.ndarray,
        lengths: np.ndarray,
        rng: np.random.Generator,
    ) -> list[str]:
        """Vector form of :meth:`sample_text` (one doc per entry)."""
        if len(topics) != len(lengths):
            raise ValueError("topics and lengths must align")
        return [
            self.sample_text(int(t), int(ln), rng)
            for t, ln in zip(topics, lengths)
        ]
