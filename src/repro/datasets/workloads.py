"""Query and navigation workload generators (paper Sec. 7.1).

Region queries follow the paper's protocol: "we randomly pick an object
from the dataset and generate a square-shape query region R centered at
this object" — centering on objects (not uniform space) means query
populations reflect the data's density skew, like real user behavior.

Navigation traces chain zoom-in / zoom-out / pan operations with the
paper's geometry: zoom-in targets lie fully inside the previous region,
zoom-out targets fully contain it, pans keep the size and overlap the
previous region by a controllable fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import GeoDataset
from repro.core.problem import RegionQuery
from repro.geo.bbox import BoundingBox
from repro.geo.point import Point


def random_region_queries(
    dataset: GeoDataset,
    count: int,
    region_fraction: float = 0.01,
    k: int = 100,
    theta_fraction: float = 0.003,
    rng: np.random.Generator | None = None,
    min_population: int = 0,
    max_attempts: int = 200,
) -> list[RegionQuery]:
    """``count`` square region queries centered on random objects.

    ``region_fraction`` is the region side length as a fraction of the
    dataset frame side (paper default ``10^-2``).  With
    ``min_population > 0``, regions with fewer objects are rejected and
    redrawn (useful to keep benchmark iterations comparable).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if len(dataset) == 0:
        raise ValueError("cannot generate queries over an empty dataset")
    rng = rng or np.random.default_rng()
    frame = dataset.frame()
    side = region_fraction * max(frame.width, frame.height)

    queries: list[RegionQuery] = []
    attempts = 0
    while len(queries) < count:
        attempts += 1
        if attempts > max_attempts * count:
            raise RuntimeError(
                f"could not find {count} regions with >= {min_population} "
                f"objects after {attempts} attempts"
            )
        anchor = int(rng.integers(len(dataset)))
        center = Point(float(dataset.xs[anchor]), float(dataset.ys[anchor]))
        region = BoundingBox.from_center(center, side)
        if min_population and dataset.index.count_region(region) < min_population:
            continue
        queries.append(
            RegionQuery.with_theta_fraction(region, k=k,
                                            theta_fraction=theta_fraction)
        )
    return queries


def pan_offset_for_overlap(
    region: BoundingBox,
    overlap: float,
    rng: np.random.Generator | None = None,
    axis: str | None = None,
) -> tuple[float, float]:
    """Pan offset ``(dx, dy)`` giving the requested overlap fraction.

    For a single-axis pan by ``d``, overlap is ``(w - |d|) / w``; the
    axis and sign are drawn randomly unless ``axis`` ("x" or "y") is
    pinned.  ``overlap`` must lie in ``[0, 1]``; note overlap 0 means
    the windows merely touch.
    """
    if not 0.0 <= overlap <= 1.0:
        raise ValueError(f"overlap must be in [0, 1], got {overlap}")
    rng = rng or np.random.default_rng()
    if axis is None:
        axis = "x" if rng.random() < 0.5 else "y"
    sign = 1.0 if rng.random() < 0.5 else -1.0
    if axis == "x":
        return (sign * (1.0 - overlap) * region.width, 0.0)
    if axis == "y":
        return (0.0, sign * (1.0 - overlap) * region.height)
    raise ValueError(f"axis must be 'x' or 'y', got {axis!r}")


@dataclass(frozen=True)
class NavigationTrace:
    """A starting region plus a sequence of navigation operations.

    Operations are ``("zoom_in", scale)``, ``("zoom_out", scale)`` or
    ``("pan", (dx, dy))`` tuples, replayable against a
    :class:`~repro.core.session.MapSession` via :meth:`replay`.
    """

    start: BoundingBox
    operations: tuple[tuple[str, object], ...]

    def replay(self, session) -> list:
        """Run the trace on ``session``; returns its NavigationSteps."""
        steps = [session.start(self.start)]
        for kind, arg in self.operations:
            if kind == "zoom_in":
                steps.append(session.zoom_in(scale=arg))
            elif kind == "zoom_out":
                steps.append(session.zoom_out(scale=arg))
            elif kind == "pan":
                dx, dy = arg
                steps.append(session.pan(dx, dy))
            else:
                raise ValueError(f"unknown operation {kind!r}")
        return steps


def random_navigation_trace(
    dataset: GeoDataset,
    length: int,
    region_fraction: float = 0.01,
    zoom_in_scale: float = 0.5,
    zoom_out_scale: float = 2.0,
    pan_overlap: float = 0.5,
    rng: np.random.Generator | None = None,
) -> NavigationTrace:
    """A random but *balanced* trace of ``length`` operations.

    Zoom-ins and zoom-outs are kept paired (never drifting more than
    one level from the start) so the viewport neither collapses to a
    sliver nor swallows the whole frame over a long trace; pans are
    drawn with the requested overlap.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    rng = rng or np.random.default_rng()
    start = random_region_queries(
        dataset, 1, region_fraction=region_fraction, rng=rng
    )[0].region

    operations: list[tuple[str, object]] = []
    region = start
    depth = 0  # zoom level relative to start
    for _ in range(length):
        choices = ["pan"]
        if depth <= 0:
            choices.append("zoom_in")
        if depth >= 0:
            choices.append("zoom_out")
        kind = choices[int(rng.integers(len(choices)))]
        if kind == "zoom_in":
            operations.append(("zoom_in", zoom_in_scale))
            region = region.zoomed_in(zoom_in_scale)
            depth += 1
        elif kind == "zoom_out":
            operations.append(("zoom_out", zoom_out_scale))
            region = region.zoomed_out(zoom_out_scale)
            depth -= 1
        else:
            dx, dy = pan_offset_for_overlap(region, pan_overlap, rng)
            operations.append(("pan", (dx, dy)))
            region = region.panned(dx, dy)
    return NavigationTrace(start=start, operations=tuple(operations))
