"""Dataset substrate: synthetic analogues of the paper's corpora.

The paper evaluates on crawled Twitter data (UK ~1–2M, US ~100–200M
geo-tagged tweets) and a Foursquare POI crawl (Singapore, 322k POIs).
Those corpora are proprietary and far beyond what a pure-Python
environment should hold in RAM, so this package generates synthetic
analogues that preserve the two properties the algorithms actually
depend on:

* **spatial skew** — objects cluster around "cities" (a Gaussian
  mixture over the unit square with a uniform background), so query
  regions have wildly varying populations just like real data;
* **similarity structure** — each cluster leans toward a topic with a
  Zipf-distributed vocabulary, so textual similarity is high within a
  cluster and low across, giving the representative score something
  meaningful to optimize.

Scales are reduced (~100x for "US") and configurable; every generator
is deterministic under a seed.  See DESIGN.md's substitution table.
"""

from repro.datasets.generators import (
    DatasetSpec,
    generate_clustered,
    sg_pois,
    uk_tweets,
    us_tweets,
)
from repro.datasets.loaders import load_csv, load_jsonl, save_csv, save_jsonl
from repro.datasets.vocab import TopicModel, make_vocabulary
from repro.datasets.workloads import (
    NavigationTrace,
    pan_offset_for_overlap,
    random_navigation_trace,
    random_region_queries,
)

__all__ = [
    "DatasetSpec",
    "NavigationTrace",
    "TopicModel",
    "generate_clustered",
    "load_csv",
    "load_jsonl",
    "make_vocabulary",
    "pan_offset_for_overlap",
    "random_navigation_trace",
    "random_region_queries",
    "save_csv",
    "save_jsonl",
    "sg_pois",
    "uk_tweets",
    "us_tweets",
]
