"""Persistence for geospatial corpora (JSON-Lines and CSV).

JSONL is the primary format — one JSON object per line:
``{"x": ..., "y": ..., "w": ..., "t": ..., "text": ...}`` —
streamable, diff-able, no binary dependencies.  CSV is provided for
interchange with spreadsheet/GIS tooling (columns ``x,y,w[,t][,text]``).
Similarity models and indexes are rebuilt on load (they are derived
state); timestamps (``t``) round-trip when the dataset carries them.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.core.dataset import GeoDataset


def save_jsonl(dataset: GeoDataset, path: str | Path) -> None:
    """Write the dataset's objects to ``path`` (one JSON per line)."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for i in range(len(dataset)):
            record = {
                "x": float(dataset.xs[i]),
                "y": float(dataset.ys[i]),
                "w": float(dataset.weights[i]),
            }
            if dataset.ts is not None:
                record["t"] = float(dataset.ts[i])
            if dataset.texts is not None:
                record["text"] = dataset.texts[i]
            handle.write(json.dumps(record, ensure_ascii=False))
            handle.write("\n")


def load_jsonl(
    path: str | Path,
    index_kind: str = "rtree",
) -> GeoDataset:
    """Rebuild a :class:`GeoDataset` from a JSONL file.

    Texts (when present in the file) reconstruct the TF-IDF cosine
    similarity; otherwise the dataset falls back to Euclidean
    similarity, mirroring :meth:`GeoDataset.build` defaults.
    Timestamps are all-or-nothing: a file where only some records
    carry ``t`` is rejected (a silently half-timestamped dataset
    would make every time window wrong).
    """
    path = Path(path)
    xs: list[float] = []
    ys: list[float] = []
    ws: list[float] = []
    ts: list[float] = []
    texts: list[str] = []
    any_text = False
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: invalid JSON") from exc
            try:
                xs.append(float(record["x"]))
                ys.append(float(record["y"]))
            except KeyError as exc:
                raise ValueError(
                    f"{path}:{line_no}: record missing coordinate {exc}"
                ) from None
            ws.append(float(record.get("w", 1.0)))
            t = record.get("t")
            if (t is None and ts) or (
                t is not None and len(ts) != len(xs) - 1
            ):
                raise ValueError(
                    f"{path}:{line_no}: timestamps must be present on "
                    "all records or none"
                )
            if t is not None:
                ts.append(float(t))
            text = record.get("text")
            if text is not None:
                any_text = True
            texts.append(text if text is not None else "")
    return GeoDataset.build(
        np.asarray(xs),
        np.asarray(ys),
        weights=np.asarray(ws),
        texts=texts if any_text else None,
        index_kind=index_kind,
        ts=np.asarray(ts) if ts else None,
    )


def save_csv(dataset: GeoDataset, path: str | Path) -> None:
    """Write the dataset's objects to ``path`` as CSV (``x,y,w[,t][,text]``)."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        fields = ["x", "y", "w"]
        if dataset.ts is not None:
            fields.append("t")
        if dataset.texts:
            fields.append("text")
        writer = csv.writer(handle)
        writer.writerow(fields)
        for i in range(len(dataset)):
            row = [
                f"{float(dataset.xs[i])!r}",
                f"{float(dataset.ys[i])!r}",
                f"{float(dataset.weights[i])!r}",
            ]
            if dataset.ts is not None:
                row.append(f"{float(dataset.ts[i])!r}")
            if dataset.texts is not None:
                row.append(dataset.texts[i])
            writer.writerow(row)


def load_csv(path: str | Path, index_kind: str = "rtree") -> GeoDataset:
    """Rebuild a :class:`GeoDataset` from a CSV written by :func:`save_csv`.

    Requires ``x`` and ``y`` columns; ``w`` defaults to 1.0, a ``t``
    column (when present) restores per-object timestamps, and a
    ``text`` column (when present) reconstructs the TF-IDF cosine
    similarity.
    """
    path = Path(path)
    xs: list[float] = []
    ys: list[float] = []
    ws: list[float] = []
    ts: list[float] = []
    texts: list[str] = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or not {
            "x", "y"
        } <= set(reader.fieldnames):
            raise ValueError(f"{path}: CSV must have 'x' and 'y' columns")
        has_text = "text" in reader.fieldnames
        has_t = "t" in reader.fieldnames
        for line_no, record in enumerate(reader, start=2):
            try:
                xs.append(float(record["x"]))
                ys.append(float(record["y"]))
            except (TypeError, ValueError):
                raise ValueError(
                    f"{path}:{line_no}: invalid coordinates"
                ) from None
            ws.append(float(record.get("w") or 1.0))
            if has_t:
                try:
                    ts.append(float(record["t"]))
                except (TypeError, ValueError):
                    raise ValueError(
                        f"{path}:{line_no}: invalid timestamp"
                    ) from None
            if has_text:
                texts.append(record.get("text") or "")
    return GeoDataset.build(
        np.asarray(xs),
        np.asarray(ys),
        weights=np.asarray(ws),
        texts=texts if has_text else None,
        index_kind=index_kind,
        ts=np.asarray(ts) if has_t else None,
    )
