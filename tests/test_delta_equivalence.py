"""Delta-maintained selections are bit-identical to cold starts.

The raw-speed pass added three determinism-sensitive mechanisms:

* the bulk-heapify :meth:`LazyForwardHeap.push_many`,
* the coarse shard planner (``plan_shards`` / ``group_blocks``), and
* the :class:`DeltaGainMaintainer`, which seeds navigation steps from
  incrementally maintained Lemma-5.1 masses.

Each one claims "selections do not change a bit".  The hypothesis
property at the bottom drives the full composition — random navigation
traces, random datasets, both aggregations, serial and pooled — and
compares a delta-maintained session against a cold twin step by step.
The unit tests pin the individual mechanisms, including every
``delta.skipped.*`` fallback reason.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GeoDataset
from repro.core.delta import BOUND_SAFETY, DeltaGainMaintainer
from repro.core.lazy_heap import LazyForwardHeap
from repro.core.problem import Aggregation
from repro.core.session import MapSession
from repro.geo.bbox import BoundingBox
from repro.parallel import (
    SERIAL_SWEEP_FLOOR,
    SHARDS_PER_WORKER,
    group_blocks,
    plan_shards,
)


@functools.lru_cache(maxsize=16)
def _dataset(seed: int, n: int = 400) -> GeoDataset:
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n), weights=gen.random(n)
    )


START = BoundingBox(0.15, 0.15, 0.85, 0.85)


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------


class TestShardPolicy:
    def test_below_floor_stays_serial(self):
        # 100 rows x 100 population = 10k elements << floor.
        assert plan_shards(100, 100, workers=4) == 0

    def test_above_floor_shards_per_worker(self):
        total = SERIAL_SWEEP_FLOOR  # rows * population >= floor
        assert (
            plan_shards(total, 1, workers=4) == 4 * SHARDS_PER_WORKER
        )

    def test_never_more_shards_than_rows(self):
        assert plan_shards(5, 10**9, workers=4) == 5

    def test_no_workers_no_rows(self):
        assert plan_shards(10**9, 10**9, workers=0) == 0
        assert plan_shards(0, 10**9, workers=4) == 0

    def test_group_blocks_balances_rows(self):
        blocks = [np.arange(s) for s in (4, 4, 4, 4, 4, 4, 4, 4)]
        groups = group_blocks(blocks, 4)
        assert [sum(len(b) for b in g) for g in groups] == [8, 8, 8, 8]

    def test_group_blocks_preserves_order_and_content(self):
        blocks = [np.arange(o, o + 3) for o in range(0, 30, 3)]
        groups = group_blocks(blocks, 3)
        flattened = [b for g in groups for b in g]
        assert all(
            np.array_equal(a, b) for a, b in zip(flattened, blocks)
        )

    def test_group_blocks_rejects_bad_group_count(self):
        with pytest.raises(ValueError):
            group_blocks([np.arange(3)], 0)


# ----------------------------------------------------------------------
# Bulk heap seeding
# ----------------------------------------------------------------------


class TestPushMany:
    def test_matches_sequential_pushes(self):
        gen = np.random.default_rng(3)
        ids = gen.permutation(50).tolist()
        gains = gen.random(50).tolist()
        one_by_one = LazyForwardHeap()
        for obj_id, gain in zip(ids, gains):
            one_by_one.push(obj_id, gain, iteration=0)
        bulk = LazyForwardHeap()
        bulk.push_many(ids, gains, iteration=0)
        assert bulk.pushes == one_by_one.pushes
        fail = pytest.fail  # pop_best must never need a refresh here
        while True:
            a = one_by_one.pop_best(0, lambda _x: fail("refreshed"))
            b = bulk.pop_best(0, lambda _x: fail("refreshed"))
            assert a == b
            if a is None:
                break

    def test_stale_entries_refresh_on_pop(self):
        heap = LazyForwardHeap()
        heap.push_many([1, 2, 3], [9.0, 5.0, 1.0])  # stale bounds
        exact = {1: 0.5, 2: 4.0, 3: 0.9}
        picked = heap.pop_best(0, lambda o: exact[o])
        assert picked == (2, 4.0)

    def test_push_many_supersedes_earlier_entries(self):
        heap = LazyForwardHeap()
        heap.push(7, 100.0, iteration=0)
        heap.push_many([7], [1.0], iteration=0)
        assert heap.pop_best(0, lambda _o: 0.0) == (7, 1.0)


# ----------------------------------------------------------------------
# Delta maintainer internals
# ----------------------------------------------------------------------


class TestDeltaMaintainer:
    def test_first_update_rebuilds(self):
        maintainer = DeltaGainMaintainer()
        maintainer.update(_dataset(1), START)
        assert maintainer.memo is not None
        assert maintainer.metrics.count("delta.rebuilds") == 1

    def test_serves_valid_bounds_after_update(self):
        dataset = _dataset(1)
        maintainer = DeltaGainMaintainer()
        maintainer.update(dataset, START)
        region = START.panned(0.1, 0.0)
        ids = np.sort(dataset.objects_in(region))
        bounds = maintainer.bounds_for(region, ids, ids)
        assert bounds is not None and not np.isnan(bounds).any()
        # Validity: every served bound dominates the exact normalized
        # mass over the current population (the first-iteration gain's
        # similarity term).
        exact = dataset.similarity.weighted_sims_sum(
            ids, ids, dataset.weights[ids]
        ) / len(ids)
        assert (bounds >= exact * (1.0 - BOUND_SAFETY)).all()

    def test_incremental_update_avoids_rebuild(self):
        dataset = _dataset(1)
        maintainer = DeltaGainMaintainer()
        maintainer.update(dataset, START)
        maintainer.update(dataset, START.panned(0.05, 0.02))
        assert maintainer.metrics.count("delta.rebuilds") == 1
        assert maintainer.metrics.count("delta.updates") == 1
        # Incremental masses agree with a from-scratch rebuild.
        memo = maintainer.memo
        fresh = DeltaGainMaintainer()
        fresh.update(dataset, START.panned(0.05, 0.02))
        assert np.array_equal(memo.ids, fresh.memo.ids)
        np.testing.assert_allclose(
            memo.masses, fresh.memo.masses, rtol=1e-12
        )

    def test_teleport_triggers_rebuild(self):
        dataset = _dataset(1)
        maintainer = DeltaGainMaintainer()
        maintainer.update(dataset, BoundingBox(0.0, 0.0, 0.3, 0.3))
        maintainer.update(dataset, BoundingBox(0.7, 0.7, 1.0, 1.0))
        assert maintainer.metrics.count("delta.rebuilds") == 2

    def test_skip_reasons(self):
        dataset = _dataset(1)
        maintainer = DeltaGainMaintainer()
        ids = np.arange(5, dtype=np.int64)
        assert maintainer.bounds_for(START, ids, ids) is None
        assert maintainer.metrics.count("delta.skipped.no_memo") == 1
        maintainer.update(dataset, START)
        far = BoundingBox(30.0, 30.0, 31.0, 31.0)
        assert maintainer.bounds_for(far, ids, ids) is None
        assert maintainer.metrics.count("delta.skipped.not_contained") == 1
        empty = np.empty(0, dtype=np.int64)
        assert maintainer.bounds_for(START, empty, empty) is None
        assert maintainer.metrics.count("delta.skipped.empty") == 1

    def test_population_guard_drops_memo(self):
        dataset = _dataset(1)
        maintainer = DeltaGainMaintainer(max_population=10)
        maintainer.update(dataset, START)  # population >> 10
        assert maintainer.memo is None
        assert maintainer.metrics.count("delta.skipped.population") == 1

    def test_invalidate_drops_memo(self):
        dataset = _dataset(1)
        maintainer = DeltaGainMaintainer()
        maintainer.update(dataset, START)
        maintainer.invalidate()
        assert maintainer.memo is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DeltaGainMaintainer(margin=-0.1)
        with pytest.raises(ValueError):
            DeltaGainMaintainer(max_population=0)
        with pytest.raises(ValueError):
            DeltaGainMaintainer(refresh_fraction=0.0)


# ----------------------------------------------------------------------
# Session wiring
# ----------------------------------------------------------------------


class TestSessionDelta:
    def test_delta_serves_overlapping_pan(self):
        with MapSession(_dataset(5), k=40, delta=True) as session:
            session.start(START)
            step = session.pan(0.2, 0.1)
        assert step.delta_seeded
        assert step.stats.get("equivalence_checked") is None  # off
        assert session.metrics.count("delta.serves") >= 1

    def test_swap_dataset_invalidates_memo(self):
        dataset = _dataset(6)
        with MapSession(dataset, k=10, delta=True) as session:
            session.start(START)
            assert session._delta.memo is not None
            session.swap_dataset(_dataset(7))
            assert session._delta.memo is None

    def test_update_failure_degrades_to_cold(self):
        with MapSession(_dataset(8), k=10, delta=True) as session:
            session.start(START)

            def boom(_dataset, _region):
                raise RuntimeError("injected")

            session._delta.update = boom
            step = session.pan(0.1, 0.0)  # commit survives the failure
            assert session.metrics.count("delta.update_errors") == 1
            assert session._delta.memo is None
            assert len(step.result.selected) > 0


# ----------------------------------------------------------------------
# The property: random traces, bit-identical to a cold twin
# ----------------------------------------------------------------------

_MOVES = st.lists(
    st.one_of(
        st.tuples(
            st.just("pan"),
            st.floats(-0.4, 0.4, allow_nan=False),
            st.floats(-0.4, 0.4, allow_nan=False),
        ),
        st.tuples(st.just("zoom_in"), st.floats(0.4, 0.9)),
        st.tuples(st.just("zoom_out"), st.floats(1.1, 2.5)),
    ),
    min_size=1,
    max_size=4,
)


def _run_trace(dataset, moves, aggregation, workers, delta):
    kwargs = {"workers": workers, "batch_size": 32} if workers else {}
    with MapSession(
        dataset,
        k=12,
        aggregation=aggregation,
        delta=delta,
        equivalence_check=delta,
        **kwargs,
    ) as session:
        steps = [session.start(START)]
        for move in moves:
            if move[0] == "pan":
                # Pan offsets are absolute; scale by the live viewport
                # so a post-zoom-in pan still overlaps it.
                region = session.region
                steps.append(
                    session.pan(
                        move[1] * region.width, move[2] * region.height
                    )
                )
            elif move[0] == "zoom_in":
                steps.append(session.zoom_in(move[1]))
            else:
                steps.append(session.zoom_out(move[1]))
    return steps


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 7),
    moves=_MOVES,
    aggregation=st.sampled_from([Aggregation.MAX, Aggregation.SUM]),
    workers=st.sampled_from([0, 2]),
)
def test_delta_trace_bit_identical_to_cold_twin(
    seed, moves, aggregation, workers
):
    dataset = _dataset(seed)
    delta_steps = _run_trace(dataset, moves, aggregation, workers, True)
    cold_steps = _run_trace(dataset, moves, aggregation, 0, False)
    for delta_step, cold_step in zip(delta_steps, cold_steps):
        label = f"{delta_step.operation} seed={seed} workers={workers}"
        assert np.array_equal(
            delta_step.result.selected, cold_step.result.selected
        ), label
        assert delta_step.result.score == cold_step.result.score, label
