"""Tests for the tile-precomputation baseline ([14, 31] analogue)."""

import numpy as np
import pytest

from repro import GeoDataset, RegionQuery, greedy_select
from repro.baselines import TilePyramid
from repro.baselines.tiles import TileKey
from repro.geo import BoundingBox


@pytest.fixture(scope="module")
def dataset():
    gen = np.random.default_rng(9)
    # Spread the clusters so the data frame spans most of the square.
    centers = np.array([[0.2, 0.2], [0.8, 0.25], [0.3, 0.75], [0.7, 0.8]])
    parts = [c + gen.normal(0, 0.05, (300, 2)) for c in centers]
    pts = np.clip(np.concatenate(parts), 0.0, 1.0)
    return GeoDataset.build(pts[:, 0], pts[:, 1])


@pytest.fixture(scope="module")
def pyramid(dataset):
    return TilePyramid(dataset, max_level=3, per_tile_budget=10)


class TestBuild:
    def test_validation(self, dataset):
        with pytest.raises(ValueError):
            TilePyramid(dataset, max_level=-1)
        with pytest.raises(ValueError):
            TilePyramid(dataset, per_tile_budget=0)

    def test_tiles_cover_levels(self, pyramid):
        levels = {key.level for key in pyramid._tiles}
        assert levels == set(range(4))

    def test_root_tile_is_whole_frame(self, pyramid):
        box = pyramid.tile_box(TileKey(0, 0, 0))
        assert box.contains_box(pyramid.frame)

    def test_tile_selections_within_tile(self, pyramid, dataset):
        for key, selected in pyramid._tiles.items():
            box = pyramid.tile_box(key)
            for obj in selected:
                assert box.contains_point(
                    float(dataset.xs[obj]), float(dataset.ys[obj])
                )

    def test_per_tile_budget_respected(self, pyramid):
        assert all(
            len(sel) <= pyramid.per_tile_budget
            for sel in pyramid._tiles.values()
        )

    def test_storage_stats(self, pyramid):
        assert pyramid.tile_count > 0
        assert pyramid.stored_objects() >= pyramid.tile_count


class TestLevelSelection:
    def test_whole_frame_uses_level_zero(self, pyramid):
        assert pyramid.level_for(pyramid.frame) == 0

    def test_small_region_uses_deep_level(self, pyramid):
        tiny = BoundingBox(0.4, 0.4, 0.45, 0.45)
        assert pyramid.level_for(tiny) == pyramid.max_level

    def test_levels_monotone_in_region_size(self, pyramid):
        sides = [1.0, 0.5, 0.25, 0.125, 0.05]
        levels = [
            pyramid.level_for(BoundingBox(0.0, 0.0, s, s)) for s in sides
        ]
        assert levels == sorted(levels)

    def test_tiles_touching_covers_region(self, pyramid):
        # Tiles exist only inside the data frame; coverage is asserted
        # for the part of the viewport where objects can exist.
        region = BoundingBox(0.3, 0.3, 0.7, 0.6)
        effective = region.intersection(pyramid.frame)
        if effective is None:
            pytest.skip("region misses the data frame entirely")
        keys = pyramid.tiles_touching(region, 2)
        union = None
        for key in keys:
            box = pyramid.tile_box(key)
            union = box if union is None else union.union(box)
        assert union.contains_box(effective)


class TestQuery:
    def test_selection_inside_region(self, pyramid, dataset):
        query = RegionQuery(
            region=BoundingBox(0.2, 0.2, 0.6, 0.6), k=10, theta=0.0
        )
        result = pyramid.select(query)
        for obj in result.selected:
            assert query.region.contains_point(
                float(dataset.xs[obj]), float(dataset.ys[obj])
            )
        assert len(result) <= 10

    def test_k_truncation(self, pyramid):
        query = RegionQuery(region=pyramid.frame, k=3, theta=0.0)
        result = pyramid.select(query)
        assert len(result) <= 3

    def test_empty_region(self, pyramid):
        query = RegionQuery(
            region=BoundingBox(5.0, 5.0, 6.0, 6.0), k=5, theta=0.0
        )
        result = pyramid.select(query)
        assert len(result) == 0

    def test_stats_recorded(self, pyramid):
        query = RegionQuery(
            region=BoundingBox(0.1, 0.1, 0.5, 0.5), k=10, theta=0.0
        )
        result = pyramid.select(query)
        assert result.stats["tiles_touched"] >= 1
        assert 0 <= result.stats["level"] <= pyramid.max_level

    def test_live_greedy_beats_tiles_on_arbitrary_regions(
        self, pyramid, dataset
    ):
        """The paper's motivating claim (Sec. 2): pre-defined cells are
        a poor fit for arbitrary user regions."""
        gen = np.random.default_rng(4)
        wins = 0
        trials = 8
        for _ in range(trials):
            # Deliberately tile-misaligned viewports.
            x0, y0 = gen.uniform(0.05, 0.55, 2)
            region = BoundingBox(x0, y0, x0 + 0.37, y0 + 0.37)
            query = RegionQuery(region=region, k=10, theta=0.0)
            live = greedy_select(dataset, query)
            tiled = pyramid.select(query)
            if live.score >= tiled.score - 1e-12:
                wins += 1
        assert wins >= trials - 1  # live greedy essentially always wins
