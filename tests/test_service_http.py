"""HTTP protocol layer: routing, status mapping, wire behavior."""

import asyncio
import json

import numpy as np
import pytest

from repro import GeoDataset
from repro.robustness import (
    CircuitOpen,
    DeadlineExceeded,
    FaultInjected,
    InvalidNavigation,
    OverloadShed,
    RetryBudgetExhausted,
    ServiceClosed,
    SessionLimitExceeded,
    UnknownSession,
)
from repro.service import (
    SelectionService,
    ServiceHTTPServer,
    parse_request,
    status_for,
)


def make_dataset(n=600, seed=5):
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n), weights=gen.random(n)
    )


def make_service(**kwargs):
    kwargs.setdefault("session_options", {"k": 6, "workers": 0})
    kwargs.setdefault("default_deadline_ms", 2000.0)
    return SelectionService({"a": make_dataset()}, **kwargs)


async def raw_exchange(host, port, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(payload)
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    return data


async def request(host, port, method, path, body=None, keep_alive=False):
    data = json.dumps(body).encode() if body is not None else b""
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(data)}\r\nConnection: {connection}\r\n\r\n"
    )
    raw = await raw_exchange(host, port, head.encode() + data)
    status = int(raw.split(b" ", 2)[1])
    payload = json.loads(raw.split(b"\r\n\r\n", 1)[1])
    return status, payload


class TestStatusMapping:
    @pytest.mark.parametrize("exc,status", [
        (OverloadShed("queue_full"), 429),
        (SessionLimitExceeded(4), 429),
        (UnknownSession("s-1"), 404),
        (CircuitOpen("open"), 503),
        (ServiceClosed("bye"), 503),
        (RetryBudgetExhausted("drained"), 503),
        (FaultInjected("chaos"), 503),
        (DeadlineExceeded("late"), 504),
        (InvalidNavigation("bad"), 400),
        (ValueError("bad"), 400),
        (KeyError("missing"), 400),
        (RuntimeError("bug"), 500),
    ])
    def test_status_for(self, exc, status):
        assert status_for(exc) == status


class TestRouting:
    def test_start_route(self):
        req = parse_request("POST", "/v1/sessions", {"region": [0, 0, 1, 1]})
        assert req.op == "start"
        assert req.params == {"region": [0, 0, 1, 1]}

    def test_session_op_route(self):
        req = parse_request("POST", "/v1/sessions/s-1/pan", {"dx": 0.1})
        assert (req.op, req.session_id) == ("pan", "s-1")

    def test_close_route(self):
        req = parse_request("DELETE", "/v1/sessions/s-1", None)
        assert (req.op, req.session_id) == ("close", "s-1")

    def test_deadline_ms_extracted(self):
        req = parse_request(
            "POST", "/v1/sessions/s-1/pan", {"dx": 0.1, "deadline_ms": 50}
        )
        assert req.deadline_ms == 50.0
        assert "deadline_ms" not in req.params

    @pytest.mark.parametrize("method,path", [
        ("GET", "/v1/sessions"),
        ("POST", "/v1/sessions/s-1"),
        ("POST", "/v1/sessions/s-1/start"),
        ("POST", "/v1/sessions/s-1/bogus"),
        ("POST", "/elsewhere"),
    ])
    def test_unroutable(self, method, path):
        with pytest.raises(ValueError):
            parse_request(method, path, {})


class TestServer:
    def test_full_session_lifecycle(self):
        async def go():
            service = make_service()
            async with ServiceHTTPServer(service, port=0) as server:
                status, health = await request(
                    server.host, server.port, "GET", "/healthz"
                )
                assert status == 200 and health["status"] == "ok"

                status, started = await request(
                    server.host, server.port, "POST", "/v1/sessions",
                    {"region": [0.2, 0.2, 0.8, 0.8]},
                )
                assert status == 200 and started["ok"]
                assert len(started["selection"]) > 0
                sid = started["session_id"]

                status, step = await request(
                    server.host, server.port, "POST",
                    f"/v1/sessions/{sid}/zoom_in", {"scale": 0.5},
                )
                assert status == 200 and step["ok"]

                status, _ = await request(
                    server.host, server.port, "DELETE", f"/v1/sessions/{sid}"
                )
                assert status == 200

                status, gone = await request(
                    server.host, server.port, "POST",
                    f"/v1/sessions/{sid}/pan", {"dx": 0.1},
                )
                assert status == 404
                assert gone["error_type"] == "UnknownSession"

                status, metrics = await request(
                    server.host, server.port, "GET", "/metrics"
                )
                assert status == 200
                assert metrics["counters"]["service.requests"] >= 4
                assert "service.request_seconds" in metrics["timers"]

        asyncio.run(go())

    def test_keep_alive_reuses_connection(self):
        async def go():
            service = make_service()
            async with ServiceHTTPServer(service, port=0) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                for _ in range(3):
                    writer.write(
                        b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
                    )
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    assert b"200" in head.split(b"\r\n", 1)[0]
                    length = int(
                        [
                            line.split(b":")[1]
                            for line in head.split(b"\r\n")
                            if line.lower().startswith(b"content-length")
                        ][0]
                    )
                    await reader.readexactly(length)
                writer.close()
                await writer.wait_closed()

        asyncio.run(go())

    def test_malformed_inputs_get_4xx(self):
        async def go():
            service = make_service()
            async with ServiceHTTPServer(service, port=0) as server:
                raw = await raw_exchange(
                    server.host, server.port, b"NONSENSE\r\n\r\n"
                )
                assert b"400" in raw.split(b"\r\n", 1)[0]

                body = b"{not json"
                head = (
                    "POST /v1/sessions HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
                ).encode()
                raw = await raw_exchange(server.host, server.port, head + body)
                assert b"400" in raw.split(b"\r\n", 1)[0]

                head = (
                    "POST /v1/sessions HTTP/1.1\r\nHost: t\r\n"
                    "Content-Length: 99999999\r\nConnection: close\r\n\r\n"
                ).encode()
                raw = await raw_exchange(server.host, server.port, head)
                assert b"413" in raw.split(b"\r\n", 1)[0]

                status, _ = await request(
                    server.host, server.port, "GET", "/no/such/route"
                )
                assert status == 404

        asyncio.run(go())

    def test_unknown_dataset_is_400(self):
        async def go():
            service = make_service()
            async with ServiceHTTPServer(service, port=0) as server:
                status, payload = await request(
                    server.host, server.port, "POST", "/v1/sessions",
                    {"dataset": "nope"},
                )
                assert status == 400
                assert "unknown dataset" in payload["error"]

        asyncio.run(go())

    def test_stop_closes_service(self):
        async def go():
            service = make_service()
            server = ServiceHTTPServer(service, port=0)
            await server.start()
            status, payload = await request(
                server.host, server.port, "POST", "/v1/sessions", {}
            )
            assert status == 200
            await server.stop()
            assert service.sessions.count == 0
            # A handle() after shutdown is a typed ServiceClosed.
            from repro.service import ServiceRequest

            response = await service.handle(ServiceRequest(op="start"))
            assert response.error_type == "ServiceClosed"

        asyncio.run(go())
