"""Tests for the GeoDataset handle."""

import numpy as np
import pytest

from repro import GeoDataset
from repro.geo import BoundingBox
from repro.similarity import (
    CombinedSimilarity,
    CosineTextSimilarity,
    EuclideanSimilarity,
    MatrixSimilarity,
)


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            GeoDataset.build(np.array([0.0, 1.0]), np.array([0.0]))

    def test_weight_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            GeoDataset.build(
                np.array([0.0]), np.array([0.0]), weights=np.array([1.5])
            )

    def test_similarity_size_mismatch(self):
        sim = MatrixSimilarity.random(3, np.random.default_rng(0))
        with pytest.raises(ValueError, match="similarity"):
            GeoDataset.build(np.zeros(2), np.zeros(2), similarity=sim)

    def test_texts_length_mismatch(self):
        with pytest.raises(ValueError, match="texts"):
            GeoDataset.build(np.zeros(2), np.zeros(2), texts=["only one"])


class TestBuilders:
    def test_default_similarity_is_euclidean(self):
        ds = GeoDataset.build(np.array([0.0, 1.0]), np.array([0.0, 0.0]))
        assert isinstance(ds.similarity, EuclideanSimilarity)

    def test_texts_build_cosine(self):
        ds = GeoDataset.build(
            np.array([0.0, 1.0]), np.array([0.0, 0.0]),
            texts=["coffee shop", "coffee roastery"],
        )
        assert isinstance(ds.similarity, CosineTextSimilarity)
        assert ds.similarity.sim(0, 1) > 0.0

    def test_default_weights_are_unit(self):
        ds = GeoDataset.build(np.array([0.5]), np.array([0.5]))
        assert ds.weights.tolist() == [1.0]

    def test_from_tweets_mixes_text_and_space(self):
        xs = np.array([0.0, 0.001, 0.9])
        ys = np.array([0.0, 0.001, 0.9])
        texts = ["rainy monday", "rainy monday", "rainy monday"]
        ds = GeoDataset.from_tweets(xs, ys, texts, spatial_sigma=0.1)
        assert isinstance(ds.similarity, CombinedSimilarity)
        # Same text, near vs far location: nearness must matter.
        assert ds.similarity.sim(0, 1) > ds.similarity.sim(0, 2)

    def test_index_kind_selectable(self):
        from repro.index import GridIndex

        ds = GeoDataset.build(
            np.array([0.1, 0.9]), np.array([0.1, 0.9]), index_kind="grid"
        )
        assert isinstance(ds.index, GridIndex)


class TestQueries:
    @pytest.fixture
    def ds(self):
        gen = np.random.default_rng(1)
        return GeoDataset.build(gen.random(200), gen.random(200))

    def test_objects_in(self, ds):
        box = BoundingBox(0.0, 0.0, 0.5, 0.5)
        ids = ds.objects_in(box)
        mask = box.contains_many(ds.xs, ds.ys)
        assert ids.tolist() == np.flatnonzero(mask).tolist()

    def test_frame_covers_all(self, ds):
        frame = ds.frame()
        assert frame.contains_many(ds.xs, ds.ys).all()

    def test_frame_of_empty_dataset(self):
        ds = GeoDataset.build(np.array([]), np.array([]))
        assert ds.frame() == BoundingBox.unit()

    def test_conflicts_with_strict_inequality(self):
        xs = np.array([0.0, 0.1, 0.2])
        ys = np.zeros(3)
        ds = GeoDataset.build(xs, ys)
        # theta = 0.1: object 1 at distance exactly 0.1 does NOT conflict
        # (constraint is dist >= theta).
        conflicts = ds.conflicts_with(0, 0.1)
        assert conflicts.tolist() == [0]
        conflicts = ds.conflicts_with(0, 0.10001)
        assert conflicts.tolist() == [0, 1]

    def test_subset_texts(self):
        ds = GeoDataset.build(
            np.array([0.0, 1.0]), np.array([0.0, 1.0]), texts=["a", "b"]
        )
        assert ds.subset_texts(np.array([1, 0])) == ["b", "a"]

    def test_subset_texts_without_texts(self, ds):
        assert ds.subset_texts(np.array([0, 1])) == ["", ""]

    def test_len(self, ds):
        assert len(ds) == 200
