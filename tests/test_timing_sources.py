"""Guard: all elapsed-time measurement uses the monotonic clock.

``time.time()`` is wall-clock and can jump (NTP slew, DST, manual
adjustment), which corrupts both the reported response times and —
worse — the :class:`~repro.robustness.Deadline` arithmetic.  Every
duration in this codebase must come from ``time.perf_counter()``
(or ``time.monotonic()``); this test fails the build if a wall-clock
read sneaks back in.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"

WALL_CLOCK = re.compile(r"\btime\.time\s*\(")


def _offenders(root):
    hits = []
    for path in sorted(root.rglob("*.py")):
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if WALL_CLOCK.search(line):
                hits.append(f"{path.relative_to(root.parent)}:{lineno}")
    return hits


def test_no_wall_clock_timing_in_src():
    assert _offenders(SRC) == []


def test_no_wall_clock_timing_in_benchmarks():
    assert _offenders(BENCHMARKS) == []
