"""The benchmark suite must be runnable from the repository root.

Regression coverage for the path fragility fixed in
``benchmarks/conftest.py``: the suite used to rely on the process CWD
(and an externally exported ``PYTHONPATH``) to find both the sibling
``common`` module and ``src/``.  These tests collect the benchmark
modules in a subprocess with a *clean* environment — no ``PYTHONPATH``
— from the repo root, which is exactly how CI invokes them.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

BENCH_MODULES = [
    "bench_robustness_overhead.py",
    "bench_session_cache.py",
    "bench_trace_overhead.py",
]


def _collect(path: str, cwd: Path) -> subprocess.CompletedProcess:
    env = {k: v for k, v in os.environ.items() if k != "PYTHONPATH"}
    return subprocess.run(
        [sys.executable, "-m", "pytest", path, "--collect-only", "-q",
         "-p", "no:cacheprovider"],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.mark.parametrize("module", BENCH_MODULES)
def test_bench_collects_from_repo_root(module):
    proc = _collect(f"benchmarks/{module}", REPO_ROOT)
    assert proc.returncode == 0, (
        f"collection from repo root failed:\n{proc.stdout}\n{proc.stderr}"
    )


def test_bench_collects_from_benchmarks_dir():
    # The historical invocation (CI used `working-directory: benchmarks`)
    # must keep working too.
    proc = _collect("bench_robustness_overhead.py", REPO_ROOT / "benchmarks")
    assert proc.returncode == 0, (
        f"collection from benchmarks/ failed:\n{proc.stdout}\n{proc.stderr}"
    )


def test_results_dir_is_file_anchored():
    # Reports must land in benchmarks/results/ no matter the CWD.
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        import common
        assert common.RESULTS_DIR == REPO_ROOT / "benchmarks" / "results"
    finally:
        sys.path.remove(str(REPO_ROOT / "benchmarks"))
