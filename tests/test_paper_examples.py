"""Tests pinned to the paper's own worked examples and proofs.

* Appendix D (Example D.1): the greedy run on the 6-object instance.
* Lemma 4.3: at most 7 θ-separated objects conflict with an outsider.
* Theorem 3.2: the Minimum-Dominating-Set reduction instances behave as
  the proof requires (0/1 similarities, full-score iff dominating).
"""

import numpy as np
import pytest

from repro import (
    GeoDataset,
    RegionQuery,
    greedy_select,
    representative_score,
)
from repro.geo import BoundingBox
from repro.similarity import MatrixSimilarity


class TestExampleD1:
    """The heap walk-through of Appendix D.

    Six objects; the similarity table gives object o1 initial mass 2.6,
    o4 2.5, o3 2.3, o2 2.2.  The greedy selects o1 first; o2 and o5
    conflict with o1 and are removed; recomputation puts o4 (or o3, who
    tie at 1.2) next — the example selects o4.
    """

    def build(self):
        # Index mapping: o1..o6 -> 0..5.  Similarities from Figure 16's
        # table (symmetric closure; unspecified pairs 0).  Values chosen
        # to reproduce the masses 2.6/2.2/2.3/2.5 of Figure 17(a).
        sim = np.eye(6)

        def set_pair(i, j, v):
            sim[i, j] = sim[j, i] = v

        set_pair(0, 1, 0.9)   # o1-o2
        set_pair(0, 2, 0.2)   # o1-o3
        set_pair(0, 3, 0.5)   # o1-o4
        set_pair(1, 2, 0.3)   # o2-o3
        set_pair(2, 3, 0.8)   # o3-o4
        set_pair(3, 4, 0.2)   # o4-o5
        set_pair(4, 5, 0.3)   # o5-o6
        # Masses: o1: 1+.9+.2+.5 = 2.6 ✓; o2: 1+.9+.3 = 2.2 ✓;
        #         o3: 1+.2+.3+.8 = 2.3 ✓; o4: 1+.5+.8+.2 = 2.5 ✓.

        # Layout: o2 and o5 within θ of o1; everyone else far apart.
        xs = np.array([0.00, 0.01, 0.50, 0.70, 0.02, 0.90])
        ys = np.array([0.00, 0.00, 0.50, 0.10, 0.01, 0.90])
        return GeoDataset.build(
            xs, ys, similarity=MatrixSimilarity(sim)
        )

    def test_greedy_walkthrough(self):
        ds = self.build()
        query = RegionQuery(
            region=BoundingBox(-0.1, -0.1, 1.0, 1.0), k=2, theta=0.1
        )
        result = greedy_select(ds, query)
        # o1 first (max mass), then o4 (max marginal after removal of
        # the conflicting o2, o5).
        assert result.selected.tolist() == [0, 3]

    def test_first_pick_mass(self):
        ds = self.build()
        ids = np.arange(6)
        mass = representative_score(ds, ids, np.array([0]))
        assert mass == pytest.approx(2.6 / 6.0)

    def test_marginal_of_o4_after_o1(self):
        ds = self.build()
        ids = np.arange(6)
        with_o1 = representative_score(ds, ids, np.array([0]))
        with_both = representative_score(ds, ids, np.array([0, 3]))
        # The appendix prints Δ(o4 | {o1}) = 1.2, but that is
        # inconsistent with its own initial masses (2.6/2.2/2.3/2.5),
        # which uniquely determine sim(o3,o4)=0.8 and sim(o4,o5)=0.2
        # and give Δ = 1.3.  We pin the value implied by the masses.
        assert (with_both - with_o1) == pytest.approx(1.3 / 6.0)


class TestLemma43Geometry:
    """At most 7 members of a θ-separated set lie within θ of a point."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_theta_separated_sets(self, seed):
        gen = np.random.default_rng(seed)
        theta = 0.05
        # Greedily build a theta-separated set.
        pts: list[tuple[float, float]] = []
        for _ in range(3000):
            x, y = gen.random(2)
            if all(np.hypot(x - px, y - py) >= theta for px, py in pts):
                pts.append((x, y))
        pts_arr = np.array(pts)
        # For random probe points, count conflicts (strict < theta).
        for _ in range(50):
            x, y = gen.random(2)
            dists = np.hypot(pts_arr[:, 0] - x, pts_arr[:, 1] - y)
            assert int((dists < theta).sum()) <= 7

    def test_seven_is_achievable(self):
        """The hexagonal packing of Figure 15 realizes exactly 7."""
        theta = 1.0
        center = (0.0, 0.0)
        ring = [
            (theta * np.cos(a), theta * np.sin(a))
            for a in np.linspace(0, 2 * np.pi, 7)[:-1]
        ]
        pts = np.array([center] + ring)
        # The set is theta-separated (ring radius = theta, neighbors
        # exactly theta apart).
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                assert np.hypot(*(pts[i] - pts[j])) >= theta - 1e-9
        # A probe just off the center conflicts with all 7 center+ring
        # points? No — ring points are at distance exactly theta from
        # the center, so a probe epsilon-near a ring gap conflicts with
        # center plus its 2-3 nearest ring points.  The classical tight
        # case: probe at the center position conflicts with center only
        # (others at exactly theta).  Shrink the ring slightly to show
        # 7 conflicts are possible.
        squeezed = np.array([center] + [
            ((theta - 1e-6) * np.cos(a), (theta - 1e-6) * np.sin(a))
            for a in np.linspace(0, 2 * np.pi, 7)[:-1]
        ])
        probe = np.array(center)
        dists = np.hypot(squeezed[:, 0] - probe[0], squeezed[:, 1] - probe[1])
        assert int((dists < theta).sum()) == 7


class TestMdsReduction:
    """Theorem 3.2: SOS instances built from graphs solve MDS."""

    def build_instance(self, edges, n):
        sim = np.eye(n)
        for u, v in edges:
            sim[u, v] = sim[v, u] = 1.0
        gen = np.random.default_rng(0)
        # Positions far apart so theta never binds.
        xs = np.arange(n, dtype=np.float64)
        ys = gen.random(n)
        return GeoDataset.build(xs, ys, similarity=MatrixSimilarity(sim))

    def test_star_graph_dominated_by_center(self):
        # Star: node 0 adjacent to all others; {0} dominates.
        n = 6
        edges = [(0, i) for i in range(1, n)]
        ds = self.build_instance(edges, n)
        ids = np.arange(n)
        assert representative_score(
            ds, ids, np.array([0])
        ) == pytest.approx(1.0)
        # A leaf alone does not dominate.
        assert representative_score(ds, ids, np.array([1])) < 1.0

    def test_path_graph_needs_two(self):
        # Path 0-1-2-3-4: minimum dominating set has size 2 ({1, 3}).
        edges = [(i, i + 1) for i in range(4)]
        ds = self.build_instance(edges, 5)
        ids = np.arange(5)
        assert representative_score(
            ds, ids, np.array([1, 3])
        ) == pytest.approx(1.0)
        for single in range(5):
            assert representative_score(ds, ids, np.array([single])) < 1.0

    def test_greedy_solves_easy_mds(self):
        # On the star graph, greedy's first pick is the center and the
        # score is full — i.e. greedy finds the dominating set.
        n = 6
        edges = [(0, i) for i in range(1, n)]
        ds = self.build_instance(edges, n)
        query = RegionQuery(
            region=BoundingBox(-1.0, -1.0, float(n), 2.0), k=1, theta=0.0
        )
        result = greedy_select(ds, query)
        assert result.selected.tolist() == [0]
        assert result.score == pytest.approx(1.0)
