"""Tests for the lazy-forward heap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lazy_heap import LazyForwardHeap


class TestBasics:
    def test_empty_pop(self):
        heap = LazyForwardHeap()
        assert heap.pop_best(0, lambda _: 0.0) is None
        assert len(heap) == 0

    def test_fresh_entries_pop_in_gain_order(self):
        heap = LazyForwardHeap()
        heap.push(1, 0.5, iteration=0)
        heap.push(2, 0.9, iteration=0)
        heap.push(3, 0.1, iteration=0)
        fail = pytest.fail
        order = [
            heap.pop_best(0, lambda _: fail("no recompute expected"))
            for _ in range(3)
        ]
        assert [obj for obj, _ in order] == [2, 1, 3]
        assert [g for _, g in order] == [0.9, 0.5, 0.1]

    def test_tie_breaks_by_smaller_id(self):
        heap = LazyForwardHeap()
        heap.push(9, 0.5, iteration=0)
        heap.push(4, 0.5, iteration=0)
        obj, _ = heap.pop_best(0, lambda _: 0.0)
        assert obj == 4

    def test_deactivate_skips_entries(self):
        heap = LazyForwardHeap()
        heap.push(1, 0.9, iteration=0)
        heap.push(2, 0.5, iteration=0)
        heap.deactivate(1)
        assert len(heap) == 1
        obj, _ = heap.pop_best(0, lambda _: 0.0)
        assert obj == 2

    def test_deactivate_many(self):
        heap = LazyForwardHeap()
        for i in range(5):
            heap.push(i, float(i), iteration=0)
        heap.deactivate_many(np.array([0, 2, 4]))
        assert sorted(heap.active_ids()) == [1, 3]

    def test_repush_supersedes(self):
        heap = LazyForwardHeap()
        heap.push(1, 0.9, iteration=0)
        heap.push(1, 0.2, iteration=0)  # newer value wins
        heap.push(2, 0.5, iteration=0)
        obj, gain = heap.pop_best(0, lambda _: 0.0)
        assert (obj, gain) == (2, 0.5)
        obj, gain = heap.pop_best(0, lambda _: 0.0)
        assert (obj, gain) == (1, 0.2)

    def test_is_active(self):
        heap = LazyForwardHeap()
        heap.push(7, 1.0)
        assert heap.is_active(7)
        heap.deactivate(7)
        assert not heap.is_active(7)


class TestLazyForward:
    def test_stale_entries_recomputed(self):
        heap = LazyForwardHeap()
        heap.push(1, 0.9)  # stale (default tag)
        heap.push(2, 0.8)
        calls = []

        def gain(obj):
            calls.append(obj)
            return {1: 0.1, 2: 0.7}[obj]

        obj, gain_value = heap.pop_best(0, gain)
        # Object 1's refreshed gain (0.1) drops below object 2's bound
        # (0.8); 2 is then refreshed to 0.7 which dominates 0.1.
        assert (obj, gain_value) == (2, 0.7)
        assert calls == [1, 2]

    def test_celf_shortcut_skips_reinsert(self):
        heap = LazyForwardHeap()
        heap.push(1, 0.9)
        heap.push(2, 0.3)
        calls = []

        def gain(obj):
            calls.append(obj)
            return 0.5  # still above 2's bound of 0.3

        obj, gain_value = heap.pop_best(0, gain)
        assert (obj, gain_value) == (1, 0.5)
        assert calls == [1]  # object 2 never recomputed

    def test_iteration_tag_freshness(self):
        heap = LazyForwardHeap()
        heap.push(1, 0.9, iteration=0)
        obj, _ = heap.pop_best(0, lambda _: pytest.fail("fresh at iter 0"))
        assert obj == 1
        # Same tag is stale at a later iteration.
        heap.push(2, 0.9, iteration=0)
        recomputed = []
        heap.pop_best(3, lambda o: recomputed.append(o) or 0.5)
        assert recomputed == [2]

    @settings(max_examples=50, deadline=None)
    @given(
        gains=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1, max_size=20,
        )
    )
    def test_selects_true_maximum(self, gains):
        """Starting from arbitrary valid upper bounds, pop_best must
        return the object with the maximum true gain."""
        heap = LazyForwardHeap()
        true_gain = dict(enumerate(gains))
        for obj, g in true_gain.items():
            # Any bound >= true gain is valid; use 1.0 (maximally stale).
            heap.push(obj, 1.0)
        obj, gain_value = heap.pop_best(0, lambda o: true_gain[o])
        assert gain_value == pytest.approx(max(gains))
        assert true_gain[obj] == pytest.approx(max(gains))
