"""Property-based tests of the similarity protocol over random corpora.

Every model must satisfy the protocol contract (range, symmetry, unit
self-similarity) and the consistency of its three access paths
(``sim``, ``sims_to``, ``row_kernel``) — checked here with
hypothesis-generated inputs rather than hand-picked ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.similarity import (
    CombinedSimilarity,
    CosineTextSimilarity,
    EuclideanSimilarity,
    GaussianSpatialSimilarity,
    JaccardSimilarity,
    MatrixSimilarity,
)

WORDS = ["cafe", "park", "museum", "market", "river", "tower", "bar",
         "sushi", "gallery", "bridge", "站", "δρόμος"]


@st.composite
def corpora(draw):
    n = draw(st.integers(2, 12))
    texts = [
        " ".join(
            draw(st.lists(st.sampled_from(WORDS), min_size=0, max_size=6))
        )
        for _ in range(n)
    ]
    return texts


@st.composite
def models(draw):
    """A random similarity model of a random kind."""
    kind = draw(st.sampled_from(
        ["matrix", "euclidean", "gaussian", "cosine", "jaccard", "combined"]
    ))
    seed = draw(st.integers(0, 10_000))
    gen = np.random.default_rng(seed)
    n = draw(st.integers(2, 10))
    xs, ys = gen.random(n), gen.random(n)
    if kind == "matrix":
        return MatrixSimilarity.random(n, gen)
    if kind == "euclidean":
        return EuclideanSimilarity(xs, ys)
    if kind == "gaussian":
        return GaussianSpatialSimilarity(xs, ys, sigma=0.1)
    if kind == "cosine":
        texts = [
            " ".join(gen.choice(WORDS, size=int(gen.integers(0, 6))))
            for _ in range(n)
        ]
        return CosineTextSimilarity.from_texts(texts)
    if kind == "jaccard":
        sets = [
            set(int(k) for k in gen.integers(0, 8, int(gen.integers(0, 5))))
            for _ in range(n)
        ]
        return JaccardSimilarity(sets)
    return CombinedSimilarity(
        [MatrixSimilarity.random(n, gen),
         GaussianSpatialSimilarity(xs, ys, sigma=0.2)],
        [0.6, 0.4],
    )


class TestProtocolContract:
    @settings(max_examples=60, deadline=None)
    @given(model=models())
    def test_range_symmetry_diagonal(self, model):
        n = len(model)
        ids = np.arange(n)
        for i in range(n):
            sims = model.sims_to(i, ids)
            assert np.all(sims >= -1e-12) and np.all(sims <= 1.0 + 1e-12)
            assert sims[i] == pytest.approx(1.0)
            for j in range(n):
                assert model.sim(i, j) == pytest.approx(
                    model.sim(j, i), abs=1e-9
                )

    @settings(max_examples=60, deadline=None)
    @given(model=models())
    def test_access_paths_agree(self, model):
        n = len(model)
        ids = np.arange(n)
        kernel = model.row_kernel(ids)
        for i in range(n):
            row = model.sims_to(i, ids)
            assert kernel(i) == pytest.approx(row, abs=1e-9)
            assert row == pytest.approx(
                [model.sim(i, j) for j in range(n)], abs=1e-9
            )

    @settings(max_examples=40, deadline=None)
    @given(model=models(), seed=st.integers(0, 1000))
    def test_weighted_sums_match_direct(self, model, seed):
        n = len(model)
        gen = np.random.default_rng(seed)
        weights = gen.random(n)
        ids = np.arange(n)
        got = model.weighted_sims_sum(ids, ids, weights)
        want = [float(np.dot(weights, model.sims_to(i, ids))) for i in ids]
        assert got == pytest.approx(want, abs=1e-9)


class TestCosineOverRandomCorpora:
    @settings(max_examples=40, deadline=None)
    @given(texts=corpora())
    def test_identical_texts_have_similarity_one(self, texts):
        from repro.similarity import Tokenizer

        doubled = texts + [texts[0]]
        model = CosineTextSimilarity.from_texts(doubled)
        # A doc the (Latin-script) tokenizer cannot tokenize vectorizes
        # to zero and is similar to nothing but itself.
        tokenizable = bool(Tokenizer().tokenize(texts[0]))
        assert model.sim(0, len(doubled) - 1) == pytest.approx(
            1.0 if tokenizable else 0.0
        )

    @settings(max_examples=40, deadline=None)
    @given(texts=corpora())
    def test_disjoint_vocabulary_is_orthogonal(self, texts):
        marker = "zzzuniquezzz"
        model = CosineTextSimilarity.from_texts(texts + [marker])
        last = len(texts)
        for i in range(len(texts)):
            assert model.sim(i, last) == pytest.approx(0.0)
