"""Tests for the memoizing SimilarityCache wrapper.

The load-bearing property is *transparency*: under any interleaving of
``sim`` / ``sims_to`` / ``weighted_sims_sum`` calls, the cache returns
exactly the values the base model would — bit-identical, not just
close — while never re-evaluating a pair it already holds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import SimilarityCache
from repro.metrics import MetricsRegistry
from repro.similarity import MatrixSimilarity

N = 25


def make_base(seed: int = 3) -> MatrixSimilarity:
    return MatrixSimilarity.random(N, np.random.default_rng(seed))


class CountingSimilarity(MatrixSimilarity):
    """MatrixSimilarity that counts every pair the base evaluates."""

    def __init__(self, matrix: np.ndarray):
        super().__init__(matrix)
        self.pair_calls = 0

    def sim(self, i: int, j: int) -> float:
        self.pair_calls += 1
        return super().sim(i, j)

    def sims_to(self, i: int, ids: np.ndarray) -> np.ndarray:
        self.pair_calls += len(np.asarray(ids))
        return super().sims_to(i, ids)


def make_counting(seed: int = 3) -> CountingSimilarity:
    return CountingSimilarity(make_base(seed).matrix)


# A random interleaving of cache operations: each entry is either a
# scalar lookup (i, j) or a row request (i, list-of-ids, may repeat).
_ids = st.integers(min_value=0, max_value=N - 1)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("sim"), _ids, _ids),
        st.tuples(
            st.just("sims_to"), _ids, st.lists(_ids, min_size=1, max_size=N)
        ),
    ),
    min_size=1,
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_cached_equals_uncached_under_interleavings(ops):
    base = make_base()
    cache = SimilarityCache(make_base(), max_entries=200)  # tiny: evicts
    for op in ops:
        if op[0] == "sim":
            _, i, j = op
            assert cache.sim(i, j) == base.sim(i, j)
        else:
            _, i, ids = op
            ids = np.asarray(ids, dtype=np.int64)
            np.testing.assert_array_equal(
                cache.sims_to(i, ids), base.sims_to(i, ids)
            )


@settings(max_examples=30, deadline=None)
@given(ops=_ops, seed=st.integers(min_value=0, max_value=10))
def test_weighted_sims_sum_bit_identical(ops, seed):
    # The row-by-row reduction must be bit-identical between a fresh
    # cache and one pre-warmed by an arbitrary interleaving.
    rng = np.random.default_rng(seed)
    targets = np.arange(N, dtype=np.int64)
    sources = rng.choice(N, size=10, replace=False).astype(np.int64)
    weights = rng.random(10)

    warmed = SimilarityCache(make_base())
    for op in ops:
        if op[0] == "sim":
            warmed.sim(op[1], op[2])
        else:
            warmed.sims_to(op[1], np.asarray(op[2], dtype=np.int64))
    cold = SimilarityCache(make_base())
    np.testing.assert_array_equal(
        warmed.weighted_sims_sum(targets, sources, weights),
        cold.weighted_sims_sum(targets, sources, weights),
    )


class TestRowCache:
    def test_subset_request_is_free(self):
        base = make_counting()
        cache = SimilarityCache(base)
        all_ids = np.arange(N, dtype=np.int64)
        cache.sims_to(0, all_ids)
        evaluated = base.pair_calls
        sub = np.array([3, 7, 11], dtype=np.int64)
        np.testing.assert_array_equal(
            cache.sims_to(0, sub), base.matrix[0, sub]
        )
        assert base.pair_calls == evaluated  # gather, zero evals

    def test_partial_overlap_evaluates_only_missing(self):
        base = make_counting()
        cache = SimilarityCache(base)
        cache.sims_to(0, np.array([1, 2, 3], dtype=np.int64))
        before = base.pair_calls
        cache.sims_to(0, np.array([2, 3, 4, 5], dtype=np.int64))
        assert base.pair_calls == before + 2  # only 4 and 5

    def test_merged_row_serves_union(self):
        cache = SimilarityCache(make_counting())
        cache.sims_to(0, np.array([1, 2], dtype=np.int64))
        cache.sims_to(0, np.array([4, 5], dtype=np.int64))
        union = np.array([1, 2, 4, 5], dtype=np.int64)
        assert cache.cached_row_over(0, union) is not None

    def test_duplicate_ids_in_request(self):
        base = make_base()
        cache = SimilarityCache(make_base())
        ids = np.array([4, 4, 2, 4], dtype=np.int64)
        np.testing.assert_array_equal(
            cache.sims_to(1, ids), base.sims_to(1, ids)
        )
        np.testing.assert_array_equal(
            cache.sims_to(1, ids), base.sims_to(1, ids)
        )

    def test_scalar_served_from_cached_row(self):
        base = make_counting()
        cache = SimilarityCache(base)
        cache.sims_to(0, np.array([5], dtype=np.int64))
        before = base.pair_calls
        assert cache.sim(0, 5) == base.matrix[0, 5]
        assert cache.sim(5, 0) == base.matrix[0, 5]  # symmetric key
        assert base.pair_calls == before


class TestCapacity:
    def test_count_only_mode_never_stores(self):
        cache = SimilarityCache(make_counting(), max_entries=0)
        all_ids = np.arange(N, dtype=np.int64)
        cache.sims_to(0, all_ids)
        cache.sims_to(0, all_ids)
        assert cache.rows_cached == 0
        assert cache.counters()["pairs_evaluated"] == 2 * N
        assert cache.counters()["pairs_saved"] == 0

    def test_lru_eviction_bounds_entries(self):
        cache = SimilarityCache(make_base(), max_entries=2 * N)
        all_ids = np.arange(N, dtype=np.int64)
        for i in range(6):
            cache.sims_to(i, all_ids)
        assert cache.entries <= 2 * N
        assert cache.rows_cached <= 2
        assert cache.metrics.count("sim.row_evictions") >= 4

    def test_eviction_keeps_values_correct(self):
        base = make_base()
        cache = SimilarityCache(make_base(), max_entries=N)
        all_ids = np.arange(N, dtype=np.int64)
        for i in range(5):
            np.testing.assert_array_equal(
                cache.sims_to(i, all_ids), base.sims_to(i, all_ids)
            )
        # Re-request an evicted row: recomputed, still identical.
        np.testing.assert_array_equal(
            cache.sims_to(0, all_ids), base.sims_to(0, all_ids)
        )

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SimilarityCache(make_base(), max_entries=-1)
        with pytest.raises(ValueError):
            SimilarityCache(make_base(), max_scalars=-1)


class TestInvalidation:
    def test_invalidate_clears_and_bumps_generation(self):
        cache = SimilarityCache(make_counting())
        cache.sims_to(0, np.arange(N, dtype=np.int64))
        gen = cache.generation
        cache.invalidate()
        assert cache.rows_cached == 0
        assert cache.entries == 0
        assert cache.generation == gen + 1
        assert cache.cached_row_over(0, np.array([1], dtype=np.int64)) is None

    def test_values_refetched_after_invalidate(self):
        base = make_counting()
        cache = SimilarityCache(base)
        ids = np.arange(N, dtype=np.int64)
        cache.sims_to(0, ids)
        cache.invalidate()
        before = base.pair_calls
        cache.sims_to(0, ids)
        assert base.pair_calls == before + N


class TestCounters:
    def test_counters_roll_up(self):
        cache = SimilarityCache(make_base())
        ids = np.arange(10, dtype=np.int64)
        cache.sims_to(0, ids)   # miss
        cache.sims_to(0, ids)   # hit
        cache.sim(1, 2)         # scalar miss
        cache.sim(1, 2)         # scalar hit
        c = cache.counters()
        assert c["pairs_evaluated"] == 11
        assert c["pairs_saved"] == 10
        assert c["hits"] == 2
        assert c["misses"] == 2

    def test_shared_registry(self):
        m = MetricsRegistry()
        cache = SimilarityCache(make_base(), metrics=m)
        cache.sims_to(0, np.arange(4, dtype=np.int64))
        assert m.count("sim.row_misses") == 1
        assert m.count("sim.pairs_evaluated") == 4

    def test_cached_row_over_never_evaluates(self):
        base = make_counting()
        cache = SimilarityCache(base)
        assert cache.cached_row_over(0, np.array([1], dtype=np.int64)) is None
        assert base.pair_calls == 0
