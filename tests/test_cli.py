"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def corpus_path(tmp_path):
    path = tmp_path / "corpus.jsonl"
    rc = main(["generate", "--preset", "poi", "--n", "2000",
               "--out", str(path)])
    assert rc == 0
    return path


class TestGenerate:
    def test_writes_corpus(self, corpus_path):
        assert corpus_path.exists()
        lines = corpus_path.read_text().strip().splitlines()
        assert len(lines) == 2000

    def test_seed_changes_output(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        main(["generate", "--preset", "uk", "--n", "1500", "--seed", "1",
              "--out", str(a)])
        main(["generate", "--preset", "uk", "--n", "1500", "--seed", "2",
              "--out", str(b)])
        assert a.read_text() != b.read_text()


class TestSelect:
    def test_basic_selection(self, corpus_path, capsys):
        rc = main(["select", str(corpus_path), "--k", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "selected 5 of" in out
        assert out.count("#") >= 5

    def test_region_argument(self, corpus_path, capsys):
        rc = main([
            "select", str(corpus_path),
            "--region", "0.0,0.0,0.5,0.5", "--k", "3",
        ])
        assert rc == 0
        assert "selected" in capsys.readouterr().out

    def test_bad_region_rejected(self, corpus_path):
        with pytest.raises(SystemExit):
            main(["select", str(corpus_path), "--region", "nope"])
        with pytest.raises(SystemExit):
            main(["select", str(corpus_path), "--region", "0,0,1"])

    def test_keyword_filter(self, corpus_path, capsys):
        # Find a word that actually occurs.
        first_text = None
        import json

        with open(corpus_path) as handle:
            for line in handle:
                record = json.loads(line)
                if record.get("text"):
                    first_text = record["text"].split()[0]
                    break
        rc = main([
            "select", str(corpus_path), "--k", "3", "--filter", first_text,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "selected" in out

    def test_sample_mode(self, corpus_path, capsys):
        rc = main(["select", str(corpus_path), "--k", "5", "--sample"])
        assert rc == 0
        assert "selected 5" in capsys.readouterr().out

    def test_ascii_map_and_svg(self, corpus_path, capsys, tmp_path):
        svg = tmp_path / "out.svg"
        rc = main([
            "select", str(corpus_path), "--k", "4", "--map",
            "--svg", str(svg),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "+--" in out  # ASCII border
        assert svg.exists()


class TestExplore:
    def test_replays_operations(self, corpus_path, capsys):
        rc = main([
            "explore", str(corpus_path), "--k", "6", "--steps", "3",
            "--region-fraction", "0.4", "--prefetch",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "initial" in out
        assert out.count("ms") >= 4  # initial + 3 operations


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])
