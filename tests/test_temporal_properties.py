"""Property suites for streaming ingest and time-slider navigation.

Two invariants the temporal work must hold under *arbitrary* traces:

* **streaming** — after any interleaving of ingest / delete / expire,
  the maintained selection is θ-feasible, drawn only from the live
  inside-viewport population, and (after a reoptimize) its score stays
  within the streaming competitiveness factor of a fresh greedy run;
* **time slider** — a session whose steps are served from the delta
  memo and the temporal prefetcher selects *bit-identically* to a cold
  twin that re-initializes from scratch at every window.
"""

from __future__ import annotations

import functools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GeoDataset
from repro.core.session import MapSession
from repro.core.streaming import StreamingSelector
from repro.geo.bbox import BoundingBox
from repro.similarity import GrowableEuclideanSimilarity

REGION = BoundingBox(0.0, 0.0, 1.0, 1.0)
START = BoundingBox(0.15, 0.15, 0.85, 0.85)
THETA = 0.05


@functools.lru_cache(maxsize=16)
def _dataset(seed: int, n: int = 400) -> GeoDataset:
    gen = np.random.default_rng(seed)
    return GeoDataset.build(
        gen.random(n), gen.random(n),
        weights=gen.random(n), ts=gen.random(n),
    )


# ----------------------------------------------------------------------
# Streaming traces
# ----------------------------------------------------------------------

# A trace event is ("add",) | ("remove",) | ("expire", fraction).
_EVENTS = st.lists(
    st.one_of(
        st.just(("add",)),
        st.just(("remove",)),
        st.tuples(st.just("expire"), st.floats(0.0, 1.0)),
    ),
    min_size=5,
    max_size=60,
)


def _replay(events, seed: int) -> StreamingSelector:
    """Run one trace; objects are uniform in the unit square, ts = id."""
    gen = np.random.default_rng(seed)
    stream = StreamingSelector(
        GrowableEuclideanSimilarity(d_max=np.sqrt(2.0)),
        REGION,
        k=4,
        theta=THETA,
        swap_margin=0.05,
    )
    for event in events:
        if event[0] == "add":
            x, y, w = gen.random(3)
            stream.similarity.append(
                np.array([x]), np.array([y])
            )
            stream.add(x, y, w, ts=float(stream.arrivals))
        elif event[0] == "remove":
            alive = [
                i for i in range(stream.arrivals) if stream._alive[i]
            ]
            if alive:
                stream.remove(alive[int(gen.integers(len(alive)))])
        else:
            stream.expire_before(event[1] * stream.arrivals)
    return stream


class TestStreamingTraceProperties:
    @given(events=_EVENTS, seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_invariants_hold(self, events, seed):
        stream = _replay(events, seed)
        selected = stream.selected
        # Budget.
        assert len(selected) <= stream.k
        # Selected ⊆ alive ∩ inside-viewport.
        for obj_id in selected:
            assert stream._alive[obj_id]
            assert obj_id in stream._inside
        # θ-feasibility: strictly-closer-than-θ pairs are conflicts.
        for a_pos, a in enumerate(selected):
            for b in selected[a_pos + 1:]:
                dist = np.hypot(
                    stream._xs[a] - stream._xs[b],
                    stream._ys[a] - stream._ys[b],
                )
                assert dist >= THETA
        # Bookkeeping counters reconcile with the trace.
        dead = sum(1 for alive in stream._alive if not alive)
        assert dead == stream.removals + stream.expired

    @given(events=_EVENTS, seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_tracks_fresh_greedy_after_trace(self, events, seed):
        stream = _replay(events, seed)
        maintained = stream.score()
        stream.reoptimize()
        fresh = stream.score()
        assert maintained >= 0.75 * fresh - 1e-9


# ----------------------------------------------------------------------
# Time-slider traces
# ----------------------------------------------------------------------

# Slider moves keep |dt| within the delta margin (0.5) of the window
# span (0.2) so the delta memo's temporal expansion stays valid; the
# property must hold regardless, because out-of-memo steps simply
# degrade to colder tiers.
_SLIDER_MOVES = st.lists(
    st.one_of(
        st.tuples(st.just("step"), st.sampled_from(
            [0.02, 0.05, 0.08, -0.02, -0.05]
        )),
        st.tuples(
            st.just("jump"),
            st.floats(0.0, 0.6),
            st.floats(0.15, 0.4),
        ),
        st.tuples(st.just("pan"), st.sampled_from(
            [(0.05, 0.0), (-0.05, 0.0), (0.0, 0.05)]
        )),
    ),
    min_size=1,
    max_size=8,
)


def _apply(session: MapSession, move):
    if move[0] == "step":
        return session.time_step(move[1])
    if move[0] == "jump":
        t0 = move[1]
        return session.set_time_window(t0, t0 + move[2])
    dx, dy = move[1]
    return session.pan(dx, dy)


class TestTimeSliderBitIdentity:
    @given(
        seed=st.integers(0, 50),
        moves=_SLIDER_MOVES,
        prefetch=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_delta_steps_match_cold_reselection(
        self, seed, moves, prefetch
    ):
        dataset = _dataset(seed % 8)
        warm = MapSession(
            dataset, k=6, time_window=(0.3, 0.5),
            delta=True, prefetch=prefetch,
        )
        cold = MapSession(dataset, k=6, time_window=(0.3, 0.5))
        try:
            warm.start(START)
            cold.start(START)
            for move in moves:
                warm_step = _apply(warm, move)
                cold_step = _apply(cold, move)
                assert np.array_equal(
                    warm_step.result.selected,
                    cold_step.result.selected,
                ), (
                    f"divergence on {move}: "
                    f"{warm_step.result.selected} vs "
                    f"{cold_step.result.selected}"
                )
                assert warm_step.time_window == cold_step.time_window
        finally:
            warm.close()
            cold.close()

    @given(seed=st.integers(0, 20), moves=_SLIDER_MOVES)
    @settings(max_examples=10, deadline=None)
    def test_internal_equivalence_check_never_trips(self, seed, moves):
        # Belt and braces: the session's own equivalence checker
        # re-runs every seeded step cold and raises on divergence.
        dataset = _dataset(seed % 8)
        with MapSession(
            dataset, k=6, time_window=(0.3, 0.5),
            delta=True, prefetch=True, equivalence_check=True,
        ) as session:
            session.start(START)
            for move in moves:
                _apply(session, move)
