"""Adversarial and degenerate inputs across the selection stack."""

import numpy as np
import pytest

from repro import (
    Aggregation,
    GeoDataset,
    InfeasibleSelection,
    MapSession,
    RegionQuery,
    greedy_select,
    sass_select,
)
from repro.core.greedy import greedy_core
from repro.geo import BoundingBox
from repro.similarity import MatrixSimilarity

WHOLE = BoundingBox(-0.1, -0.1, 1.1, 1.1)


def dataset_with_matrix(matrix: np.ndarray) -> GeoDataset:
    n = matrix.shape[0]
    gen = np.random.default_rng(0)
    return GeoDataset.build(
        gen.random(n), gen.random(n), similarity=MatrixSimilarity(matrix)
    )


class TestDegenerateSimilarity:
    def test_identity_similarity(self):
        """Every object only similar to itself: score = k-coverage."""
        ds = dataset_with_matrix(np.eye(20))
        query = RegionQuery(region=WHOLE, k=5, theta=0.0)
        result = greedy_select(ds, query)
        assert len(result) == 5
        # Each pick contributes exactly its own weight (= 1 here).
        assert result.score == pytest.approx(5 / 20)

    def test_all_ones_similarity(self):
        """Everything identical: one pick saturates the score."""
        ds = dataset_with_matrix(np.ones((15, 15)))
        query = RegionQuery(region=WHOLE, k=5, theta=0.0)
        result = greedy_select(ds, query)
        assert result.score == pytest.approx(1.0)
        # Further picks add nothing but are still allowed up to k.
        assert len(result) == 5

    def test_zero_weights(self):
        gen = np.random.default_rng(1)
        ds = GeoDataset.build(
            gen.random(10), gen.random(10), weights=np.zeros(10)
        )
        query = RegionQuery(region=WHOLE, k=3, theta=0.0)
        result = greedy_select(ds, query)
        assert result.score == 0.0
        assert len(result) == 3  # selection proceeds; utility is just 0


class TestDegenerateGeometry:
    def test_all_objects_coincident(self):
        ds = GeoDataset.build(np.full(30, 0.5), np.full(30, 0.5))
        query = RegionQuery(region=WHOLE, k=10, theta=0.01)
        result = greedy_select(ds, query)
        # All conflict with each other: exactly one survives.
        assert len(result) == 1

    def test_theta_bigger_than_region(self):
        gen = np.random.default_rng(2)
        ds = GeoDataset.build(gen.random(50), gen.random(50))
        query = RegionQuery(region=WHOLE, k=10, theta=5.0)
        result = greedy_select(ds, query)
        assert len(result) == 1

    def test_k_one(self):
        gen = np.random.default_rng(3)
        ds = GeoDataset.build(gen.random(50), gen.random(50))
        query = RegionQuery(region=WHOLE, k=1, theta=0.0)
        result = greedy_select(ds, query)
        assert len(result) == 1

    def test_single_object_dataset(self):
        ds = GeoDataset.build(np.array([0.5]), np.array([0.5]))
        query = RegionQuery(region=WHOLE, k=5, theta=0.1)
        result = greedy_select(ds, query)
        assert result.selected.tolist() == [0]
        assert result.score == pytest.approx(1.0)

    def test_empty_dataset(self):
        ds = GeoDataset.build(np.array([]), np.array([]))
        query = RegionQuery(region=WHOLE, k=5, theta=0.1)
        result = greedy_select(ds, query)
        assert len(result) == 0


class TestQueryValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError):
            RegionQuery(region=WHOLE, k=0, theta=0.0)
        with pytest.raises(ValueError):
            RegionQuery(region=WHOLE, k=-3, theta=0.0)

    def test_bad_theta(self):
        with pytest.raises(ValueError):
            RegionQuery(region=WHOLE, k=5, theta=-0.1)

    def test_theta_for_helper(self):
        region = BoundingBox(0.0, 0.0, 2.0, 1.0)
        assert RegionQuery.theta_for(region, 0.01) == pytest.approx(0.02)


class TestInstanceValidation:
    """greedy_core input contracts (InfeasibleSelection taxonomy)."""

    def _core(self, ds, **overrides):
        ids = np.arange(len(ds), dtype=np.int64)
        kwargs = dict(
            region_ids=ids,
            candidate_ids=ids,
            mandatory_ids=np.empty(0, dtype=np.int64),
            k=3,
            theta=0.0,
        )
        kwargs.update(overrides)
        return greedy_core(ds, **kwargs)

    @pytest.fixture
    def ds(self):
        gen = np.random.default_rng(7)
        return GeoDataset.build(gen.random(20), gen.random(20))

    def test_nonpositive_k(self, ds):
        with pytest.raises(InfeasibleSelection, match="k must be positive"):
            self._core(ds, k=0)
        # Backward compatible: it is still a ValueError.
        with pytest.raises(ValueError):
            self._core(ds, k=-2)

    def test_negative_theta(self, ds):
        with pytest.raises(InfeasibleSelection, match="non-negative"):
            self._core(ds, theta=-0.5)

    def test_mandatory_larger_than_k(self, ds):
        with pytest.raises(InfeasibleSelection, match=r"exceeds k"):
            self._core(
                ds,
                mandatory_ids=np.arange(5, dtype=np.int64),
                candidate_ids=np.arange(5, 20, dtype=np.int64),
                k=4,
            )

    def test_mandatory_violating_theta(self):
        ds = GeoDataset.build(
            np.array([0.5, 0.501, 0.9]), np.array([0.5, 0.501, 0.9])
        )
        with pytest.raises(InfeasibleSelection, match="feasible"):
            greedy_core(
                ds,
                region_ids=np.arange(3, dtype=np.int64),
                candidate_ids=np.array([2], dtype=np.int64),
                mandatory_ids=np.array([0, 1], dtype=np.int64),
                k=3,
                theta=0.1,
            )

    def test_empty_candidates_default_is_partial(self, ds):
        result = self._core(
            ds, candidate_ids=np.empty(0, dtype=np.int64), k=3
        )
        assert len(result) == 0
        assert result.stats["short_selection"]

    def test_empty_candidates_strict_raises(self, ds):
        with pytest.raises(InfeasibleSelection, match="empty"):
            self._core(
                ds, candidate_ids=np.empty(0, dtype=np.int64), strict=True
            )

    def test_k_exceeding_population_default_is_partial(self, ds):
        result = self._core(ds, k=100)
        assert len(result) == 20
        assert result.stats["short_selection"]

    def test_k_exceeding_population_strict_raises(self, ds):
        with pytest.raises(InfeasibleSelection, match=r"exceeds \|G\|"):
            self._core(ds, k=100, strict=True)


class TestSessionDegenerate:
    def test_session_on_sparse_area(self):
        gen = np.random.default_rng(4)
        ds = GeoDataset.build(gen.random(100), gen.random(100))
        session = MapSession(ds, k=5)
        # A viewport holding nothing at all.
        step = session.start(BoundingBox(2.0, 2.0, 2.1, 2.1))
        assert len(step.result) == 0
        # Navigation from an empty viewport still works.
        step = session.zoom_out(2.0)
        assert len(step.result) == 0

    def test_session_zoom_in_to_empty(self):
        ds = GeoDataset.build(
            np.array([0.05, 0.95]), np.array([0.05, 0.95])
        )
        session = MapSession(ds, k=2)
        session.start(BoundingBox(0.0, 0.0, 1.0, 1.0))
        step = session.zoom_in(0.1)  # center region holds nothing
        assert len(step.result) == 0


class TestSamplingDegenerate:
    def test_sample_size_exceeding_population(self):
        gen = np.random.default_rng(5)
        ds = GeoDataset.build(gen.random(50), gen.random(50))
        query = RegionQuery(region=WHOLE, k=5, theta=0.0)
        result = sass_select(ds, query, epsilon=0.01, delta=0.01)
        # Sample capped at the population: degenerates to full greedy.
        assert result.stats["sample_size"] == 50
        assert len(result) == 5

    def test_sum_aggregation_through_sass(self):
        gen = np.random.default_rng(6)
        ds = GeoDataset.build(gen.random(500), gen.random(500))
        query = RegionQuery(region=WHOLE, k=5, theta=0.0)
        result = sass_select(
            ds, query, aggregation=Aggregation.SUM,
            rng=np.random.default_rng(0),
        )
        assert len(result) == 5
