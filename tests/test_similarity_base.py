"""Tests for the similarity protocol and MatrixSimilarity."""

import numpy as np
import pytest

from repro.similarity import MatrixSimilarity


class TestMatrixValidation:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            MatrixSimilarity(np.zeros((2, 3)))

    def test_rejects_out_of_range(self):
        bad = np.eye(3)
        bad[0, 1] = bad[1, 0] = 1.5
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            MatrixSimilarity(bad)

    def test_rejects_asymmetric(self):
        bad = np.eye(3)
        bad[0, 1] = 0.5
        with pytest.raises(ValueError, match="symmetric"):
            MatrixSimilarity(bad)

    def test_rejects_bad_diagonal(self):
        bad = np.eye(3)
        bad[1, 1] = 0.4
        with pytest.raises(ValueError, match="self-similarity"):
            MatrixSimilarity(bad)

    def test_validate_false_skips_checks(self):
        bad = np.eye(2)
        bad[0, 1] = 0.9  # asymmetric but unchecked
        model = MatrixSimilarity(bad, validate=False)
        assert model.sim(0, 1) == 0.9

    def test_random_factory_is_valid(self):
        model = MatrixSimilarity.random(25, np.random.default_rng(0))
        m = model.matrix
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 1.0)
        assert m.min() >= 0.0 and m.max() <= 1.0


class TestMatrixQueries:
    @pytest.fixture
    def model(self):
        return MatrixSimilarity.random(10, np.random.default_rng(1))

    def test_len(self, model):
        assert len(model) == 10

    def test_sim_matches_matrix(self, model):
        assert model.sim(2, 7) == model.matrix[2, 7]

    def test_sims_to_matches_scalar(self, model):
        ids = np.array([0, 3, 9])
        got = model.sims_to(4, ids)
        assert got.tolist() == [model.sim(4, i) for i in ids]

    def test_sims_to_empty(self, model):
        assert len(model.sims_to(0, np.array([], dtype=np.int64))) == 0

    def test_pairwise_matrix(self, model):
        ids = np.array([1, 4, 6])
        sub = model.pairwise_matrix(ids)
        for r, i in enumerate(ids):
            for c, j in enumerate(ids):
                assert sub[r, c] == model.sim(int(i), int(j))

    def test_weighted_sims_sum_matches_loop(self, model):
        targets = np.array([0, 5, 9])
        sources = np.array([1, 2, 3, 4])
        weights = np.array([0.5, 1.0, 0.25, 0.0])
        got = model.weighted_sims_sum(targets, sources, weights)
        want = [
            sum(w * model.sim(int(t), int(s)) for s, w in zip(sources, weights))
            for t in targets
        ]
        assert got == pytest.approx(want)

    def test_weighted_sims_sum_misaligned(self, model):
        with pytest.raises(ValueError):
            # Default implementation validates; MatrixSimilarity override
            # uses fancy indexing so exercise the base path explicitly.
            super(MatrixSimilarity, model).weighted_sims_sum(
                np.array([0]), np.array([1, 2]), np.array([1.0])
            )

    def test_row_kernel_matches_sims_to(self, model):
        ids = np.array([2, 5, 8])
        kernel = model.row_kernel(ids)
        for v in (0, 5, 9):
            assert kernel(v).tolist() == model.sims_to(v, ids).tolist()
