"""Public API surface tests: imports, __all__, and the README quickstart."""

import importlib

import numpy as np
import pytest


class TestPublicSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.geo",
            "repro.index",
            "repro.similarity",
            "repro.core",
            "repro.baselines",
            "repro.datasets",
            "repro.experiments",
            "repro.viz",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert getattr(mod, name) is not None, f"{module}.{name}"


class TestQuickstartSnippet:
    def test_readme_quickstart_runs(self):
        """The exact flow documented in the package docstring/README."""
        from repro import GeoDataset, RegionQuery, greedy_select
        from repro.geo import BoundingBox

        rng = np.random.default_rng(7)
        xs, ys = rng.random(10_000), rng.random(10_000)
        dataset = GeoDataset.build(xs, ys)

        region = BoundingBox(0.2, 0.2, 0.4, 0.4)
        query = RegionQuery.with_theta_fraction(region, k=25)
        result = greedy_select(dataset, query)
        assert len(result) == 25
        assert 0.0 < result.score <= 1.0
